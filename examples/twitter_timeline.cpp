// Twitter-timeline scenario (the paper's headline use case): one user
// follows thousands of accounts; the SPSD engine slims the firehose in
// real time. Demonstrates the full offline + online pipeline:
//
//   offline (weekly): social graph -> all-pairs author similarity ->
//                     similarity graph at λa -> greedy clique cover
//   online (per post): CliqueBin Offer()
//
// Build & run:  ./build/examples/twitter_timeline

#include <cstdio>

#include "src/firehose.h"

using namespace firehose;

int main() {
  // --- Offline phase -----------------------------------------------------
  SocialGraphOptions graph_options;
  graph_options.num_authors = 2000;
  graph_options.num_communities = 40;
  graph_options.avg_followees = 35.0;
  graph_options.seed = 1;
  const FollowGraph social = GenerateSocialGraph(graph_options);

  std::vector<AuthorId> subscriptions;
  for (AuthorId a = 0; a < social.num_authors(); ++a) {
    subscriptions.push_back(a);
  }
  const auto similarities = AllPairsSimilarity(social, subscriptions, 0.3);
  const AuthorGraph graph =
      AuthorGraph::FromSimilarities(subscriptions, similarities, 0.7);
  const CliqueCover cover = CliqueCover::Greedy(graph);
  std::printf(
      "offline: %u authors, %llu similar pairs, %zu cliques "
      "(avg %.1f cliques/author)\n",
      social.num_authors(),
      static_cast<unsigned long long>(graph.num_edges()), cover.num_cliques(),
      cover.AvgCliquesPerAuthor());

  // --- Online phase ------------------------------------------------------
  StreamGenOptions stream_options;
  stream_options.posts_per_author = 10.0;
  stream_options.cross_author_dup_prob = 0.15;  // heavy retweet day
  stream_options.seed = 2;
  const SimHasher hasher;
  const PostStream day = GenerateStream(graph, hasher, stream_options);

  DiversityThresholds thresholds;
  thresholds.lambda_c = 18;
  thresholds.lambda_t_ms = 30 * 60 * 1000;
  auto diversifier =
      MakeDiversifier(Algorithm::kCliqueBin, thresholds, &graph, &cover);

  WallTimer timer;
  uint64_t shown = 0;
  std::printf("\nfirst 10 timeline decisions:\n");
  for (const Post& post : day) {
    const bool show = diversifier->Offer(post);
    shown += show ? 1 : 0;
    if (post.id < 10) {
      std::printf("  t=%6llds author=%4u [%s] %.60s\n",
                  static_cast<long long>(post.time_ms / 1000), post.author,
                  show ? "SHOW" : "skip", post.text.c_str());
    }
  }
  const double elapsed_s = timer.ElapsedSeconds();

  const IngestStats& stats = diversifier->stats();
  std::printf(
      "\nday summary: %zu posts ingested in %.2fs (%.0f posts/s), "
      "%llu shown (%.1f%% pruned)\n",
      day.size(), elapsed_s, day.size() / elapsed_s,
      static_cast<unsigned long long>(shown),
      100.0 * (1.0 - static_cast<double>(shown) / day.size()));
  std::printf("work: %llu comparisons, %llu insertions, %.2f MiB bins\n",
              static_cast<unsigned long long>(stats.comparisons),
              static_cast<unsigned long long>(stats.insertions),
              static_cast<double>(diversifier->ApproxBytes()) / (1 << 20));
  return 0;
}
