// Google-Scholar-like scenario (paper Table 4, UniBin row): publication
// alerts. Posts arrive at very low rate (a few per hour), authors are
// connected by co-authorship, and λt is huge — a preprint and its
// camera-ready months apart should still be deduplicated.
//
// Demonstrates user-customized thresholds on the SPSD (single-user)
// engine and shows why UniBin's single bin is the right structure here.
//
// Build & run:  ./build/examples/scholar_feed

#include <cstdio>

#include "src/firehose.h"

using namespace firehose;

namespace {

constexpr int64_t kDay = 24LL * 3600 * 1000;

Post MakePaperPost(PostId id, AuthorId author, int64_t time_ms,
                   const SimHasher& hasher, const std::string& title) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.text = title;
  post.simhash = hasher.Fingerprint(title);
  return post;
}

}  // namespace

int main() {
  // Co-authorship graph: lab A = {0,1,2} publish together, lab B = {3,4}.
  const AuthorGraph graph = AuthorGraph::FromEdges(
      {0, 1, 2, 3, 4}, {{0, 1}, {0, 2}, {1, 2}, {3, 4}});

  // Scholar-style thresholds: months-wide time window, strict content.
  DiversityThresholds thresholds;
  thresholds.lambda_c = 18;
  thresholds.lambda_t_ms = 120 * kDay;  // ~4 months

  auto feed = MakeDiversifier(Algorithm::kUniBin, thresholds, &graph);
  const SimHasher hasher;

  struct Alert {
    AuthorId author;
    int64_t day;
    const char* title;
  };
  const Alert alerts[] = {
      {0, 0,
       "Slowing the Firehose: Multi Dimensional Diversity on Social Post "
       "Streams (preprint)"},
      {1, 45,
       "Slowing the Firehose: Multi-Dimensional Diversity on Social Post "
       "Streams"},  // camera-ready by a co-author: redundant
      {3, 50,
       "Dynamic Diversification of Continuous Data Streams over Sliding "
       "Windows"},  // unrelated lab B paper
      {4, 55,
       "Dynamic Diversification of Continuous Data: Streams over Sliding "
       "Windows (extended)"},  // lab B revision: redundant
      {0, 200,
       "Slowing the Firehose: Multi Dimensional Diversity on Social Post "
       "Streams (preprint)"},  // same title, 200 days later: λt expired
  };

  PostId next_id = 0;
  for (const Alert& alert : alerts) {
    const Post post = MakePaperPost(next_id++, alert.author, alert.day * kDay,
                                    hasher, alert.title);
    const bool shown = feed->Offer(post);
    std::printf("[day %3lld] [%s] author %u: %.70s\n",
                static_cast<long long>(alert.day), shown ? "ALERT" : "dedup",
                alert.author, alert.title);
  }

  const IngestStats& stats = feed->stats();
  std::printf("\n%llu alerts delivered out of %llu publications; bin holds "
              "%zu bytes (single copy per paper — UniBin)\n",
              static_cast<unsigned long long>(stats.posts_out),
              static_cast<unsigned long long>(stats.posts_in),
              feed->ApproxBytes());
  return 0;
}
