// M-SPSD service scenario (paper §5): a central engine diversifies the
// stream for MANY users at once, reusing bins and comparisons across
// users whose subscriptions share a connected component of the author
// similarity graph (S_* engines) instead of running one engine per user
// (M_* engines).
//
// Build & run:  ./build/examples/multi_user_service
//
// Set FIREHOSE_DEBUG_PORT=0 (or a fixed port) to serve the live
// introspection endpoints (/metricsz /varz /statusz /tracez) on
// 127.0.0.1 while the engines run; the example self-scrapes /statusz at
// the end to show the round trip.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/firehose.h"

using namespace firehose;

int main() {
  std::unique_ptr<obs::DebugServer> debug_server;
  obs::FlightRecorder flight;
  if (const char* env = std::getenv("FIREHOSE_DEBUG_PORT")) {
    obs::SetGlobalFlightRecorder(&flight);
    obs::DebugServer::Options server_options;
    server_options.flight = &flight;
    debug_server = std::make_unique<obs::DebugServer>(server_options);
    if (debug_server->Start(std::atoi(env))) {
      std::printf("debug server listening on http://127.0.0.1:%d\n",
                  debug_server->port());
    } else {
      std::fprintf(stderr, "cannot bind FIREHOSE_DEBUG_PORT=%s\n", env);
      debug_server.reset();
    }
  }
  // Offline: a 800-author graph.
  SocialGraphOptions graph_options;
  graph_options.num_authors = 800;
  graph_options.num_communities = 20;
  graph_options.avg_followees = 30.0;
  graph_options.seed = 10;
  const FollowGraph social = GenerateSocialGraph(graph_options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto similarities = AllPairsSimilarity(social, authors, 0.3);
  const AuthorGraph graph =
      AuthorGraph::FromSimilarities(authors, similarities, 0.7);

  // Every author is also a user subscribed to its followees — the
  // paper's §6.3 setup.
  std::vector<User> users;
  for (AuthorId a = 0; a < social.num_authors(); ++a) {
    if (!social.Followees(a).empty()) {
      users.push_back(
          User{static_cast<UserId>(users.size()), social.Followees(a)});
    }
  }

  StreamGenOptions stream_options;
  stream_options.duration_ms = 6 * 3600 * 1000;
  stream_options.posts_per_author = 8.0;
  stream_options.seed = 11;
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, stream_options);

  DiversityThresholds thresholds;
  thresholds.lambda_c = 18;
  thresholds.lambda_t_ms = 30 * 60 * 1000;

  std::printf("service: %zu users, %zu posts over 6h\n\n", users.size(),
              stream.size());
  std::printf("%-14s %12s %10s %9s %14s %14s %12s\n", "engine",
              "diversifiers", "time ms", "RAM MiB", "comparisons",
              "insertions", "deliveries");
  obs::MetricsRegistry metrics;
  uint64_t engines_run = 0;
  uint64_t total_deliveries = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    for (bool shared : {false, true}) {
      auto engine = shared
                        ? MakeSUserEngine(algorithm, thresholds, graph, users)
                        : MakeMUserEngine(algorithm, thresholds, graph, users);
      if (debug_server != nullptr) {
        flight.RecordInstant(0, "engine.start", "service");
      }
      const MultiUserRunResult result = RunMultiUser(*engine, stream);
      std::printf("%-14s %12zu %10.1f %9.2f %14llu %14llu %12llu\n",
                  std::string(engine->name()).c_str(),
                  engine->num_diversifiers(), result.wall_ms,
                  static_cast<double>(result.peak_bytes) / (1 << 20),
                  static_cast<unsigned long long>(result.comparisons),
                  static_cast<unsigned long long>(result.insertions),
                  static_cast<unsigned long long>(result.deliveries));
      ++engines_run;
      total_deliveries += result.deliveries;
      if (debug_server != nullptr) {
        // Publish a consistent snapshot after each engine so a scraper
        // watching /varz sees the service make progress — the DELIVERY
        // side (timeline appends), not just ingest-side work counters.
        metrics.GetCounter("service.engines_run")->Increment();
        metrics.GetCounter("service.comparisons")->Add(result.comparisons);
        metrics.GetCounter("service.deliveries")->Add(result.deliveries);
        obs::ExportOptions export_options;
        std::string status = "{\"engines_run\": ";
        status.append(std::to_string(engines_run));
        status.append(", \"deliveries\": ");
        status.append(std::to_string(total_deliveries));
        status.push_back('}');
        debug_server->state()->PublishMetrics(
            obs::ExportPrometheus(metrics, export_options),
            obs::ExportJson(metrics, export_options));
        debug_server->state()->PublishStatus(std::move(status));
      }
    }
  }
  if (debug_server != nullptr) {
    // Round-trip demo: scrape our own /statusz and /varz the way an
    // operator would, and reconcile the published delivery counter
    // against the local total — a mismatch would mean the publication
    // path dropped a snapshot.
    int status = 0;
    std::string body;
    if (HttpGet(debug_server->port(), "/statusz", &status, &body)) {
      std::printf("\nself-scrape GET /statusz -> %d\n%s", status,
                  body.c_str());
    }
    if (HttpGet(debug_server->port(), "/varz", &status, &body)) {
      const std::string want =
          "\"service.deliveries\": " + std::to_string(total_deliveries);
      std::printf("self-scrape GET /varz -> %d (%s: %s)\n", status,
                  want.c_str(),
                  body.find(want) != std::string::npos ? "reconciled"
                                                       : "MISMATCH");
    }
    debug_server->Stop();
    obs::SetGlobalFlightRecorder(nullptr);
  }
  std::printf(
      "\nS_* engines key shared connected components by author set: each "
      "shared component is diversified once and fanned out to all its "
      "users (paper: S_UniBin saves 43%% time / 27%% RAM vs M_UniBin).\n");
  return 0;
}
