// M-SPSD service scenario (paper §5): a central engine diversifies the
// stream for MANY users at once, reusing bins and comparisons across
// users whose subscriptions share a connected component of the author
// similarity graph (S_* engines) instead of running one engine per user
// (M_* engines).
//
// Build & run:  ./build/examples/multi_user_service

#include <cstdio>

#include "src/firehose.h"

using namespace firehose;

int main() {
  // Offline: a 800-author graph.
  SocialGraphOptions graph_options;
  graph_options.num_authors = 800;
  graph_options.num_communities = 20;
  graph_options.avg_followees = 30.0;
  graph_options.seed = 10;
  const FollowGraph social = GenerateSocialGraph(graph_options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto similarities = AllPairsSimilarity(social, authors, 0.3);
  const AuthorGraph graph =
      AuthorGraph::FromSimilarities(authors, similarities, 0.7);

  // Every author is also a user subscribed to its followees — the
  // paper's §6.3 setup.
  std::vector<User> users;
  for (AuthorId a = 0; a < social.num_authors(); ++a) {
    if (!social.Followees(a).empty()) {
      users.push_back(
          User{static_cast<UserId>(users.size()), social.Followees(a)});
    }
  }

  StreamGenOptions stream_options;
  stream_options.duration_ms = 6 * 3600 * 1000;
  stream_options.posts_per_author = 8.0;
  stream_options.seed = 11;
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, stream_options);

  DiversityThresholds thresholds;
  thresholds.lambda_c = 18;
  thresholds.lambda_t_ms = 30 * 60 * 1000;

  std::printf("service: %zu users, %zu posts over 6h\n\n", users.size(),
              stream.size());
  std::printf("%-14s %12s %10s %9s %14s %14s\n", "engine", "diversifiers",
              "time ms", "RAM MiB", "comparisons", "insertions");
  for (Algorithm algorithm : kAllAlgorithms) {
    for (bool shared : {false, true}) {
      auto engine = shared
                        ? MakeSUserEngine(algorithm, thresholds, graph, users)
                        : MakeMUserEngine(algorithm, thresholds, graph, users);
      const MultiUserRunResult result = RunMultiUser(*engine, stream);
      std::printf("%-14s %12zu %10.1f %9.2f %14llu %14llu\n",
                  std::string(engine->name()).c_str(),
                  engine->num_diversifiers(), result.wall_ms,
                  static_cast<double>(result.peak_bytes) / (1 << 20),
                  static_cast<unsigned long long>(result.comparisons),
                  static_cast<unsigned long long>(result.insertions));
    }
  }
  std::printf(
      "\nS_* engines key shared connected components by author set: each "
      "shared component is diversified once and fanned out to all its "
      "users (paper: S_UniBin saves 43%% time / 27%% RAM vs M_UniBin).\n");
  return 0;
}
