// Unit tests for the CFG-lite statement-tree parser and the dataflow
// engine: tree shapes for the control constructs, branch merging under
// must (intersection) and may (union) semantics, bounded loop fixpoints,
// early return/break/continue edges, and the scope-exit hook that kills
// block-local facts at the closing brace.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/lexer.h"
#include "src/analysis/sema/dataflow.h"
#include "src/analysis/sema/token_util.h"

namespace firehose {
namespace analysis {
namespace sema {
namespace {

// Keeps the lexed tokens alive alongside the tree built over them.
struct ParsedBody {
  std::vector<Token> tokens;
  TokenView code;
  Stmt root;
};

ParsedBody Parse(const std::string& text) {
  ParsedBody body;
  body.tokens = Lex(text);
  body.code = CodeTokens(body.tokens);
  body.root = BuildStmtTree(body.code, 0, body.code.size());
  return body;
}

bool RangeMentions(const TokenView& code, const Stmt& stmt,
                   const std::string& ident) {
  for (size_t i = stmt.begin; i < stmt.end && i < code.size(); ++i) {
    if (IsIdent(*code[i], ident)) return true;
  }
  return false;
}

// --- BuildStmtTree -----------------------------------------------------------

TEST(StmtTreeTest, SequenceIfAndReturn) {
  const ParsedBody body =
      Parse("a = 1; if (cond) { b = 2; } else { c = 3; } return a;");
  ASSERT_EQ(body.root.kind, StmtKind::kBlock);
  ASSERT_EQ(body.root.children.size(), 3u);
  EXPECT_EQ(body.root.children[0].kind, StmtKind::kSimple);
  EXPECT_EQ(body.root.children[1].kind, StmtKind::kIf);
  EXPECT_EQ(body.root.children[2].kind, StmtKind::kReturn);

  const Stmt& branch = body.root.children[1];
  EXPECT_TRUE(RangeMentions(body.code, branch, "cond"));
  ASSERT_EQ(branch.children.size(), 2u);  // then + else
  EXPECT_EQ(branch.children[0].kind, StmtKind::kBlock);
  EXPECT_EQ(branch.children[1].kind, StmtKind::kBlock);
}

TEST(StmtTreeTest, LoopForms) {
  EXPECT_EQ(Parse("while (i < n) { ++i; }").root.children[0].kind,
            StmtKind::kLoop);
  EXPECT_EQ(Parse("for (int i = 0; i < n; ++i) sum += i;")
                .root.children[0].kind,
            StmtKind::kLoop);
  EXPECT_EQ(Parse("do { Step(); } while (Pending());").root.children[0].kind,
            StmtKind::kLoop);
}

TEST(StmtTreeTest, SwitchWithBreaks) {
  const ParsedBody body =
      Parse("switch (mode) { case 1: A(); break; default: B(); }");
  ASSERT_EQ(body.root.children.size(), 1u);
  const Stmt& sw = body.root.children[0];
  EXPECT_EQ(sw.kind, StmtKind::kSwitch);
  EXPECT_TRUE(RangeMentions(body.code, sw, "mode"));
  ASSERT_EQ(sw.children.size(), 1u);
  EXPECT_EQ(sw.children[0].kind, StmtKind::kBlock);
}

TEST(StmtTreeTest, LambdaBodyStaysOpaque) {
  // The braces of a lambda belong to its enclosing simple statement;
  // control flow inside it must not leak into the tree.
  const ParsedBody body =
      Parse("auto f = [&] { if (x) return 1; return 0; };");
  ASSERT_EQ(body.root.children.size(), 1u);
  EXPECT_EQ(body.root.children[0].kind, StmtKind::kSimple);
}

TEST(StmtTreeTest, MalformedInputDegradesWithoutLooping) {
  // Unbalanced braces and stray keywords must still terminate.
  const ParsedBody body = Parse("if ( { while } ; ) {");
  EXPECT_EQ(body.root.kind, StmtKind::kBlock);
}

// --- dataflow engine ---------------------------------------------------------

// Toy gen/kill client: an identifier `set_X` adds fact X, `clr_X`
// removes it. `must` selects intersection (all paths) vs union (any
// path) merges. Facts are depth-less: ExitScopesTo is a no-op.
class FactClient {
 public:
  using State = std::set<std::string>;

  FactClient(const TokenView& code, bool must) : code_(code), must_(must) {}

  void Transfer(const Stmt& stmt, int /*depth*/, State* state) {
    for (size_t i = stmt.begin; i < stmt.end && i < code_.size(); ++i) {
      const std::string& text = code_[i]->text;
      if (code_[i]->kind != TokenKind::kIdentifier) continue;
      if (text.rfind("set_", 0) == 0) state->insert(text.substr(4));
      if (text.rfind("clr_", 0) == 0) state->erase(text.substr(4));
    }
  }

  State Merge(const State& a, const State& b) {
    State out;
    for (const std::string& fact : a) {
      if (!must_ || b.count(fact) > 0) out.insert(fact);
    }
    if (!must_) out.insert(b.begin(), b.end());
    return out;
  }

  bool Equal(const State& a, const State& b) { return a == b; }
  void ExitScopesTo(int /*depth*/, State* /*state*/) {}

 private:
  const TokenView& code_;
  const bool must_;
};

std::set<std::string> FactsAfter(const std::string& text, bool must,
                                 std::set<std::string> entry = {}) {
  const ParsedBody body = Parse(text);
  FactClient client(body.code, must);
  const FlowResult<FactClient::State> result =
      RunDataflow(body.root, std::move(entry), &client);
  EXPECT_TRUE(result.falls_through);
  return result.next;
}

TEST(DataflowTest, SequentialAccumulation) {
  EXPECT_EQ(FactsAfter("set_a; set_b; clr_a;", /*must=*/true),
            (std::set<std::string>{"b"}));
}

TEST(DataflowTest, OneArmedIfMergesAgainstSkipPath) {
  // Must: the fact only holds on the taken branch. May: it might hold.
  EXPECT_EQ(FactsAfter("set_a; if (c) { set_b; }", /*must=*/true),
            (std::set<std::string>{"a"}));
  EXPECT_EQ(FactsAfter("set_a; if (c) { set_b; }", /*must=*/false),
            (std::set<std::string>{"a", "b"}));
}

TEST(DataflowTest, FactOnBothBranchesSurvivesMustMerge) {
  EXPECT_EQ(
      FactsAfter("if (c) { set_b; } else { set_b; set_d; }", /*must=*/true),
      (std::set<std::string>{"b"}));
}

TEST(DataflowTest, ReturningBranchDropsOutOfTheMerge) {
  // The then-arm never reaches the join, so its kill must not poison
  // the surviving path.
  EXPECT_EQ(FactsAfter("set_a; if (c) { clr_a; return; } set_b;",
                       /*must=*/true),
            (std::set<std::string>{"a", "b"}));
}

TEST(DataflowTest, LoopBodyMayRunZeroTimes) {
  // Must-facts set inside the body do not hold after the loop; under
  // may-semantics the fixpoint carries them out.
  EXPECT_EQ(FactsAfter("while (c) { set_b; }", /*must=*/true),
            (std::set<std::string>{}));
  EXPECT_EQ(FactsAfter("while (c) { set_b; }", /*must=*/false),
            (std::set<std::string>{"b"}));
}

TEST(DataflowTest, LoopFixpointReachesCrossIterationFacts) {
  // `b` is set from `a` only on the second iteration; a single body
  // pass would miss it, the fixpoint must not.
  const std::set<std::string> facts = FactsAfter(
      "while (c) { if (a_is_set) { set_b; } set_a; }", /*must=*/false,
      /*entry=*/{});
  EXPECT_EQ(facts, (std::set<std::string>{"a", "b"}));
}

TEST(DataflowTest, BreakStatesJoinTheLoopExit) {
  EXPECT_EQ(FactsAfter("while (c) { set_b; break; }", /*must=*/false),
            (std::set<std::string>{"b"}));
}

TEST(DataflowTest, ContinueFeedsTheBackEdge) {
  EXPECT_EQ(
      FactsAfter("while (c) { if (d) { set_e; continue; } set_b; }",
                 /*must=*/false),
      (std::set<std::string>{"b", "e"}));
}

TEST(DataflowTest, SwitchExitIncludesNoCaseAndBreakPaths) {
  // Must: a fact set in one case does not hold after the switch.
  EXPECT_EQ(FactsAfter("set_a; switch (m) { case 1: set_b; break; }",
                       /*must=*/true),
            (std::set<std::string>{"a"}));
  EXPECT_EQ(FactsAfter("set_a; switch (m) { case 1: set_b; break; }",
                       /*must=*/false),
            (std::set<std::string>{"a", "b"}));
}

// Scoped client: `acq_X` records fact X at the current block depth, and
// ExitScopesTo drops facts from closed blocks — the lock_guard model.
class ScopedClient {
 public:
  using State = std::map<std::string, int>;

  ScopedClient(const TokenView& code, std::vector<bool>* observations)
      : code_(code), observations_(observations) {}

  void Transfer(const Stmt& stmt, int depth, State* state) {
    for (size_t i = stmt.begin; i < stmt.end && i < code_.size(); ++i) {
      if (code_[i]->kind != TokenKind::kIdentifier) continue;
      const std::string& text = code_[i]->text;
      if (text.rfind("acq_", 0) == 0) (*state)[text.substr(4)] = depth;
      if (text.rfind("use_", 0) == 0) {
        observations_->push_back(state->count(text.substr(4)) > 0);
      }
    }
  }

  State Merge(const State& a, const State& b) {
    State out;
    for (const auto& [fact, depth] : a) {
      auto it = b.find(fact);
      if (it != b.end()) out[fact] = std::max(depth, it->second);
    }
    return out;
  }

  bool Equal(const State& a, const State& b) { return a == b; }

  void ExitScopesTo(int depth, State* state) {
    for (auto it = state->begin(); it != state->end();) {
      it = it->second > depth ? state->erase(it) : std::next(it);
    }
  }

 private:
  const TokenView& code_;
  std::vector<bool>* observations_;
};

TEST(DataflowTest, BlockScopedFactsDieAtTheClosingBrace) {
  const ParsedBody body = Parse("{ acq_m; use_m; } use_m;");
  std::vector<bool> observations;
  ScopedClient client(body.code, &observations);
  RunDataflow(body.root, ScopedClient::State{}, &client);
  // Held inside the block, released after it.
  ASSERT_EQ(observations.size(), 2u);
  EXPECT_TRUE(observations[0]);
  EXPECT_FALSE(observations[1]);
}

TEST(DataflowTest, FunctionScopedFactsSurviveNestedBlocks) {
  const ParsedBody body = Parse("acq_m; { use_m; } use_m;");
  std::vector<bool> observations;
  ScopedClient client(body.code, &observations);
  RunDataflow(body.root, ScopedClient::State{}, &client);
  ASSERT_EQ(observations.size(), 2u);
  EXPECT_TRUE(observations[0]);
  EXPECT_TRUE(observations[1]);
}

}  // namespace
}  // namespace sema
}  // namespace analysis
}  // namespace firehose
