// End-to-end integration: synthetic social graph -> author similarity ->
// similarity graph + clique cover -> one-day stream -> all SPSD and M-SPSD
// engines, cross-checked for agreement and for the paper's qualitative
// relationships.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/firehose.h"

namespace firehose {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SocialGraphOptions graph_options;
    graph_options.num_authors = 300;
    graph_options.num_communities = 10;
    graph_options.avg_followees = 25.0;
    graph_options.seed = 2016;
    social_ = new FollowGraph(GenerateSocialGraph(graph_options));

    std::vector<AuthorId> authors;
    for (AuthorId a = 0; a < social_->num_authors(); ++a) {
      authors.push_back(a);
    }
    const auto pairs = AllPairsSimilarity(*social_, authors, 0.3);
    graph_ = new AuthorGraph(
        AuthorGraph::FromSimilarities(authors, pairs, 0.7));
    cover_ = new CliqueCover(CliqueCover::Greedy(*graph_));

    StreamGenOptions stream_options;
    stream_options.duration_ms = 4 * 3600 * 1000;
    stream_options.posts_per_author = 10.0;
    stream_options.cross_author_dup_prob = 0.15;
    stream_options.seed = 7;
    const SimHasher hasher;
    stream_ = new PostStream(GenerateStream(*graph_, hasher, stream_options));
  }

  static void TearDownTestSuite() {
    delete stream_;
    delete cover_;
    delete graph_;
    delete social_;
  }

  static DiversityThresholds Thresholds() {
    DiversityThresholds t;
    t.lambda_c = 18;
    t.lambda_t_ms = 30 * 60 * 1000;
    t.lambda_a = 0.7;
    return t;
  }

  static FollowGraph* social_;
  static AuthorGraph* graph_;
  static CliqueCover* cover_;
  static PostStream* stream_;
};

FollowGraph* IntegrationFixture::social_ = nullptr;
AuthorGraph* IntegrationFixture::graph_ = nullptr;
CliqueCover* IntegrationFixture::cover_ = nullptr;
PostStream* IntegrationFixture::stream_ = nullptr;

TEST_F(IntegrationFixture, PipelineProducesNonTrivialStructures) {
  EXPECT_GT(graph_->num_edges(), 0u);
  EXPECT_GT(cover_->num_cliques(), 0u);
  EXPECT_GT(stream_->size(), 2000u);
}

TEST_F(IntegrationFixture, AllAlgorithmsEmitIdenticalSubStream) {
  std::vector<PostId> outputs[3];
  int i = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto diversifier = MakeDiversifier(algorithm, Thresholds(), graph_,
                                       algorithm == Algorithm::kCliqueBin
                                           ? cover_
                                           : nullptr);
    RunDiversifier(*diversifier, *stream_, &outputs[i]);
    ++i;
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_FALSE(outputs[0].empty());
}

TEST_F(IntegrationFixture, DiversificationPrunesButKeepsMostPosts) {
  auto diversifier =
      MakeDiversifier(Algorithm::kUniBin, Thresholds(), graph_);
  const RunResult result = RunDiversifier(*diversifier, *stream_);
  EXPECT_LT(result.posts_out, result.posts_in);
  EXPECT_GT(result.SurvivorRatio(), 0.5);
  EXPECT_LT(result.SurvivorRatio(), 1.0);
}

TEST_F(IntegrationFixture, Table3WorkTradeoffsHold) {
  RunResult results[3];
  int i = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto diversifier = MakeDiversifier(algorithm, Thresholds(), graph_,
                                       algorithm == Algorithm::kCliqueBin
                                           ? cover_
                                           : nullptr);
    results[i++] = RunDiversifier(*diversifier, *stream_);
  }
  const RunResult& unibin = results[0];
  const RunResult& neighbor = results[1];
  const RunResult& clique = results[2];
  // Comparisons: UniBin >= CliqueBin >= NeighborBin (Table 3).
  EXPECT_GT(unibin.comparisons, neighbor.comparisons);
  EXPECT_GE(clique.comparisons, neighbor.comparisons);
  // Insertions/RAM: NeighborBin >= CliqueBin >= UniBin.
  EXPECT_GT(neighbor.insertions, clique.insertions);
  EXPECT_GE(clique.insertions, unibin.insertions);
  EXPECT_GT(neighbor.peak_bytes, unibin.peak_bytes);
}

TEST_F(IntegrationFixture, DimensionAblationGrowsOutput) {
  // Figure 10's direction: disabling a dimension can only shrink Z
  // (coverage becomes easier), so the full 3-D model keeps the most posts.
  DiversityThresholds full = Thresholds();
  DiversityThresholds no_content = Thresholds();
  no_content.use_content = false;
  DiversityThresholds no_author = Thresholds();
  no_author.use_author = false;

  uint64_t out_full = 0;
  uint64_t out_no_content = 0;
  uint64_t out_no_author = 0;
  {
    auto d = MakeDiversifier(Algorithm::kUniBin, full, graph_);
    out_full = RunDiversifier(*d, *stream_).posts_out;
  }
  {
    auto d = MakeDiversifier(Algorithm::kUniBin, no_content, graph_);
    out_no_content = RunDiversifier(*d, *stream_).posts_out;
  }
  {
    auto d = MakeDiversifier(Algorithm::kUniBin, no_author, graph_);
    out_no_author = RunDiversifier(*d, *stream_).posts_out;
  }
  EXPECT_GT(out_full, out_no_content);
  EXPECT_GT(out_full, out_no_author);
}

TEST_F(IntegrationFixture, WiderTimeWindowPrunesMore) {
  DiversityThresholds narrow = Thresholds();
  narrow.lambda_t_ms = 60 * 1000;
  DiversityThresholds wide = Thresholds();
  wide.lambda_t_ms = 2 * 3600 * 1000;
  auto d_narrow = MakeDiversifier(Algorithm::kUniBin, narrow, graph_);
  auto d_wide = MakeDiversifier(Algorithm::kUniBin, wide, graph_);
  const uint64_t out_narrow = RunDiversifier(*d_narrow, *stream_).posts_out;
  const uint64_t out_wide = RunDiversifier(*d_wide, *stream_).posts_out;
  EXPECT_LE(out_wide, out_narrow);
}

TEST_F(IntegrationFixture, MultiUserEnginesAgreeEndToEnd) {
  // Every 10th author is also a user following its graph neighbors.
  std::vector<User> users;
  UserId next = 0;
  for (AuthorId a = 0; a < 300; a += 10) {
    std::vector<AuthorId> subs = graph_->Neighbors(a);
    subs.push_back(a);
    users.push_back(User{next++, subs});
  }
  auto m_engine =
      MakeMUserEngine(Algorithm::kUniBin, Thresholds(), *graph_, users);
  auto s_engine =
      MakeSUserEngine(Algorithm::kUniBin, Thresholds(), *graph_, users);
  std::vector<std::pair<PostId, UserId>> m_deliveries;
  std::vector<std::pair<PostId, UserId>> s_deliveries;
  const MultiUserRunResult m_result =
      RunMultiUser(*m_engine, *stream_, &m_deliveries);
  const MultiUserRunResult s_result =
      RunMultiUser(*s_engine, *stream_, &s_deliveries);
  EXPECT_EQ(m_deliveries, s_deliveries);
  EXPECT_EQ(m_result.deliveries, s_result.deliveries);
  // Shared components can only reduce work.
  EXPECT_LE(s_result.comparisons, m_result.comparisons);
  EXPECT_LE(s_result.insertions, m_result.insertions);
  EXPECT_LE(s_engine->num_diversifiers(),
            m_engine->num_diversifiers() * users.size());
}

TEST_F(IntegrationFixture, AuthorSimilarityDistributionShapedLikeFigure9) {
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social_->num_authors(); ++a) authors.push_back(a);
  const auto pairs = AllPairsSimilarity(*social_, authors, 0.01);
  const double total_pairs =
      static_cast<double>(authors.size()) * (authors.size() - 1) / 2;
  uint64_t ge02 = 0;
  uint64_t ge03 = 0;
  for (const auto& pair : pairs) {
    if (pair.similarity >= 0.2) ++ge02;
    if (pair.similarity >= 0.3) ++ge03;
  }
  const double frac02 = ge02 / total_pairs;
  const double frac03 = ge03 / total_pairs;
  // Figure 9's shape: a few percent of pairs ≥ 0.2, fewer ≥ 0.3.
  EXPECT_GT(frac02, 0.001);
  EXPECT_LT(frac02, 0.3);
  EXPECT_LT(frac03, frac02);
}

}  // namespace
}  // namespace firehose
