#include "src/eval/precision_recall.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

LabeledPair Pair(int raw, int norm, double cosine, bool redundant) {
  LabeledPair pair;
  pair.hamming_raw = raw;
  pair.hamming_norm = norm;
  pair.cosine = cosine;
  pair.redundant = redundant;
  return pair;
}

std::vector<LabeledPair> HandcraftedPairs() {
  return {
      Pair(2, 1, 0.95, true),   // near duplicate
      Pair(5, 4, 0.90, true),   // near duplicate
      Pair(6, 6, 0.40, false),  // coincidental close pair
      Pair(12, 11, 0.80, true),
      Pair(20, 19, 0.10, false),
      Pair(30, 29, 0.05, false),
  };
}

TEST(SweepHammingTest, ExactPrecisionRecallValues) {
  const auto sweep =
      SweepHamming(HandcraftedPairs(), ContentMeasure::kHammingRaw, 0, 32);
  // h = 5: predicted {p0, p1}, both true -> precision 1, recall 2/3.
  EXPECT_DOUBLE_EQ(sweep[5].precision, 1.0);
  EXPECT_NEAR(sweep[5].recall, 2.0 / 3.0, 1e-12);
  // h = 6: predicted {p0,p1,p2}, 2 true -> precision 2/3, recall 2/3.
  EXPECT_NEAR(sweep[6].precision, 2.0 / 3.0, 1e-12);
  // h = 12: predicted {p0,p1,p2,p3}, 3 true -> precision 3/4, recall 1.
  EXPECT_DOUBLE_EQ(sweep[12].precision, 0.75);
  EXPECT_DOUBLE_EQ(sweep[12].recall, 1.0);
  // h = 32: everything predicted -> precision 3/6.
  EXPECT_DOUBLE_EQ(sweep[32].precision, 0.5);
  EXPECT_DOUBLE_EQ(sweep[32].recall, 1.0);
}

TEST(SweepHammingTest, EmptyPredictionHasPrecisionOne) {
  const auto sweep =
      SweepHamming(HandcraftedPairs(), ContentMeasure::kHammingRaw, 0, 1);
  EXPECT_EQ(sweep[0].predicted_positive, 0u);
  EXPECT_DOUBLE_EQ(sweep[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(sweep[0].recall, 0.0);
}

TEST(SweepHammingTest, RecallIsMonotonicInThreshold) {
  const auto sweep =
      SweepHamming(HandcraftedPairs(), ContentMeasure::kHammingRaw, 0, 32);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].recall, sweep[i - 1].recall);
    EXPECT_GE(sweep[i].predicted_positive, sweep[i - 1].predicted_positive);
  }
}

TEST(SweepHammingTest, NormalizedMeasureUsesNormField) {
  const auto sweep =
      SweepHamming(HandcraftedPairs(), ContentMeasure::kHammingNorm, 0, 32);
  // h = 4 catches p0 (norm 1) and p1 (norm 4) but not raw-5-norm-4 ... p1
  // has norm 4 so both are in; precision 1, recall 2/3.
  EXPECT_DOUBLE_EQ(sweep[4].precision, 1.0);
  EXPECT_NEAR(sweep[4].recall, 2.0 / 3.0, 1e-12);
}

TEST(SweepCosineTest, HighThresholdIsPrecise) {
  const auto sweep = SweepCosine(HandcraftedPairs(), 20);
  // θ = 1.0: nothing predicted.
  EXPECT_DOUBLE_EQ(sweep.back().recall, 0.0);
  // θ = 0.85: {p0, p1} predicted, both true.
  const PrPoint& p85 = sweep[17];
  EXPECT_DOUBLE_EQ(p85.precision, 1.0);
  EXPECT_NEAR(p85.recall, 2.0 / 3.0, 1e-12);
  // θ = 0: everything predicted.
  EXPECT_DOUBLE_EQ(sweep.front().recall, 1.0);
  EXPECT_DOUBLE_EQ(sweep.front().precision, 0.5);
}

TEST(SweepCosineTest, RecallDecreasesWithThreshold) {
  const auto sweep = SweepCosine(HandcraftedPairs(), 50);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].recall, sweep[i - 1].recall);
  }
}

TEST(CrossoverTest, FindsBalancedPoint) {
  std::vector<PrPoint> sweep(3);
  sweep[0].threshold = 1;
  sweep[0].precision = 1.0;
  sweep[0].recall = 0.2;
  sweep[1].threshold = 2;
  sweep[1].precision = 0.9;
  sweep[1].recall = 0.88;
  sweep[2].threshold = 3;
  sweep[2].precision = 0.5;
  sweep[2].recall = 1.0;
  EXPECT_DOUBLE_EQ(CrossoverPoint(sweep).threshold, 2.0);
}

TEST(CrossoverTest, EmptySweepReturnsDefault) {
  EXPECT_DOUBLE_EQ(CrossoverPoint({}).threshold, 0.0);
}

TEST(SweepTest, EmptyPairsBehaveSanely) {
  const auto sweep = SweepHamming({}, ContentMeasure::kHammingRaw, 0, 5);
  for (const PrPoint& point : sweep) {
    EXPECT_DOUBLE_EQ(point.precision, 1.0);
    EXPECT_DOUBLE_EQ(point.recall, 0.0);
  }
}

}  // namespace
}  // namespace firehose
