#include "src/text/tokenize.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(TokenizeTest, SplitsOnWhitespace) {
  const auto tokens = TokenizeWords("one two  three\tfour\nfive");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"one", "two", "three", "four", "five"}));
}

TEST(TokenizeTest, EmptyInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t  ").empty());
}

TEST(TokenizeTest, ClassifiesHashtags) {
  EXPECT_EQ(ClassifyToken("#news"), TokenKind::kHashtag);
  EXPECT_EQ(ClassifyToken("#"), TokenKind::kWord);  // bare '#' is not a tag
}

TEST(TokenizeTest, ClassifiesMentions) {
  EXPECT_EQ(ClassifyToken("@user"), TokenKind::kMention);
  EXPECT_EQ(ClassifyToken("@"), TokenKind::kWord);
}

TEST(TokenizeTest, ClassifiesUrls) {
  EXPECT_EQ(ClassifyToken("http://a.b/c"), TokenKind::kUrl);
  EXPECT_EQ(ClassifyToken("https://t.co/xyz"), TokenKind::kUrl);
  EXPECT_EQ(ClassifyToken("httpsfoo"), TokenKind::kWord);
}

TEST(TokenizeTest, ClassifiesNumbers) {
  EXPECT_EQ(ClassifyToken("12345"), TokenKind::kNumber);
  EXPECT_EQ(ClassifyToken("12a45"), TokenKind::kWord);
}

TEST(TokenizeTest, TokenStructCarriesKind) {
  const auto tokens = Tokenize("read #breaking from @cnn https://t.co/x 42");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kWord);
  EXPECT_EQ(tokens[1].kind, TokenKind::kHashtag);
  EXPECT_EQ(tokens[3].kind, TokenKind::kMention);
  EXPECT_EQ(tokens[4].kind, TokenKind::kUrl);
  EXPECT_EQ(tokens[5].kind, TokenKind::kNumber);
}

TEST(DegeneratePostTest, ShortPostsAreDegenerate) {
  EXPECT_TRUE(IsDegeneratePost(""));
  EXPECT_TRUE(IsDegeneratePost("hello"));
  EXPECT_TRUE(IsDegeneratePost("#tag #tag2 @user"));  // no word tokens
  EXPECT_TRUE(IsDegeneratePost("a b c"));             // 1-char words
}

TEST(DegeneratePostTest, RealPostsAreNot) {
  EXPECT_FALSE(IsDegeneratePost("hello world"));
  EXPECT_FALSE(IsDegeneratePost("breaking news about markets"));
}

TEST(DegeneratePostTest, MinWordsParameter) {
  EXPECT_FALSE(IsDegeneratePost("hello", 1));
  EXPECT_TRUE(IsDegeneratePost("hello world", 3));
}

}  // namespace
}  // namespace firehose
