#include "src/util/bitops.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace firehose {
namespace {

TEST(BitopsTest, PopcountBasics) {
  EXPECT_EQ(Popcount64(0), 0);
  EXPECT_EQ(Popcount64(1), 1);
  EXPECT_EQ(Popcount64(0xFFFFFFFFFFFFFFFFULL), 64);
  EXPECT_EQ(Popcount64(0xAAAAAAAAAAAAAAAAULL), 32);
}

TEST(BitopsTest, HammingDistanceBasics) {
  EXPECT_EQ(HammingDistance64(0, 0), 0);
  EXPECT_EQ(HammingDistance64(0, 1), 1);
  EXPECT_EQ(HammingDistance64(0, 0xFFFFFFFFFFFFFFFFULL), 64);
  EXPECT_EQ(HammingDistance64(0b1010, 0b0101), 4);
}

TEST(BitopsTest, HammingDistanceIsAMetric) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const uint64_t c = rng.Next();
    // Identity, symmetry, bounds, triangle inequality.
    EXPECT_EQ(HammingDistance64(a, a), 0);
    EXPECT_EQ(HammingDistance64(a, b), HammingDistance64(b, a));
    EXPECT_GE(HammingDistance64(a, b), 0);
    EXPECT_LE(HammingDistance64(a, b), 64);
    EXPECT_LE(HammingDistance64(a, c),
              HammingDistance64(a, b) + HammingDistance64(b, c));
  }
}

TEST(BitopsTest, FlippingKBitsGivesDistanceK) {
  Rng rng(13);
  for (int k = 0; k <= 64; k += 8) {
    uint64_t a = rng.Next();
    uint64_t b = a;
    // Flip exactly k distinct bit positions.
    for (int bit = 0; bit < k; ++bit) b ^= 1ULL << bit;
    EXPECT_EQ(HammingDistance64(a, b), k);
  }
}

}  // namespace
}  // namespace firehose
