// Cross-kernel differential fuzz harness (DESIGN.md §4k).
//
// Every SIMD variant of the two kernel primitives must be bit-identical
// to the scalar reference — decisions AND counters — or runtime dispatch
// would make diversification results machine-dependent. The harness
// drives each variant returned by AvailableKernelOps() against the
// scalar ops (and against independent re-implementations here, so a bug
// shared by scalar.cc and the SIMD ports cannot self-certify) across
// seeded random inputs that concentrate on the edges where vector code
// breaks: misaligned bases, short tails (0..65 lanes), duplicate
// fingerprints, λc extremes, and ring states whose scan crosses the
// wrap boundary.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/coverage_kernel.h"
#include "src/core/kernels/dispatch.h"
#include "src/core/thresholds.h"
#include "src/stream/post_bin.h"
#include "src/util/random.h"

namespace firehose {
namespace {

using kernels::AvailableKernelOps;
using kernels::KernelOps;
using kernels::KernelOpsFor;
using kernels::KernelVariant;
using kernels::kNoHit;

// Independent oracle for find_newest_within: one-wide, std::popcount.
size_t ReferenceFindNewest(const std::vector<uint64_t>& hashes, size_t lo,
                           size_t hi, uint64_t probe, int lambda_c) {
  for (size_t j = hi; j-- > lo;) {
    if (static_cast<int>(std::popcount(hashes[j] ^ probe)) <= lambda_c) {
      return j;
    }
  }
  return kNoHit;
}

// Independent oracle for sparse_dot: quadratic pair enumeration, so it
// does not share the merge-join structure under test.
uint64_t ReferenceSparseDot(const std::vector<uint64_t>& a_hash,
                            const std::vector<uint32_t>& a_count,
                            const std::vector<uint64_t>& b_hash,
                            const std::vector<uint32_t>& b_count) {
  uint64_t dot = 0;
  for (size_t i = 0; i < a_hash.size(); ++i) {
    for (size_t j = 0; j < b_hash.size(); ++j) {
      if (a_hash[i] == b_hash[j]) {
        dot += static_cast<uint64_t>(a_count[i]) * b_count[j];
      }
    }
  }
  return dot;
}

// A fingerprint within `flips` bit flips of `probe` — plants hits at
// controlled Hamming distances.
uint64_t NearProbe(Rng& rng, uint64_t probe, int flips) {
  uint64_t h = probe;
  for (int f = 0; f < flips; ++f) {
    h ^= uint64_t{1} << rng.UniformInt(64);
  }
  return h;
}

const int kLambdas[] = {-1, 0, 3, 18, 64};

TEST(KernelEquivalenceFuzz, ReportsAtLeastScalar) {
  const std::vector<const KernelOps*> variants = AvailableKernelOps();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front()->variant, KernelVariant::kScalar);
  ASSERT_NE(KernelOpsFor(KernelVariant::kScalar), nullptr);
  // Ascending, no duplicates.
  for (size_t i = 1; i < variants.size(); ++i) {
    EXPECT_LT(static_cast<int>(variants[i - 1]->variant),
              static_cast<int>(variants[i]->variant));
  }
}

TEST(KernelEquivalenceFuzz, FindNewestWithinMatchesOracle) {
  Rng rng(0xF1DE5);
  const std::vector<const KernelOps*> variants = AvailableKernelOps();

  for (int round = 0; round < 400; ++round) {
    // Short tails 0..65 dominate; a sprinkle of larger lanes exercises
    // the wide-iteration + prefetch paths.
    const size_t n = round % 4 == 0
                         ? 66 + static_cast<size_t>(rng.UniformInt(4031))
                         : static_cast<size_t>(rng.UniformInt(66));
    const uint64_t probe = rng.Next();
    std::vector<uint64_t> hashes(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.UniformInt(4)) {
        case 0:  // planted near-hit at a random small distance
          hashes[i] = NearProbe(rng, probe, static_cast<int>(rng.UniformInt(20)));
          break;
        case 1:  // exact duplicate of the probe
          hashes[i] = probe;
          break;
        case 2:  // duplicate of an earlier lane, if any
          hashes[i] = i > 0 ? hashes[rng.UniformInt(i)] : rng.Next();
          break;
        default:
          hashes[i] = rng.Next();
      }
    }
    for (const int lambda_c : kLambdas) {
      // Sweep [lo, hi) windows, including empty and full.
      for (int w = 0; w < 8; ++w) {
        const size_t lo = static_cast<size_t>(rng.UniformInt(n + 1));
        const size_t hi = lo + static_cast<size_t>(rng.UniformInt(n + 1 - lo));
        const size_t want =
            ReferenceFindNewest(hashes, lo, hi, probe, lambda_c);
        for (const KernelOps* ops : variants) {
          EXPECT_EQ(ops->find_newest_within(hashes.data(), lo, hi, probe,
                                            lambda_c),
                    want)
              << ops->name << " n=" << n << " lo=" << lo << " hi=" << hi
              << " lambda_c=" << lambda_c << " round=" << round;
        }
      }
    }
  }
}

TEST(KernelEquivalenceFuzz, FindNewestWithinMisalignedBases) {
  // SIMD loads anchored at hashes.data() + offset for every offset in a
  // vector width: catches alignment assumptions and tail masks.
  Rng rng(0xA11C4);
  const std::vector<const KernelOps*> variants = AvailableKernelOps();
  const uint64_t probe = rng.Next();
  std::vector<uint64_t> hashes(96);
  for (auto& h : hashes) {
    h = rng.Bernoulli(0.3) ? NearProbe(rng, probe, 5) : rng.Next();
  }
  for (size_t lo = 0; lo < 16; ++lo) {
    for (size_t hi = lo; hi <= hashes.size(); ++hi) {
      for (const int lambda_c : kLambdas) {
        const size_t want =
            ReferenceFindNewest(hashes, lo, hi, probe, lambda_c);
        for (const KernelOps* ops : variants) {
          ASSERT_EQ(ops->find_newest_within(hashes.data(), lo, hi, probe,
                                            lambda_c),
                    want)
              << ops->name << " lo=" << lo << " hi=" << hi
              << " lambda_c=" << lambda_c;
        }
      }
    }
  }
}

TEST(KernelEquivalenceFuzz, SparseDotMatchesOracle) {
  Rng rng(0xD07);
  const std::vector<const KernelOps*> variants = AvailableKernelOps();

  for (int round = 0; round < 300; ++round) {
    const size_t a_n = static_cast<size_t>(rng.UniformInt(66));
    const size_t b_n = round % 3 == 0
                           ? 66 + static_cast<size_t>(rng.UniformInt(446))
                           : static_cast<size_t>(rng.UniformInt(66));
    // Strictly increasing hash lanes from a small shared universe, so
    // overlap is common; counts stress the u32×u32 product range.
    auto make = [&](size_t n) {
      std::set<uint64_t> picked;
      while (picked.size() < n) {
        picked.insert(rng.UniformInt(512) * 0x9E3779B97F4A7C15ULL);
      }
      return std::vector<uint64_t>(picked.begin(), picked.end());
    };
    std::vector<uint64_t> a_hash = make(a_n);
    std::vector<uint64_t> b_hash = make(b_n);
    std::sort(a_hash.begin(), a_hash.end());
    std::sort(b_hash.begin(), b_hash.end());
    std::vector<uint32_t> a_count(a_n);
    std::vector<uint32_t> b_count(b_n);
    for (auto& c : a_count) {
      c = rng.Bernoulli(0.1) ? 0xFFFFFFFFu
                             : static_cast<uint32_t>(rng.UniformInt(100) + 1);
    }
    for (auto& c : b_count) {
      c = rng.Bernoulli(0.1) ? 0xFFFFFFFFu
                             : static_cast<uint32_t>(rng.UniformInt(100) + 1);
    }
    const uint64_t want = ReferenceSparseDot(a_hash, a_count, b_hash, b_count);
    for (const KernelOps* ops : variants) {
      EXPECT_EQ(ops->sparse_dot(a_hash.data(), a_count.data(), a_n,
                                b_hash.data(), b_count.data(), b_n),
                want)
          << ops->name << " a_n=" << a_n << " b_n=" << b_n
          << " round=" << round;
    }
  }
}

// Builds a bin whose ring state (head offset, wrap split) is controlled
// by pushing `evicted + live` entries and evicting the first `evicted`:
// after the evictions head_ = evicted & mask, so later pushes wrap.
PostBin MakeBin(Rng& rng, size_t evicted, size_t live, uint64_t probe) {
  PostBin bin;
  int64_t t = 0;
  for (size_t i = 0; i < evicted; ++i) {
    bin.Push({t, rng.Next(), static_cast<AuthorId>(rng.UniformInt(8)),
              static_cast<PostId>(i)});
    t += static_cast<int64_t>(rng.UniformInt(3));
  }
  if (evicted > 0) {
    t += 1;  // strict gap so the eviction cutoff splits cleanly
    bin.EvictOlderThan(t);
  }
  for (size_t i = 0; i < live; ++i) {
    uint64_t h;
    switch (rng.UniformInt(3)) {
      case 0:
        h = NearProbe(rng, probe, static_cast<int>(rng.UniformInt(24)));
        break;
      case 1:
        h = probe;
        break;
      default:
        h = rng.Next();
    }
    bin.Push({t, h, static_cast<AuthorId>(rng.UniformInt(8)),
              static_cast<PostId>(evicted + i)});
    t += static_cast<int64_t>(rng.UniformInt(3));
  }
  return bin;
}

// Full-scan oracle: per-entry newest-first walk applying the documented
// accounting contract directly, independent of the segment/kernel
// structure in ScanCoveredSimHashWithOps.
template <typename AuthorSimilarFn>
CoverageScanResult ReferenceScan(const PostBin& bin, int64_t cutoff_ms,
                                 uint64_t probe, AuthorId author,
                                 const DiversityThresholds& thresholds,
                                 AuthorSimilarFn&& author_similar) {
  CoverageScanResult result;
  if (bin.empty()) return result;
  result.pruned = bin.CountOlderThan(cutoff_ms);
  const int lambda_c = thresholds.use_content ? thresholds.lambda_c : 64;
  const size_t in_window = bin.size() - result.pruned;
  for (size_t i = 0; i < in_window; ++i) {
    const BinEntry entry = bin.FromNewest(i);
    ++result.comparisons;
    if (static_cast<int>(std::popcount(entry.simhash ^ probe)) <= lambda_c &&
        (!thresholds.use_author || entry.author == author ||
         author_similar(entry.author))) {
      result.covered = true;
      return result;
    }
  }
  return result;
}

TEST(KernelEquivalenceFuzz, ScanCoveredBitIdenticalAcrossVariantsAndSegments) {
  Rng rng(0x5CA9);
  const std::vector<const KernelOps*> variants = AvailableKernelOps();
  const KernelOps& scalar = *KernelOpsFor(KernelVariant::kScalar);

  // (evicted, live) pairs sweep head offsets and wrap splits: evicted=0
  // is a single segment; larger evicted counts move the split point
  // through (and past) vector-width boundaries.
  const size_t kShapes[][2] = {{0, 0},   {0, 1},  {0, 7},   {0, 64},
                               {1, 63},  {3, 61}, {5, 100}, {17, 47},
                               {31, 33}, {60, 4}, {63, 65}, {120, 130}};
  for (const auto& shape : kShapes) {
    const uint64_t probe = rng.Next();
    const PostBin bin = MakeBin(rng, shape[0], shape[1], probe);
    PostBin::LaneSpan segments[2];
    const size_t num_segments = bin.Segments(segments);
    ASSERT_LE(num_segments, 2u);

    for (const int lambda_c : kLambdas) {
      for (const bool use_content : {true, false}) {
        for (const bool use_author : {true, false}) {
          DiversityThresholds thresholds;
          thresholds.lambda_c = lambda_c;
          thresholds.use_content = use_content;
          thresholds.use_author = use_author;
          // Odd authors are "similar" — exercises author-miss kernel
          // re-entry (even authors != probe author fall through).
          const AuthorId author = 1;
          auto similar = [](AuthorId a) { return a % 2 == 1; };
          // Cutoffs: everything in window, a mid-window prune, and
          // everything pruned.
          const int64_t newest_t =
              bin.empty() ? 0 : bin.FromNewest(0).time_ms;
          for (const int64_t cutoff :
               {int64_t{0}, newest_t / 2, newest_t + 1}) {
            const CoverageScanResult want =
                ReferenceScan(bin, cutoff, probe, author, thresholds,
                              similar);
            const CoverageScanResult scalar_got = ScanCoveredSimHashWithOps(
                scalar, bin, cutoff, probe, author, thresholds, similar);
            EXPECT_EQ(scalar_got.covered, want.covered);
            EXPECT_EQ(scalar_got.comparisons, want.comparisons);
            EXPECT_EQ(scalar_got.pruned, want.pruned);
            for (const KernelOps* ops : variants) {
              const CoverageScanResult got = ScanCoveredSimHashWithOps(
                  *ops, bin, cutoff, probe, author, thresholds, similar);
              EXPECT_EQ(got.covered, want.covered)
                  << ops->name << " evicted=" << shape[0]
                  << " live=" << shape[1] << " segs=" << num_segments
                  << " lambda_c=" << lambda_c << " cutoff=" << cutoff
                  << " use_content=" << use_content
                  << " use_author=" << use_author;
              EXPECT_EQ(got.comparisons, want.comparisons)
                  << ops->name << " evicted=" << shape[0]
                  << " live=" << shape[1] << " lambda_c=" << lambda_c;
              EXPECT_EQ(got.pruned, want.pruned) << ops->name;
            }
          }
        }
      }
    }
  }
}

TEST(KernelEquivalenceFuzz, ScanCoveredRandomizedRings) {
  Rng rng(0xB1B0);
  const std::vector<const KernelOps*> variants = AvailableKernelOps();

  for (int round = 0; round < 120; ++round) {
    const size_t evicted = static_cast<size_t>(rng.UniformInt(200));
    const size_t live = static_cast<size_t>(rng.UniformInt(300));
    const uint64_t probe = rng.Next();
    const PostBin bin = MakeBin(rng, evicted, live, probe);
    DiversityThresholds thresholds;
    thresholds.lambda_c = kLambdas[rng.UniformInt(std::size(kLambdas))];
    thresholds.use_content = rng.Bernoulli(0.9);
    thresholds.use_author = rng.Bernoulli(0.7);
    const AuthorId author = static_cast<AuthorId>(rng.UniformInt(8));
    auto similar = [](AuthorId a) { return a % 3 == 0; };
    const int64_t cutoff =
        bin.empty() ? 0
                    : rng.UniformRange(0, bin.FromNewest(0).time_ms + 1);
    const CoverageScanResult want =
        ReferenceScan(bin, cutoff, probe, author, thresholds, similar);
    for (const KernelOps* ops : variants) {
      const CoverageScanResult got = ScanCoveredSimHashWithOps(
          *ops, bin, cutoff, probe, author, thresholds, similar);
      EXPECT_EQ(got.covered, want.covered)
          << ops->name << " round=" << round;
      EXPECT_EQ(got.comparisons, want.comparisons)
          << ops->name << " round=" << round;
      EXPECT_EQ(got.pruned, want.pruned) << ops->name << " round=" << round;
    }
  }
}

}  // namespace
}  // namespace firehose
