#include "src/author/similarity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/gen/social_graph_gen.h"
#include "src/util/random.h"

namespace firehose {
namespace {

FollowGraph MakeTriangleGraph() {
  // Followee sets: 0 -> {2,3}, 1 -> {2,3,4}, 5 -> {6}.
  FollowGraph g(7);
  g.AddFollow(0, 2);
  g.AddFollow(0, 3);
  g.AddFollow(1, 2);
  g.AddFollow(1, 3);
  g.AddFollow(1, 4);
  g.AddFollow(5, 6);
  g.Finalize();
  return g;
}

TEST(AuthorSimilarityTest, ExactCosineValue) {
  const FollowGraph g = MakeTriangleGraph();
  // |{2,3} ∩ {2,3,4}| / sqrt(2*3) = 2/sqrt(6).
  EXPECT_NEAR(AuthorCosineSimilarity(g, 0, 1), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(AuthorSimilarityTest, SymmetricSimilarity) {
  const FollowGraph g = MakeTriangleGraph();
  EXPECT_DOUBLE_EQ(AuthorCosineSimilarity(g, 0, 1),
                   AuthorCosineSimilarity(g, 1, 0));
}

TEST(AuthorSimilarityTest, DisjointFolloweesAreZero) {
  const FollowGraph g = MakeTriangleGraph();
  EXPECT_DOUBLE_EQ(AuthorCosineSimilarity(g, 0, 5), 0.0);
}

TEST(AuthorSimilarityTest, EmptyFolloweeSetIsZero) {
  const FollowGraph g = MakeTriangleGraph();
  // Author 2 follows nobody.
  EXPECT_DOUBLE_EQ(AuthorCosineSimilarity(g, 2, 0), 0.0);
}

TEST(AuthorSimilarityTest, IdenticalFolloweesAreOne) {
  FollowGraph g(4);
  g.AddFollow(0, 2);
  g.AddFollow(0, 3);
  g.AddFollow(1, 2);
  g.AddFollow(1, 3);
  g.Finalize();
  EXPECT_NEAR(AuthorCosineSimilarity(g, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(AuthorDistance(g, 0, 1), 0.0, 1e-12);
}

TEST(AuthorSimilarityTest, DistanceIsOneMinusSimilarity) {
  const FollowGraph g = MakeTriangleGraph();
  EXPECT_DOUBLE_EQ(AuthorDistance(g, 0, 1),
                   1.0 - AuthorCosineSimilarity(g, 0, 1));
}

TEST(AllPairsSimilarityTest, FindsExpectedPairOnSmallGraph) {
  const FollowGraph g = MakeTriangleGraph();
  const std::vector<AuthorId> authors = {0, 1, 5};
  const auto pairs = AllPairsSimilarity(g, authors, 0.1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_NEAR(pairs[0].similarity, 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(AllPairsSimilarityTest, ThresholdFilters) {
  const FollowGraph g = MakeTriangleGraph();
  const std::vector<AuthorId> authors = {0, 1, 5};
  EXPECT_TRUE(AllPairsSimilarity(g, authors, 0.95).empty());
}

TEST(AllPairsSimilarityTest, MatchesBruteForceOnRandomGraph) {
  SocialGraphOptions options;
  options.num_authors = 120;
  options.num_communities = 4;
  options.avg_followees = 12.0;
  options.seed = 5;
  const FollowGraph g = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < g.num_authors(); ++a) authors.push_back(a);

  const double min_sim = 0.2;
  const auto fast = AllPairsSimilarity(g, authors, min_sim);

  std::map<std::pair<AuthorId, AuthorId>, double> brute;
  for (AuthorId a = 0; a < g.num_authors(); ++a) {
    for (AuthorId b = a + 1; b < g.num_authors(); ++b) {
      const double sim = AuthorCosineSimilarity(g, a, b);
      if (sim >= min_sim) brute[{a, b}] = sim;
    }
  }
  ASSERT_EQ(fast.size(), brute.size());
  for (const auto& pair : fast) {
    auto it = brute.find({pair.a, pair.b});
    ASSERT_NE(it, brute.end());
    EXPECT_NEAR(pair.similarity, it->second, 1e-9);
  }
}

TEST(AllPairsSimilarityTest, RestrictsToGivenSubset) {
  const FollowGraph g = MakeTriangleGraph();
  // Author 1 excluded: no pair can reach the threshold.
  EXPECT_TRUE(AllPairsSimilarity(g, {0, 5}, 0.1).empty());
}

TEST(SimilarityDeltaTest, FollowChangeTouchesExpectedPairs) {
  // 0 -> {2,3}, 1 -> {2,3,4}, 5 -> {6}. Author 5 now also follows 2.
  FollowGraph g = MakeTriangleGraph();
  g.AddFollow(5, 2);
  g.Finalize();
  const std::vector<AuthorId> authors = {0, 1, 5};
  const auto delta = SimilarityDeltaForFollowChange(g, 5, 2, authors);
  // Pairs involving 5 that share a followee now: (0,5) and (1,5).
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].a, 0u);
  EXPECT_EQ(delta[0].b, 5u);
  EXPECT_NEAR(delta[0].similarity, AuthorCosineSimilarity(g, 0, 5), 1e-12);
  EXPECT_EQ(delta[1].a, 1u);
  EXPECT_EQ(delta[1].b, 5u);
}

TEST(SimilarityDeltaTest, UnfollowReportsZeroedPairs) {
  // Authors 0 and 1 share followees {2,3}; author 0 unfollows both.
  FollowGraph g(5);
  g.AddFollow(0, 2);
  g.AddFollow(1, 2);
  g.Finalize();
  // Simulate the unfollow by rebuilding without the edge.
  FollowGraph after(5);
  after.AddFollow(1, 2);
  after.AddFollow(0, 3);  // 0 still follows something else
  after.Finalize();
  const auto delta =
      SimilarityDeltaForFollowChange(after, 0, 2, {0, 1});
  // Pair (0,1) must be reported with its new similarity: 0.
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].a, 0u);
  EXPECT_EQ(delta[0].b, 1u);
  EXPECT_DOUBLE_EQ(delta[0].similarity, 0.0);
}

TEST(SimilarityDeltaTest, FollowerOutsideSubsetYieldsNothing) {
  FollowGraph g = MakeTriangleGraph();
  const auto delta = SimilarityDeltaForFollowChange(g, 0, 2, {1, 5});
  EXPECT_TRUE(delta.empty());
}

TEST(SimilarityDeltaTest, DeltaMatchesFullRecomputeOnRandomGraph) {
  SocialGraphOptions options;
  options.num_authors = 100;
  options.num_communities = 4;
  options.avg_followees = 10.0;
  options.seed = 13;
  FollowGraph g = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < g.num_authors(); ++a) authors.push_back(a);

  Rng rng(14);
  for (int round = 0; round < 10; ++round) {
    const AuthorId follower = static_cast<AuthorId>(rng.UniformInt(100));
    const AuthorId followee = static_cast<AuthorId>(rng.UniformInt(100));
    if (follower == followee) continue;
    g.AddFollow(follower, followee);
    g.Finalize();
    const auto delta =
        SimilarityDeltaForFollowChange(g, follower, followee, authors);
    // Every reported pair's similarity must equal the exact recompute,
    // and every pair involving `follower` with nonzero similarity must
    // be present.
    for (const auto& pair : delta) {
      EXPECT_NEAR(pair.similarity, AuthorCosineSimilarity(g, pair.a, pair.b),
                  1e-12);
    }
    for (AuthorId other = 0; other < 100; ++other) {
      if (other == follower) continue;
      if (AuthorCosineSimilarity(g, follower, other) > 0.0) {
        const AuthorId a = std::min(follower, other);
        const AuthorId b = std::max(follower, other);
        const bool found =
            std::any_of(delta.begin(), delta.end(),
                        [&](const AuthorPairSimilarity& p) {
                          return p.a == a && p.b == b;
                        });
        EXPECT_TRUE(found) << "missing pair " << a << "," << b;
      }
    }
  }
}

TEST(AllPairsSimilarityTest, HubCapSkipsOnlyHubContributions) {
  const FollowGraph g = MakeTriangleGraph();
  const std::vector<AuthorId> authors = {0, 1, 5};
  // Followees 2 and 3 each have 2 followers; a cap of 1 suppresses them.
  EXPECT_EQ(AllPairsSimilarity(g, authors, 0.01, 1).size(), 0u);
  EXPECT_EQ(AllPairsSimilarity(g, authors, 0.01, 2).size(), 1u);
}

TEST(AllPairsSimilarityTest, ResultsSortedByPair) {
  SocialGraphOptions options;
  options.num_authors = 60;
  options.seed = 9;
  const FollowGraph g = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < g.num_authors(); ++a) authors.push_back(a);
  const auto pairs = AllPairsSimilarity(g, authors, 0.05);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_TRUE(pairs[i - 1].a < pairs[i].a ||
                (pairs[i - 1].a == pairs[i].a && pairs[i - 1].b < pairs[i].b));
  }
  for (const auto& p : pairs) EXPECT_LT(p.a, p.b);
}

}  // namespace
}  // namespace firehose
