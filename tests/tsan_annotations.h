#ifndef FIREHOSE_TESTS_TSAN_ANNOTATIONS_H_
#define FIREHOSE_TESTS_TSAN_ANNOTATIONS_H_

// Sanitizer detection, happens-before annotations and stress-test pacing
// shared by the concurrency tests (race_stress_test.cc). Build any of the
// `asan`/`ubsan`/`tsan` CMake presets to run the suite instrumented; the
// tests scale their iteration counts down under instrumentation so the
// sanitized ctest wall time stays reasonable.

#include <cstdint>
#include <thread>

#include "src/util/random.h"

// FIREHOSE_TSAN / FIREHOSE_ASAN: 1 when the matching sanitizer is active.
#if defined(__SANITIZE_THREAD__)
#define FIREHOSE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FIREHOSE_TSAN 1
#endif
#endif
#ifndef FIREHOSE_TSAN
#define FIREHOSE_TSAN 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define FIREHOSE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FIREHOSE_ASAN 1
#endif
#endif
#ifndef FIREHOSE_ASAN
#define FIREHOSE_ASAN 0
#endif

// Happens-before annotations for synchronization TSan cannot see through
// (none in the library today — the SPSC protocol is plain release/acquire
// — but stress tests for intentionally-racy monitoring reads need them).
// No-ops outside TSan builds; under TSan they map to the dynamic
// annotations the runtime exports.
#if FIREHOSE_TSAN
extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
}
#define FIREHOSE_ANNOTATE_HAPPENS_BEFORE(addr) \
  AnnotateHappensBefore(__FILE__, __LINE__, addr)
#define FIREHOSE_ANNOTATE_HAPPENS_AFTER(addr) \
  AnnotateHappensAfter(__FILE__, __LINE__, addr)
#else
#define FIREHOSE_ANNOTATE_HAPPENS_BEFORE(addr) ((void)(addr))
#define FIREHOSE_ANNOTATE_HAPPENS_AFTER(addr) ((void)(addr))
#endif

namespace firehose {
namespace testing_util {

/// Instrumented builds run each memory access through the sanitizer
/// runtime (5-20x slower); shrink iteration counts so the stress suite
/// still explores many interleavings without blowing the ctest budget.
constexpr int kStressScale = (FIREHOSE_TSAN || FIREHOSE_ASAN) ? 6 : 1;

constexpr int ScaledIterations(int base) {
  return base / kStressScale > 0 ? base / kStressScale : 1;
}

/// Deterministic randomized backoff: each call spins, yields or proceeds
/// immediately with seed-derived probabilities. Injecting irregular timing
/// into producer/consumer loops shakes out interleavings a uniform
/// spin-loop never reaches (e.g. full-queue wraparound immediately
/// followed by empty-queue drain).
class RandomBackoff {
 public:
  explicit RandomBackoff(uint64_t seed) : rng_(seed) {}

  void Pause() {
    const uint64_t choice = rng_.UniformInt(8);
    if (choice == 0) {
      std::this_thread::yield();
    } else if (choice < 3) {
      Spin(static_cast<int>(rng_.UniformInt(64)));
    }
    // else: no pause — hammer the queue back-to-back.
  }

 private:
  static void Spin(int laps) {
    // volatile sink (not a volatile induction variable — deprecated in
    // C++20) keeps the loop from being optimized away.
    volatile int sink = 0;
    for (int i = 0; i < laps; ++i) sink = i;
    (void)sink;
  }

  Rng rng_;
};

}  // namespace testing_util
}  // namespace firehose

#endif  // FIREHOSE_TESTS_TSAN_ANNOTATIONS_H_
