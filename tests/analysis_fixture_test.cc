// Runs the analyzer over the deliberately-broken fixture files under
// tests/analysis/fixtures/ — the proof that each semantic pass fires on
// its seeded hazard and stays silent on the clean twin. Fixtures are
// read from disk (FIREHOSE_ANALYSIS_FIXTURE_DIR, injected by CMake) and
// presented with synthetic src/ paths so module- and allowlist-gated
// passes see them as production code. The driver itself skips
// directories named `fixtures`, so these files never taint a real run.
//
// Also freezes the SARIF shape of one semantic finding against a golden
// file; regenerate with FIREHOSE_UPDATE_GOLDEN=1 after an intentional
// format change.

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/sarif.h"

namespace firehose {
namespace analysis {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FIREHOSE_ANALYSIS_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Loads a fixture from disk and presents it to Analyze under a
// synthetic repo path, running only `check`.
AnalysisResult RunFixture(const std::string& fixture,
                          const std::string& presented_path,
                          const std::string& check) {
  AnalysisOptions options;
  options.checks = {check};
  return Analyze({{presented_path, ReadFixture(fixture)}}, options);
}

TEST(FixtureTest, ViewInvalidationFiresOnStaleSpanRead) {
  const AnalysisResult result =
      RunFixture("view_invalidation_bad.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "view-invalidation");
  EXPECT_NE(result.findings[0].message.find("'segments'"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("bin.Push()"), std::string::npos);
}

TEST(FixtureTest, ViewInvalidationSilentAfterReacquire) {
  const AnalysisResult result =
      RunFixture("view_invalidation_clean.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, LockDisciplineFiresOnUnlockedAccessAndCall) {
  const AnalysisResult result = RunFixture(
      "lock_discipline_bad.cc", "src/obs/lock_fixture.cc", "lock-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 2u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.check, "lock-discipline");
    EXPECT_NE(finding.message.find("mu_"), std::string::npos);
  }
}

TEST(FixtureTest, LockDisciplineSilentUnderGuards) {
  const AnalysisResult result = RunFixture(
      "lock_discipline_clean.cc", "src/obs/lock_fixture.cc",
      "lock-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, AtomicOrderingFiresOnDefaultsAndOffSeamRelaxed) {
  const AnalysisResult result = RunFixture(
      "atomic_ordering_bad.cc", "src/eval/atomic_fixture.cc",
      "atomic-ordering");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 3u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.check, "atomic-ordering");
  }
}

TEST(FixtureTest, AtomicOrderingSilentWithExplicitOrders) {
  const AnalysisResult result = RunFixture(
      "atomic_ordering_clean.cc", "src/eval/atomic_fixture.cc",
      "atomic-ordering");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, BlockingFiresOneCallDeepFromOffer) {
  const AnalysisResult result = RunFixture(
      "blocking_bad.cc", "src/core/blocking_fixture.cc",
      "blocking-in-hot-path");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("fprintf"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("Offer -> LogDecision"),
            std::string::npos);
}

TEST(FixtureTest, BlockingSilentWhenIoIsNotReachableFromOffer) {
  const AnalysisResult result = RunFixture(
      "blocking_clean.cc", "src/core/blocking_fixture.cc",
      "blocking-in-hot-path");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, ThreadConfinementFiresOnCrossRoleTouches) {
  const AnalysisResult result = RunFixture(
      "thread_confinement_bad.cc", "src/net/confinement_fixture.cc",
      "thread-confinement");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 3u);
  std::set<std::string> tokens;
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.check, "thread-confinement");
    tokens.insert(finding.token);
  }
  EXPECT_EQ(tokens, (std::set<std::string>{"timeline_@dispatcher",
                                           "queue_.Push@shard_worker",
                                           "queue_.TryPop@dispatcher"}));
}

TEST(FixtureTest, ThreadConfinementCatchesCrossThreadPush) {
  // The acceptance mutation: a worker-side Push on a producer-only
  // queue must be one of the findings, with the worker chain attached.
  const AnalysisResult result = RunFixture(
      "thread_confinement_bad.cc", "src/net/confinement_fixture.cc",
      "thread-confinement");
  ASSERT_TRUE(result.ok) << result.error;
  bool found = false;
  for (const Finding& finding : result.findings) {
    if (finding.token == "queue_.Push@shard_worker") {
      found = true;
      EXPECT_NE(finding.message.find("FIREHOSE_PRODUCER_ONLY(dispatcher)"),
                std::string::npos);
      EXPECT_NE(finding.message.find("Worker::Loop -> Worker::Drain"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FixtureTest, ThreadConfinementDedupesToShortestChain) {
  // timeline_ is touched from NearTouch (2 hops) and Far (3 hops via
  // Mid); the (check, path, token) collapse must keep only the shorter
  // chain's finding.
  const AnalysisResult result = RunFixture(
      "thread_confinement_bad.cc", "src/net/confinement_fixture.cc",
      "thread-confinement");
  ASSERT_TRUE(result.ok) << result.error;
  int timeline_findings = 0;
  for (const Finding& finding : result.findings) {
    if (finding.token != "timeline_@dispatcher") continue;
    ++timeline_findings;
    EXPECT_NE(finding.message.find("Worker::Dispatch -> Worker::NearTouch"),
              std::string::npos);
    EXPECT_EQ(finding.message.find("Far"), std::string::npos)
        << "longer chain survived the dedupe: " << finding.message;
  }
  EXPECT_EQ(timeline_findings, 1);
}

TEST(FixtureTest, ThreadConfinementSilentOnCleanRoles) {
  const AnalysisResult result = RunFixture(
      "thread_confinement_clean.cc", "src/net/confinement_fixture.cc",
      "thread-confinement");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, UntrustedInputFiresDirectAndInterprocedural) {
  const AnalysisResult result = RunFixture(
      "untrusted_input_bad.cc", "src/net/taint_fixture.cc",
      "untrusted-input");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_NE(result.findings[0].message.find("'resize' argument"),
            std::string::npos);
  EXPECT_NE(result.findings[1].message.find("arg 1 of 'Apply'"),
            std::string::npos);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("from ReadWire"), std::string::npos);
  }
}

TEST(FixtureTest, UntrustedInputSilentAfterBoundChecks) {
  const AnalysisResult result = RunFixture(
      "untrusted_input_clean.cc", "src/net/taint_fixture.cc",
      "untrusted-input");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, OrderingFiresOnBareWaitOutsideLoop) {
  const AnalysisResult result = RunFixture(
      "condvar_wait_bad.cc", "src/runtime/wait_fixture.cc",
      "ordering-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("'cv.wait(lock)'"),
            std::string::npos);
  EXPECT_NE(result.findings[0].message.find("Gate::Await"),
            std::string::npos);
}

TEST(FixtureTest, OrderingSilentOnPredicateWaits) {
  const AnalysisResult result = RunFixture(
      "condvar_wait_clean.cc", "src/runtime/wait_fixture.cc",
      "ordering-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, OrderingFiresOnDecideBeforeAppend) {
  const AnalysisResult result = RunFixture(
      "wal_order_bad.cc", "src/dur/order_fixture.cc", "ordering-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("'Offer' precedes"),
            std::string::npos);
  EXPECT_NE(result.findings[0].message.find("wal_->Append"),
            std::string::npos);
}

TEST(FixtureTest, OrderingSilentOnAppendBeforeDecide) {
  const AnalysisResult result = RunFixture(
      "wal_order_clean.cc", "src/dur/order_fixture.cc",
      "ordering-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, SemanticFindingSarifMatchesGolden) {
  const AnalysisResult result =
      RunFixture("view_invalidation_bad.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  const std::string sarif = ToSarif(result.findings);

  const std::string golden_path = FixturePath("view_invalidation.sarif");
  if (std::getenv("FIREHOSE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << sarif;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }
  EXPECT_EQ(sarif, ReadFixture("view_invalidation.sarif"))
      << "SARIF output drifted; rerun with FIREHOSE_UPDATE_GOLDEN=1 if "
         "intentional";
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
