// Runs the analyzer over the deliberately-broken fixture files under
// tests/analysis/fixtures/ — the proof that each semantic pass fires on
// its seeded hazard and stays silent on the clean twin. Fixtures are
// read from disk (FIREHOSE_ANALYSIS_FIXTURE_DIR, injected by CMake) and
// presented with synthetic src/ paths so module- and allowlist-gated
// passes see them as production code. The driver itself skips
// directories named `fixtures`, so these files never taint a real run.
//
// Also freezes the SARIF shape of one semantic finding against a golden
// file; regenerate with FIREHOSE_UPDATE_GOLDEN=1 after an intentional
// format change.

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/sarif.h"

namespace firehose {
namespace analysis {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FIREHOSE_ANALYSIS_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Loads a fixture from disk and presents it to Analyze under a
// synthetic repo path, running only `check`.
AnalysisResult RunFixture(const std::string& fixture,
                          const std::string& presented_path,
                          const std::string& check) {
  AnalysisOptions options;
  options.checks = {check};
  return Analyze({{presented_path, ReadFixture(fixture)}}, options);
}

TEST(FixtureTest, ViewInvalidationFiresOnStaleSpanRead) {
  const AnalysisResult result =
      RunFixture("view_invalidation_bad.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "view-invalidation");
  EXPECT_NE(result.findings[0].message.find("'segments'"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("bin.Push()"), std::string::npos);
}

TEST(FixtureTest, ViewInvalidationSilentAfterReacquire) {
  const AnalysisResult result =
      RunFixture("view_invalidation_clean.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, LockDisciplineFiresOnUnlockedAccessAndCall) {
  const AnalysisResult result = RunFixture(
      "lock_discipline_bad.cc", "src/obs/lock_fixture.cc", "lock-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 2u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.check, "lock-discipline");
    EXPECT_NE(finding.message.find("mu_"), std::string::npos);
  }
}

TEST(FixtureTest, LockDisciplineSilentUnderGuards) {
  const AnalysisResult result = RunFixture(
      "lock_discipline_clean.cc", "src/obs/lock_fixture.cc",
      "lock-discipline");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, AtomicOrderingFiresOnDefaultsAndOffSeamRelaxed) {
  const AnalysisResult result = RunFixture(
      "atomic_ordering_bad.cc", "src/eval/atomic_fixture.cc",
      "atomic-ordering");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 3u);
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.check, "atomic-ordering");
  }
}

TEST(FixtureTest, AtomicOrderingSilentWithExplicitOrders) {
  const AnalysisResult result = RunFixture(
      "atomic_ordering_clean.cc", "src/eval/atomic_fixture.cc",
      "atomic-ordering");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, BlockingFiresOneCallDeepFromOffer) {
  const AnalysisResult result = RunFixture(
      "blocking_bad.cc", "src/core/blocking_fixture.cc",
      "blocking-in-hot-path");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("fprintf"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("Offer -> LogDecision"),
            std::string::npos);
}

TEST(FixtureTest, BlockingSilentWhenIoIsNotReachableFromOffer) {
  const AnalysisResult result = RunFixture(
      "blocking_clean.cc", "src/core/blocking_fixture.cc",
      "blocking-in-hot-path");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(FixtureTest, SemanticFindingSarifMatchesGolden) {
  const AnalysisResult result =
      RunFixture("view_invalidation_bad.cc", "src/core/view_fixture.cc",
                 "view-invalidation");
  ASSERT_TRUE(result.ok) << result.error;
  const std::string sarif = ToSarif(result.findings);

  const std::string golden_path = FixturePath("view_invalidation.sarif");
  if (std::getenv("FIREHOSE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << sarif;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }
  EXPECT_EQ(sarif, ReadFixture("view_invalidation.sarif"))
      << "SARIF output drifted; rerun with FIREHOSE_UPDATE_GOLDEN=1 if "
         "intentional";
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
