#include "src/runtime/latency.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(LatencyRecorderTest, EmptySummary) {
  LatencyRecorder recorder;
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_us, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99_us, 0.0);
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder recorder;
  recorder.RecordNanos(1000);  // 1us
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 1u);
  EXPECT_NEAR(summary.mean_us, 1.0, 1e-9);
  EXPECT_NEAR(summary.max_us, 1.0, 1e-9);
  // Bucketed percentile within the ~8% bucket resolution.
  EXPECT_NEAR(summary.p50_us, 1.0, 0.15);
}

TEST(LatencyRecorderTest, MeanIsExact) {
  LatencyRecorder recorder;
  recorder.RecordNanos(1000);
  recorder.RecordNanos(3000);
  EXPECT_NEAR(recorder.Summarize().mean_us, 2.0, 1e-9);
}

TEST(LatencyRecorderTest, PercentilesOrdered) {
  LatencyRecorder recorder;
  for (uint64_t i = 1; i <= 10000; ++i) recorder.RecordNanos(i * 100);
  const LatencySummary summary = recorder.Summarize();
  EXPECT_LE(summary.p50_us, summary.p95_us);
  EXPECT_LE(summary.p95_us, summary.p99_us);
  EXPECT_LE(summary.p99_us, summary.max_us * 1.1);
}

TEST(LatencyRecorderTest, PercentilesApproximateUniform) {
  LatencyRecorder recorder;
  // Uniform 0-1ms: p50 ≈ 500us, p99 ≈ 990us (within bucket resolution).
  for (uint64_t i = 1; i <= 100000; ++i) {
    recorder.RecordNanos(i * 10);  // 10ns .. 1ms
  }
  const LatencySummary summary = recorder.Summarize();
  EXPECT_NEAR(summary.p50_us, 500.0, 60.0);
  EXPECT_NEAR(summary.p99_us, 990.0, 110.0);
}

TEST(LatencyRecorderTest, ZeroNanosClampsToSmallestBucket) {
  LatencyRecorder recorder;
  recorder.RecordNanos(0);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_GT(recorder.Summarize().p50_us, 0.0);
}

TEST(LatencyRecorderTest, HugeValuesClampToLastBucket) {
  LatencyRecorder recorder;
  recorder.RecordNanos(~0ULL);
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 1u);
  EXPECT_GT(summary.max_us, 1e9);  // > 1000s reported via exact max
}

TEST(LatencyRecorderTest, MergeFromCombinesDistributions) {
  // Satellite of the sharded runtime: per-shard recorders merged in shard
  // order must summarize exactly like one recorder that saw every sample.
  LatencyRecorder shard0, shard1, direct;
  for (uint64_t i = 1; i <= 5000; ++i) {
    shard0.RecordNanos(i * 10);
    direct.RecordNanos(i * 10);
  }
  for (uint64_t i = 5001; i <= 10000; ++i) {
    shard1.RecordNanos(i * 10);
    direct.RecordNanos(i * 10);
  }
  LatencyRecorder merged;
  merged.MergeFrom(shard0);
  merged.MergeFrom(shard1);
  EXPECT_EQ(merged.count(), 10000u);
  const LatencySummary a = merged.Summarize();
  const LatencySummary b = direct.Summarize();
  EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p95_us, b.p95_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(a.max_us, b.max_us);
  EXPECT_EQ(merged.histogram().buckets(), direct.histogram().buckets());
}

TEST(LatencyRecorderTest, MergeFromEmptyIsIdentity) {
  LatencyRecorder recorder, empty;
  recorder.RecordNanos(500);
  recorder.MergeFrom(empty);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_NEAR(recorder.Summarize().max_us, 0.5, 1e-9);
}

TEST(LatencyRecorderTest, BucketResolutionWithinTenPercent) {
  // For any value, the reported percentile (bucket upper edge) should be
  // within ~+10% of the true sample.
  for (uint64_t nanos : {50ULL, 1234ULL, 987654ULL, 55555555ULL}) {
    LatencyRecorder recorder;
    recorder.RecordNanos(nanos);
    const double p50_nanos = recorder.Summarize().p50_us * 1000.0;
    EXPECT_GE(p50_nanos, static_cast<double>(nanos) * 0.99);
    EXPECT_LE(p50_nanos, static_cast<double>(nanos) * 1.12);
  }
}

}  // namespace
}  // namespace firehose
