#include "src/runtime/pipeline.h"

#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExamplePosts;
using testing_util::PaperExampleThresholds;

TEST(VectorSourceTest, YieldsAllPostsThenStops) {
  const PostStream stream = PaperExamplePosts();
  VectorSource source(&stream);
  Post post;
  size_t count = 0;
  while (source.Next(&post)) {
    EXPECT_EQ(post.id, count);
    ++count;
  }
  EXPECT_EQ(count, stream.size());
  EXPECT_FALSE(source.Next(&post));  // stays exhausted
}

TEST(PipelineTest, DeliversExactlyTheDiversifiedSubStream) {
  const AuthorGraph graph = PaperExampleGraph();
  const PostStream stream = PaperExamplePosts();
  auto diversifier =
      MakeDiversifier(Algorithm::kUniBin, PaperExampleThresholds(), &graph);
  PostStream delivered;
  CollectSink sink(&delivered);
  Pipeline pipeline(diversifier.get(), &sink);
  VectorSource source(&stream);
  const PipelineReport report = pipeline.Run(source);

  EXPECT_EQ(report.posts_in, 5u);
  EXPECT_EQ(report.posts_out, 3u);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].id, 0u);  // P1
  EXPECT_EQ(delivered[1].id, 1u);  // P2
  EXPECT_EQ(delivered[2].id, 3u);  // P4
  EXPECT_EQ(report.decision_latency.count, 5u);
  EXPECT_GT(report.decision_latency.mean_us, 0.0);
}

TEST(PipelineTest, CountingSinkCounts) {
  const AuthorGraph graph = PaperExampleGraph();
  const PostStream stream = PaperExamplePosts();
  auto diversifier =
      MakeDiversifier(Algorithm::kCliqueBin, PaperExampleThresholds(), &graph);
  CountingSink sink;
  Pipeline pipeline(diversifier.get(), &sink);
  VectorSource source(&stream);
  pipeline.Run(source);
  EXPECT_EQ(sink.count(), 3u);
}

TEST(PipelineTest, EmptyStream) {
  const AuthorGraph graph = PaperExampleGraph();
  const PostStream empty;
  auto diversifier =
      MakeDiversifier(Algorithm::kUniBin, PaperExampleThresholds(), &graph);
  CountingSink sink;
  Pipeline pipeline(diversifier.get(), &sink);
  VectorSource source(&empty);
  const PipelineReport report = pipeline.Run(source);
  EXPECT_EQ(report.posts_in, 0u);
  EXPECT_EQ(report.posts_out, 0u);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(MultiUserPipelineTest, RoutesDeliveriesPerUser) {
  const AuthorGraph graph = PaperExampleGraph();
  // Two users: u0 follows {0,1}, u1 follows {2,3}.
  const std::vector<User> users = {User{0, {0, 1}}, User{1, {2, 3}}};
  auto engine = MakeSUserEngine(Algorithm::kUniBin, PaperExampleThresholds(),
                                graph, users);
  std::map<UserId, std::vector<PostId>> timelines;
  MultiUserPipeline pipeline(engine.get(),
                             [&](const Post& post, UserId user) {
                               timelines[user].push_back(post.id);
                             });
  const PostStream stream = PaperExamplePosts();
  VectorSource source(&stream);
  const PipelineReport report = pipeline.Run(source);

  EXPECT_EQ(report.posts_in, 5u);
  // u0 sees P1 (author 0) and P2 (author 1): no coverage within {0,1}
  // because their contents are far (0x0 vs 0xFF = 8 bits > 3).
  EXPECT_EQ(timelines[0], (std::vector<PostId>{0, 1}));
  // u1 sees P3 (author 2, uncovered within {2,3}) and P4 (author 3);
  // P5 (author 2) is covered by P4 via the 2-3 edge.
  EXPECT_EQ(timelines[1], (std::vector<PostId>{2, 3}));
}

TEST(MultiUserPipelineTest, NullDeliveryCallbackIsSafe) {
  const AuthorGraph graph = PaperExampleGraph();
  const std::vector<User> users = {User{0, {0, 1, 2, 3}}};
  auto engine = MakeMUserEngine(Algorithm::kUniBin, PaperExampleThresholds(),
                                graph, users);
  MultiUserPipeline pipeline(engine.get(), nullptr);
  const PostStream stream = PaperExamplePosts();
  VectorSource source(&stream);
  const PipelineReport report = pipeline.Run(source);
  EXPECT_EQ(report.posts_out, 3u);
}

}  // namespace
}  // namespace firehose
