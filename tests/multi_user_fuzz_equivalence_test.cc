// Fuzz-style randomized equivalence for the multi-user engines: random
// user populations (overlapping subscriptions, shared connected
// components, per-user custom thresholds) over random author graphs and
// clustered streams. The per-user M_* engines and the shared-component
// S_* engines must deliver identical timelines for all three algorithms,
// and the sharded S_* runtime must reproduce the sequential deliveries
// for every shard count.

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/multi_user.h"
#include "src/runtime/sharded.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::RandomAuthorGraph;
using testing_util::RandomStream;

using Timelines = std::map<UserId, std::vector<PostId>>;

Timelines CollectTimelines(MultiUserEngine& engine, const PostStream& stream,
                           const std::vector<User>& users) {
  Timelines timelines;
  for (const User& user : users) timelines[user.id];  // empty timelines too
  std::vector<UserId> delivered;
  for (const Post& post : stream) {
    engine.Offer(post, &delivered);
    for (UserId user : delivered) timelines[user].push_back(post.id);
  }
  return timelines;
}

/// Random user population over `num_authors` authors: subscription lists
/// drawn from a few overlapping "interest hubs" so distinct users often
/// share entire connected components (the case S_* engines exist for),
/// plus a sprinkle of per-user custom thresholds (the case that blocks
/// sharing).
std::vector<User> RandomUsers(int num_users, int num_authors, Rng& rng,
                              const DiversityThresholds& base) {
  // A handful of hub author sets users copy from.
  std::vector<std::vector<AuthorId>> hubs(3);
  for (auto& hub : hubs) {
    const int hub_size = 2 + static_cast<int>(rng.UniformInt(5));
    for (int i = 0; i < hub_size; ++i) {
      hub.push_back(
          static_cast<AuthorId>(rng.UniformInt(static_cast<uint64_t>(num_authors))));
    }
    std::sort(hub.begin(), hub.end());
    hub.erase(std::unique(hub.begin(), hub.end()), hub.end());
  }
  std::vector<User> users;
  for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
    std::vector<AuthorId> subs = hubs[rng.UniformInt(hubs.size())];
    // Occasionally extend the hub with private subscriptions.
    const int extra = static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < extra; ++i) {
      subs.push_back(
          static_cast<AuthorId>(rng.UniformInt(static_cast<uint64_t>(num_authors))));
    }
    std::sort(subs.begin(), subs.end());
    subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
    std::optional<DiversityThresholds> custom;
    if (rng.Bernoulli(0.2)) {
      DiversityThresholds t = base;
      t.lambda_c = static_cast<int>(rng.UniformInt(12));
      t.lambda_t_ms = 100 + static_cast<int64_t>(rng.UniformInt(900));
      custom = t;
    }
    users.push_back(User{u, std::move(subs), custom});
  }
  return users;
}

class MultiUserFuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MultiUserFuzzEquivalenceTest, MAndSEnginesAgreeOnRandomPopulations) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const int num_authors = 8 + static_cast<int>(rng.UniformInt(24));
    const AuthorGraph graph = RandomAuthorGraph(num_authors, 0.25, rng);
    DiversityThresholds t;
    t.lambda_c = 2 + static_cast<int>(rng.UniformInt(10));
    t.lambda_t_ms = 200 + static_cast<int64_t>(rng.UniformInt(800));
    const std::vector<User> users =
        RandomUsers(2 + static_cast<int>(rng.UniformInt(8)), num_authors, rng, t);
    const PostStream stream = RandomStream(
        150 + static_cast<int>(rng.UniformInt(150)), num_authors, 25, rng);

    for (Algorithm algorithm : kAllAlgorithms) {
      auto m_engine = MakeMUserEngine(algorithm, t, graph, users);
      auto s_engine = MakeSUserEngine(algorithm, t, graph, users);
      const Timelines m_timelines = CollectTimelines(*m_engine, stream, users);
      const Timelines s_timelines = CollectTimelines(*s_engine, stream, users);
      ASSERT_EQ(m_timelines, s_timelines)
          << AlgorithmName(algorithm) << " seed=" << GetParam()
          << " round=" << round;
      // Sharing never *increases* work: the S engine runs each distinct
      // (component, thresholds) pair once, where the M engine repeats it
      // per subscribed user (and mixes a user's components in one bin).
      EXPECT_LE(s_engine->AggregateStats().comparisons,
                m_engine->AggregateStats().comparisons)
          << AlgorithmName(algorithm);
    }
  }
}

TEST_P(MultiUserFuzzEquivalenceTest, ShardedRuntimeMatchesSequentialS) {
  Rng rng(GetParam() * 7919 + 1);
  const int num_authors = 20;
  const AuthorGraph graph = RandomAuthorGraph(num_authors, 0.2, rng);
  DiversityThresholds t;
  t.lambda_c = 6;
  t.lambda_t_ms = 400;
  const std::vector<User> users = RandomUsers(8, num_authors, rng, t);
  const PostStream stream = RandomStream(250, num_authors, 25, rng);

  for (Algorithm algorithm : kAllAlgorithms) {
    // Sequential S engine deliveries as (post, user) pairs.
    auto s_engine = MakeSUserEngine(algorithm, t, graph, users);
    std::vector<std::pair<PostId, UserId>> sequential;
    std::vector<UserId> delivered;
    for (const Post& post : stream) {
      s_engine->Offer(post, &delivered);
      for (UserId user : delivered) sequential.emplace_back(post.id, user);
    }

    for (int num_shards : {1, 2, 3}) {
      std::vector<std::pair<PostId, UserId>> sharded;
      const ShardedRunResult result = RunShardedSUser(
          algorithm, t, graph, users, stream, num_shards, &sharded);
      ASSERT_EQ(sharded, sequential)
          << AlgorithmName(algorithm) << " shards=" << num_shards;
      EXPECT_EQ(result.deliveries, sequential.size());
      EXPECT_EQ(result.stats.comparisons, s_engine->AggregateStats().comparisons)
          << AlgorithmName(algorithm) << " shards=" << num_shards;
      EXPECT_EQ(result.stats.pruned, s_engine->AggregateStats().pruned);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiUserFuzzEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace firehose
