#include "src/obs/log_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace firehose {
namespace obs {
namespace {

TEST(LogHistogramQuantileTest, EmptyHistogramIsZeroEverywhere) {
  LogHistogram histogram;
  EXPECT_EQ(histogram.ValueAtQuantile(0.0), 0.0);
  EXPECT_EQ(histogram.ValueAtQuantile(0.5), 0.0);
  EXPECT_EQ(histogram.ValueAtQuantile(1.0), 0.0);
}

TEST(LogHistogramQuantileTest, SingleValueCollapsesEveryQuantile) {
  LogHistogram histogram;
  histogram.Record(1000);
  // One observation: every quantile is that observation (the clamp to
  // [min, max] collapses the bucket interpolation).
  for (double q : {0.0, 0.01, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(histogram.ValueAtQuantile(q), 1000.0) << q;
  }
}

TEST(LogHistogramQuantileTest, InterpolatesInsideABucket) {
  LogHistogram histogram;
  // 1024 is an exact bucket lower edge (2^10); fill that one bucket.
  for (int i = 0; i < 100; ++i) histogram.Record(1024);
  const int bucket = LogHistogram::BucketFor(1024);
  const double lower = LogHistogram::BucketLowerValue(bucket);
  const double upper = LogHistogram::BucketUpperValue(bucket);
  const double p50 = histogram.ValueAtQuantile(0.5);
  // Within the bucket's edges before clamping; the exact-extreme clamp
  // then pins it to the single recorded value's range.
  EXPECT_GE(p50, lower - 1e-9);
  EXPECT_LE(p50, upper + 1e-9);
  EXPECT_EQ(p50, 1024.0);  // min == max == 1024 forces exactness
}

TEST(LogHistogramQuantileTest, QuantilesAreClampedToObservedRange) {
  LogHistogram histogram;
  histogram.Record(100);
  histogram.Record(200);
  histogram.Record(400);
  EXPECT_GE(histogram.ValueAtQuantile(0.0), 100.0);
  EXPECT_LE(histogram.ValueAtQuantile(1.0), 400.0);
}

TEST(LogHistogramQuantileTest, ZeroRecordsClampIntoDomain) {
  LogHistogram histogram;
  histogram.Record(0);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.min(), 1u);
  // The quantile stays in the histogram's [1, 2^(1/9)) first bucket
  // instead of being dragged to 0 by the raw recorded value.
  EXPECT_GT(histogram.ValueAtQuantile(0.5), 0.0);
}

// The property the interpolation must never violate: for any data set
// and any q1 <= q2, ValueAtQuantile(q1) <= ValueAtQuantile(q2) — even
// across bucket boundaries, where naive interpolation schemes step
// backwards.
TEST(LogHistogramQuantilePropertyTest, MonotoneOverRandomizedInserts) {
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    LogHistogram histogram;
    const int inserts = 1 + static_cast<int>(rng.Next() % 2000);
    for (int i = 0; i < inserts; ++i) {
      // Mix of magnitudes: uniform in a random octave span, so some
      // trials are tight clusters and others span many buckets.
      const int shift = static_cast<int>(rng.Next() % 30);
      histogram.Record(rng.Next() % (1ull << (shift + 4)));
    }
    double previous = -1.0;
    for (int step = 0; step <= 1000; ++step) {
      const double q = static_cast<double>(step) / 1000.0;
      const double value = histogram.ValueAtQuantile(q);
      ASSERT_GE(value, previous)
          << "quantile regression at q=" << q << " on trial " << trial;
      previous = value;
    }
    // End points respect the exact tracked extremes.
    EXPECT_GE(histogram.ValueAtQuantile(0.0),
              static_cast<double>(histogram.min()));
    EXPECT_LE(histogram.ValueAtQuantile(1.0),
              static_cast<double>(histogram.max()));
  }
}

TEST(LogHistogramQuantilePropertyTest, MergePreservesMonotonicity) {
  Rng rng(777);
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 500; ++i) {
    a.Record(rng.Next() % 100000);
    b.Record(1 + rng.Next() % 100);
  }
  LogHistogram merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.min(), std::min(a.min(), b.min()));
  EXPECT_EQ(merged.max(), std::max(a.max(), b.max()));
  double previous = -1.0;
  for (int step = 0; step <= 200; ++step) {
    const double value =
        merged.ValueAtQuantile(static_cast<double>(step) / 200.0);
    ASSERT_GE(value, previous);
    previous = value;
  }
}

}  // namespace
}  // namespace obs
}  // namespace firehose
