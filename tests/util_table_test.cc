#include "src/util/table.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(TableTest, HeaderAndRows) {
  Table t({"algo", "time"});
  t.AddRow({"UniBin", "12"});
  t.AddRow({"CliqueBin", "7"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("algo"), std::string::npos);
  EXPECT_NE(s.find("UniBin"), std::string::npos);
  EXPECT_NE(s.find("CliqueBin"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t({"a", "b"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string s = t.ToString();
  // Column b starts at the same offset on both data rows.
  size_t pos1 = s.find("1");
  size_t pos2 = s.find("2");
  size_t line1_start = s.rfind('\n', pos1);
  size_t line2_start = s.rfind('\n', pos2);
  EXPECT_EQ(pos1 - line1_start, pos2 - line2_start);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-a"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-a"), std::string::npos);
}

TEST(TableTest, ExtraCellsWidenTable) {
  Table t({"a"});
  t.AddRow({"1", "2", "3"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(3.14159, 0), "3");
  EXPECT_EQ(Table::Fmt(0.5, 3), "0.500");
}

TEST(TableTest, FmtIntegersWithThousandsSeparators) {
  EXPECT_EQ(Table::Fmt(0), "0");
  EXPECT_EQ(Table::Fmt(999), "999");
  EXPECT_EQ(Table::Fmt(1000), "1,000");
  EXPECT_EQ(Table::Fmt(uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(Table::Fmt(int64_t{-1234567}), "-1,234,567");
}

TEST(TableTest, SeparatorUnderHeader) {
  Table t({"col"});
  t.AddRow({"x"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("---"), std::string::npos);
}

}  // namespace
}  // namespace firehose
