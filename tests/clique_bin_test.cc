#include "src/core/clique_bin.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExamplePosts;
using testing_util::PaperExampleThresholds;

Post MakePost(PostId id, AuthorId author, int64_t time_ms, uint64_t simhash) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.simhash = simhash;
  return post;
}

TEST(CliqueBinTest, PaperFigure6cTrace) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  std::vector<bool> admitted;
  for (const Post& post : PaperExamplePosts()) {
    admitted.push_back(diversifier.Offer(post));
  }
  EXPECT_EQ(admitted, (std::vector<bool>{true, true, false, true, false}));
  // §4.3 walk-through with C0={a1,a2,a3}, C1={a3,a4}:
  //   P1: 0 comps, 1 insertion (C0).      P2: 1 comp, 1 insertion (C0).
  //   P3: 2 comps (C0: P2 then P1 covers).
  //   P4: 0 comps (C1 empty), 1 insertion (C1).
  //   P5: C0 holds P2,P1 (2 comps, no cover), C1 holds P4 (1 comp, cover).
  EXPECT_EQ(diversifier.stats().comparisons, 6u);
  EXPECT_EQ(diversifier.stats().insertions, 3u);
  EXPECT_EQ(diversifier.stats().posts_out, 3u);
}

TEST(CliqueBinTest, SingleCopyPerCliqueNotPerNeighbor) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  // Author 0 is in exactly one clique: one insertion, not deg+1 = 3.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 0x1)));
  EXPECT_EQ(diversifier.stats().insertions, 1u);
}

TEST(CliqueBinTest, BridgeAuthorInsertsIntoAllItsCliques) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  // Author 2 belongs to both cliques.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  EXPECT_EQ(diversifier.stats().insertions, 2u);
}

TEST(CliqueBinTest, DoubleComparisonAcrossSharedCliquesIsCounted) {
  // The paper's P6/P7 remark: a post stored in two cliques can be compared
  // twice against one new post.
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  // Post by bridge author 2 lands in C0 and C1.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0xFFFF0000ULL)));
  // New post by author 2 with far content scans both bins: the old post is
  // compared once per clique bin = 2 comparisons.
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 2, 1, 0x0000FFFFULL)));
  EXPECT_EQ(diversifier.stats().comparisons, 2u);
}

TEST(CliqueBinTest, CoverageViaSharedClique) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 3, 0, 0x1)));
  // Author 2 shares clique C1 with author 3.
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 2, 1, 0x1)));
}

TEST(CliqueBinTest, NonNeighborsNeverShareACliqueBin) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 0x1)));
  // Author 3 is not a neighbor of author 0: identical content is admitted.
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 3, 1, 0x1)));
}

TEST(CliqueBinTest, IsolatedAuthorSelfCoverageViaSingleton) {
  const AuthorGraph graph = AuthorGraph::FromEdges({0, 1, 7}, {{0, 1}});
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 7, 0, 0x1)));
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 7, 1, 0x1)));
}

TEST(CliqueBinTest, TimeWindowEvicts) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  DiversityThresholds t = PaperExampleThresholds();
  t.lambda_t_ms = 10;
  CliqueBinDiversifier diversifier(t, &cover);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 2, 100, 0x1)));
}

TEST(CliqueBinTest, MatchesReferenceOnPaperExample) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  const auto expected = testing_util::ReferenceDiversify(
      PaperExamplePosts(), PaperExampleThresholds(), graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  std::vector<PostId> admitted;
  for (const Post& post : PaperExamplePosts()) {
    if (diversifier.Offer(post)) admitted.push_back(post.id);
  }
  EXPECT_EQ(admitted, expected);
}

TEST(CliqueBinTest, MemoryTracked) {
  const AuthorGraph graph = PaperExampleGraph();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  CliqueBinDiversifier diversifier(PaperExampleThresholds(), &cover);
  for (int i = 0; i < 20; ++i) {
    diversifier.Offer(MakePost(static_cast<PostId>(i), 2, i,
                               static_cast<uint64_t>(i) << 40));
  }
  EXPECT_GT(diversifier.ApproxBytes(), 0u);
  EXPECT_GE(diversifier.stats().peak_bytes, diversifier.ApproxBytes());
}

}  // namespace
}  // namespace firehose
