#include "src/simhash/permuted_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/bitops.h"
#include "src/util/random.h"

namespace firehose {
namespace {

TEST(TableCountTest, MankuConfiguration) {
  // The WWW'07 paper's regime: k = 3 over 6 blocks -> C(6,3) = 20 tables.
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(6, 3), 20);
}

TEST(TableCountTest, FirehoseRegimeExplodes) {
  // λc = 18 needs num_blocks > 18; the table count is large while the
  // exact-match prefix shrinks to ~6 bits — the paper's §3 argument.
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(20, 18), 190);
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(24, 18),
            134596);  // C(24,18)
}

TEST(TableCountTest, InvalidConfigurations) {
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(6, 0), -1);
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(6, 6), -1);
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(6, 7), -1);
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(65, 3), -1);
}

TEST(TableCountTest, OverflowGuard) {
  EXPECT_EQ(PermutedSimHashIndex::TableCountFor(64, 32), -1);
}

TEST(PermutedIndexTest, ValidityAndTableCount) {
  PermutedSimHashIndex index(6, 3);
  EXPECT_TRUE(index.valid());
  EXPECT_EQ(index.NumTables(), 20);
  EXPECT_GE(index.PrefixBits(), 30);  // 3 blocks of ~10-11 bits
}

TEST(PermutedIndexTest, InfeasibleConfigIsInvalid) {
  PermutedSimHashIndex index(6, 0);
  EXPECT_FALSE(index.valid());
  EXPECT_EQ(index.NumTables(), 0);
}

TEST(PermutedIndexTest, MaxTablesCapRejectsHugeConfigs) {
  PermutedSimHashIndex index(24, 12, /*max_tables=*/1000);
  EXPECT_FALSE(index.valid());
}

TEST(PermutedIndexTest, FindsExactMatch) {
  PermutedSimHashIndex index(6, 3);
  index.Insert(0xDEADBEEFCAFEF00DULL, 1);
  index.Build();
  const auto hits = index.Query(0xDEADBEEFCAFEF00DULL);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(PermutedIndexTest, FindsNearbyKeysWithinDistance) {
  PermutedSimHashIndex index(6, 3);
  const uint64_t base = 0x0123456789ABCDEFULL;
  index.Insert(base, 7);
  index.Build();
  // Flip up to 3 bits: must be found.
  EXPECT_EQ(index.Query(base ^ 0x1ULL).size(), 1u);
  EXPECT_EQ(index.Query(base ^ 0x3ULL).size(), 1u);
  EXPECT_EQ(index.Query(base ^ 0x8001ULL).size(), 1u);
  EXPECT_EQ(index.Query(base ^ (1ULL << 63) ^ (1ULL << 0) ^ (1ULL << 30))
                .size(),
            1u);
}

TEST(PermutedIndexTest, RejectsKeysBeyondDistance) {
  PermutedSimHashIndex index(6, 3);
  const uint64_t base = 0x0123456789ABCDEFULL;
  index.Insert(base, 7);
  index.Build();
  // 4 flipped bits is past the threshold.
  EXPECT_TRUE(index.Query(base ^ 0xFULL).empty());
}

TEST(PermutedIndexTest, QueryBeforeBuildReturnsNothing) {
  PermutedSimHashIndex index(6, 3);
  index.Insert(42, 1);
  EXPECT_TRUE(index.Query(42).empty());
}

TEST(PermutedIndexTest, DeduplicatesIdsAcrossTables) {
  PermutedSimHashIndex index(6, 2);
  index.Insert(100, 5);
  index.Build();
  // The exact key matches in every table; the id must appear once.
  const auto hits = index.Query(100);
  EXPECT_EQ(hits.size(), 1u);
}

class PermutedIndexPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PermutedIndexPropertyTest, AgreesWithLinearScan) {
  const auto [num_blocks, max_distance, seed] = GetParam();
  Rng rng(seed);
  PermutedSimHashIndex index(num_blocks, max_distance);
  ASSERT_TRUE(index.valid());

  std::vector<uint64_t> keys;
  for (uint64_t id = 0; id < 300; ++id) {
    // Mix of random keys and clustered keys near a few centers so queries
    // actually have near neighbors.
    uint64_t key = rng.Next();
    if (id % 3 != 0) {
      key = keys.empty() ? key : keys[rng.UniformInt(keys.size())];
      const int flips = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(max_distance) + 2));
      for (int f = 0; f < flips; ++f) key ^= 1ULL << rng.UniformInt(64);
    }
    keys.push_back(key);
    index.Insert(key, id);
  }
  index.Build();

  for (int q = 0; q < 50; ++q) {
    uint64_t query = keys[rng.UniformInt(keys.size())];
    const int flips = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(max_distance) + 2));
    for (int f = 0; f < flips; ++f) query ^= 1ULL << rng.UniformInt(64);

    std::vector<uint64_t> expected;
    for (uint64_t id = 0; id < keys.size(); ++id) {
      if (HammingDistance64(keys[id], query) <= max_distance) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(index.Query(query), expected);
  }
  EXPECT_GT(index.total_queries(), 0u);
  EXPECT_GT(index.ApproxBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PermutedIndexPropertyTest,
    ::testing::Values(std::make_tuple(6, 3, 1ULL), std::make_tuple(6, 3, 2ULL),
                      std::make_tuple(4, 2, 3ULL), std::make_tuple(8, 3, 4ULL),
                      std::make_tuple(5, 2, 5ULL),
                      std::make_tuple(10, 4, 6ULL)));

}  // namespace
}  // namespace firehose
