// Unit tests for the sema layer's declaration extraction and scope
// tracker: the heuristics must recover real declaration shapes from raw
// token streams and must refuse to invent declarations out of
// expressions, and lookup must honor shadowing.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/lexer.h"
#include "src/analysis/sema/scope.h"
#include "src/analysis/sema/token_util.h"

namespace firehose {
namespace analysis {
namespace sema {
namespace {

std::vector<Decl> DeclsOf(const std::string& text) {
  const std::vector<Token> tokens = Lex(text);
  const TokenView code = CodeTokens(tokens);
  return ExtractDecls(code, 0, code.size());
}

// --- ExtractDecls ------------------------------------------------------------

TEST(ExtractDeclsTest, SimpleBuiltin) {
  const std::vector<Decl> decls = DeclsOf("int x = 1;");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "x");
  EXPECT_EQ(decls[0].type, "int");
  EXPECT_EQ(decls[0].type_base, "int");
  EXPECT_FALSE(decls[0].is_array);
  EXPECT_EQ(decls[0].name_index, 1u);
}

TEST(ExtractDeclsTest, MultiWordBuiltinType) {
  const std::vector<Decl> decls = DeclsOf("unsigned long count = 0;");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "count");
  EXPECT_EQ(decls[0].type, "unsigned long");
}

TEST(ExtractDeclsTest, QualifiedTemplatedTypeWithCtorInit) {
  const std::vector<Decl> decls =
      DeclsOf("const std::lock_guard<std::mutex> lock(mu_);");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "lock");
  EXPECT_EQ(decls[0].type, "std::lock_guard<>");
  EXPECT_EQ(decls[0].type_base, "lock_guard");
}

TEST(ExtractDeclsTest, NestedTypeArray) {
  const std::vector<Decl> decls = DeclsOf("PostBin::LaneSpan spans[4];");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "spans");
  EXPECT_EQ(decls[0].type, "PostBin::LaneSpan");
  EXPECT_EQ(decls[0].type_base, "LaneSpan");
  EXPECT_TRUE(decls[0].is_array);
}

TEST(ExtractDeclsTest, PointerAndReferenceDeclarators) {
  const std::vector<Decl> pointer = DeclsOf("const Post* post = nullptr;");
  ASSERT_EQ(pointer.size(), 1u);
  EXPECT_EQ(pointer[0].name, "post");
  EXPECT_EQ(pointer[0].type_base, "Post");

  const std::vector<Decl> reference = DeclsOf("Post& ref = other;");
  ASSERT_EQ(reference.size(), 1u);
  EXPECT_EQ(reference[0].name, "ref");
}

TEST(ExtractDeclsTest, CommaSeparatedDeclaratorList) {
  const std::vector<Decl> decls = DeclsOf("size_t i = 0, limit = n + 1, j;");
  ASSERT_EQ(decls.size(), 3u);
  EXPECT_EQ(decls[0].name, "i");
  EXPECT_EQ(decls[1].name, "limit");
  EXPECT_EQ(decls[2].name, "j");
}

TEST(ExtractDeclsTest, BracedInitializer) {
  const std::vector<Decl> decls = DeclsOf("std::atomic<int> hits{0};");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "hits");
  EXPECT_EQ(decls[0].type_base, "atomic");
}

TEST(ExtractDeclsTest, RejectsNonDeclarations) {
  EXPECT_TRUE(DeclsOf("bin.Push(post);").empty());
  EXPECT_TRUE(DeclsOf("return x;").empty());
  EXPECT_TRUE(DeclsOf("x = y;").empty());
  EXPECT_TRUE(DeclsOf("total += value;").empty());
  EXPECT_TRUE(DeclsOf("if (x) {").empty());
  // A stray less-than is a comparison, not a template list.
  EXPECT_TRUE(DeclsOf("a < b;").empty());
}

TEST(ExtractDeclsTest, InitializerCommasDoNotSplitDeclarators) {
  // The comma inside Min(a, b) is part of the initializer, not a second
  // declarator.
  const std::vector<Decl> decls = DeclsOf("int lo = Min(a, b);");
  ASSERT_EQ(decls.size(), 1u);
  EXPECT_EQ(decls[0].name, "lo");
}

// --- ScopeTracker ------------------------------------------------------------

Decl MakeDecl(const std::string& name, const std::string& type) {
  Decl decl;
  decl.name = name;
  decl.type = type;
  decl.type_base = type;
  return decl;
}

TEST(ScopeTrackerTest, StartsWithOpenFunctionScope) {
  ScopeTracker tracker;
  EXPECT_EQ(tracker.depth(), 1u);
  tracker.Declare(MakeDecl("x", "int"));
  ASSERT_NE(tracker.Lookup("x"), nullptr);
}

TEST(ScopeTrackerTest, InnermostDeclarationShadows) {
  ScopeTracker tracker;
  tracker.Declare(MakeDecl("x", "int"));
  tracker.EnterScope();
  tracker.Declare(MakeDecl("x", "Post"));
  ASSERT_NE(tracker.Lookup("x"), nullptr);
  EXPECT_EQ(tracker.Lookup("x")->type, "Post");
  tracker.ExitScope();
  ASSERT_NE(tracker.Lookup("x"), nullptr);
  EXPECT_EQ(tracker.Lookup("x")->type, "int");
}

TEST(ScopeTrackerTest, OuterDeclarationsVisibleInNestedBlocks) {
  ScopeTracker tracker;
  tracker.Declare(MakeDecl("outer", "int"));
  tracker.EnterScope();
  tracker.EnterScope();
  EXPECT_EQ(tracker.depth(), 3u);
  ASSERT_NE(tracker.Lookup("outer"), nullptr);
  EXPECT_EQ(tracker.Lookup("missing"), nullptr);
}

TEST(ScopeTrackerTest, BlockLocalsDieAtExit) {
  ScopeTracker tracker;
  tracker.EnterScope();
  tracker.Declare(MakeDecl("tmp", "int"));
  ASSERT_NE(tracker.Lookup("tmp"), nullptr);
  tracker.ExitScope();
  EXPECT_EQ(tracker.Lookup("tmp"), nullptr);
}

TEST(ScopeTrackerTest, FunctionScopeNeverPops) {
  ScopeTracker tracker;
  tracker.Declare(MakeDecl("x", "int"));
  tracker.ExitScope();  // ignored: the outermost scope stays open
  tracker.ExitScope();
  EXPECT_EQ(tracker.depth(), 1u);
  EXPECT_NE(tracker.Lookup("x"), nullptr);
}

}  // namespace
}  // namespace sema
}  // namespace analysis
}  // namespace firehose
