// Tests for the content-hash result cache: HashBytes chaining, the text
// format roundtrip (with escaping), malformed-input rejection, and the
// Analyze-level partial replay — a file whose content and include
// closure are unchanged keeps its file-scoped findings without being
// re-analyzed, while a header edit invalidates every includer.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/cache.h"

namespace firehose {
namespace analysis {
namespace {

// --- HashBytes ---------------------------------------------------------------

TEST(CacheHashTest, IsDeterministicAndContentSensitive) {
  EXPECT_EQ(HashBytes("offer"), HashBytes("offer"));
  EXPECT_NE(HashBytes("offer"), HashBytes("Offer"));
  EXPECT_NE(HashBytes(""), 0u);  // FNV offset basis, not zero
}

TEST(CacheHashTest, ChainsThroughSeed) {
  const uint64_t ab = HashBytes("b", HashBytes("a"));
  EXPECT_EQ(ab, HashBytes("ab"));
  EXPECT_NE(ab, HashBytes("ba"));
}

TEST(CacheHashTest, RuleTableHashIsStableWithinProcess) {
  EXPECT_EQ(RuleTableHash(), RuleTableHash());
  EXPECT_NE(RuleTableHash(), 0u);
}

TEST(CacheHashTest, FileScopedSplitMatchesRegistry) {
  // File-scoped: findings depend only on the file + include closure.
  EXPECT_TRUE(IsFileScopedCheck("raw-new-delete"));
  EXPECT_TRUE(IsFileScopedCheck("view-invalidation"));
  // Interprocedural passes must rerun every time.
  EXPECT_FALSE(IsFileScopedCheck("thread-confinement"));
  EXPECT_FALSE(IsFileScopedCheck("untrusted-input"));
  EXPECT_FALSE(IsFileScopedCheck("ordering-discipline"));
  EXPECT_FALSE(IsFileScopedCheck("lock-discipline"));
  EXPECT_FALSE(IsFileScopedCheck("no-such-check"));
}

// --- Format roundtrip --------------------------------------------------------

AnalysisCache SampleCache() {
  AnalysisCache cache;
  cache.config_hash = 1234567890123456789ull;
  cache.file_count = 2;
  CacheEntry& a = cache.files["src/core/a.cc"];
  a.content_hash = 11;
  a.closure_hash = 22;
  a.findings.push_back(
      {"src/core/a.cc", 7, "raw-new-delete", "raw `new` in 'Make'", ""});
  a.findings.push_back({"src/core/a.cc", 9, "unchecked-error",
                        "message with\ttab and\nnewline and \\ backslash",
                        "tok@role"});
  cache.files["src/core/b.cc"] = {33, 44, {}};
  cache.all_findings = a.findings;
  return cache;
}

TEST(CacheFormatTest, RoundTripsThroughText) {
  const AnalysisCache original = SampleCache();
  AnalysisCache parsed;
  ASSERT_TRUE(ParseCache(FormatCache(original), &parsed));

  EXPECT_EQ(parsed.config_hash, original.config_hash);
  EXPECT_EQ(parsed.file_count, original.file_count);
  ASSERT_EQ(parsed.files.size(), 2u);
  const CacheEntry& a = parsed.files.at("src/core/a.cc");
  EXPECT_EQ(a.content_hash, 11u);
  EXPECT_EQ(a.closure_hash, 22u);
  ASSERT_EQ(a.findings.size(), 2u);
  EXPECT_EQ(a.findings[1].message,
            "message with\ttab and\nnewline and \\ backslash");
  EXPECT_EQ(a.findings[1].token, "tok@role");
  EXPECT_TRUE(parsed.files.at("src/core/b.cc").findings.empty());
  ASSERT_EQ(parsed.all_findings.size(), 2u);
  EXPECT_EQ(parsed.all_findings[0].check, "raw-new-delete");
  EXPECT_EQ(parsed.all_findings[0].line, 7);
}

TEST(CacheFormatTest, RejectsMalformedInputAndLeavesCacheEmpty) {
  AnalysisCache cache;
  // Wrong magic.
  EXPECT_FALSE(ParseCache("not-a-cache\nconfig\t1\n", &cache));
  EXPECT_TRUE(cache.files.empty());
  // Magic only — no config line.
  EXPECT_FALSE(ParseCache("firehose-analyze-cache v1\n", &cache));
  // A finding before any file line.
  EXPECT_FALSE(ParseCache(
      "firehose-analyze-cache v1\nconfig\t1\n"
      "finding\tsrc/a.cc\t3\tcheck\tmsg\ttok\n",
      &cache));
  // Truncated finding (four fields instead of five).
  EXPECT_FALSE(ParseCache(
      "firehose-analyze-cache v1\nconfig\t1\nfile\tsrc/a.cc\t1\t2\n"
      "finding\tsrc/a.cc\t3\tcheck\tmsg\n",
      &cache));
  EXPECT_TRUE(cache.files.empty());
  // Non-numeric hash.
  EXPECT_FALSE(ParseCache(
      "firehose-analyze-cache v1\nconfig\t1\nfile\tsrc/a.cc\tx\t2\n", &cache));
  // Unknown tag.
  EXPECT_FALSE(ParseCache(
      "firehose-analyze-cache v1\nconfig\t1\nbogus\tline\n", &cache));
}

TEST(CacheFormatTest, AcceptsPathsWithEscapedCharacters) {
  AnalysisCache original;
  original.config_hash = 1;
  original.files["src/odd\tname.cc"] = {5, 6, {}};
  AnalysisCache parsed;
  ASSERT_TRUE(ParseCache(FormatCache(original), &parsed));
  EXPECT_EQ(parsed.files.count("src/odd\tname.cc"), 1u);
}

// --- Analyze-level partial replay -------------------------------------------

std::vector<SourceFile> TwoFileTree(const std::string& b_body) {
  return {
      {"src/core/a.cc",
       "int* Make() {\n"
       "  return new int;\n"  // raw-new-delete fires here
       "}\n"},
      {"src/core/b.cc", b_body},
  };
}

TEST(CacheReplayTest, SecondRunReplaysFileScopedFindings) {
  AnalysisCache cache;
  AnalysisOptions options;
  options.checks = {"raw-new-delete"};
  options.cache = &cache;

  const std::vector<SourceFile> files = TwoFileTree("void Idle() {}\n");
  const AnalysisResult cold = Analyze(files, options);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 2u);
  ASSERT_EQ(cold.findings.size(), 1u);
  EXPECT_EQ(cold.findings[0].check, "raw-new-delete");
  EXPECT_EQ(cache.files.size(), 2u);
  EXPECT_EQ(cache.file_count, 2u);

  const AnalysisResult warm = Analyze(files, options);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_EQ(warm.cache_misses, 0u);
  ASSERT_EQ(warm.findings.size(), 1u);
  EXPECT_EQ(warm.findings[0].message, cold.findings[0].message);
  EXPECT_EQ(warm.findings[0].line, cold.findings[0].line);
}

TEST(CacheReplayTest, EditedFileMissesWhileOthersReplay) {
  AnalysisCache cache;
  AnalysisOptions options;
  options.checks = {"raw-new-delete"};
  options.cache = &cache;

  const AnalysisResult cold = Analyze(TwoFileTree("void Idle() {}\n"), options);
  ASSERT_TRUE(cold.ok) << cold.error;

  // Edit b.cc; a.cc's finding must survive via replay, and b.cc's new
  // hazard must be found live.
  const AnalysisResult edited = Analyze(
      TwoFileTree("char* Grab() {\n  return new char[8];\n}\n"), options);
  ASSERT_TRUE(edited.ok) << edited.error;
  EXPECT_EQ(edited.cache_hits, 1u);
  EXPECT_EQ(edited.cache_misses, 1u);
  ASSERT_EQ(edited.findings.size(), 2u);
  EXPECT_EQ(edited.findings[0].path, "src/core/a.cc");
  EXPECT_EQ(edited.findings[1].path, "src/core/b.cc");
}

TEST(CacheReplayTest, HeaderEditInvalidatesIncluders) {
  AnalysisCache cache;
  AnalysisOptions options;
  options.checks = {"raw-new-delete"};
  options.cache = &cache;

  const std::vector<SourceFile> v1 = {
      {"src/core/limits.h",
       "#ifndef FIREHOSE_LIMITS_H_\n#define FIREHOSE_LIMITS_H_\n"
       "inline constexpr int kCap = 8;\n#endif\n"},
      {"src/core/user.cc",
       "#include \"src/core/limits.h\"\n"
       "int Cap() { return kCap; }\n"},
  };
  const AnalysisResult cold = Analyze(v1, options);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_misses, 2u);

  // Touch only the header: the includer's closure hash changes, so both
  // files must miss even though user.cc's bytes are identical.
  std::vector<SourceFile> v2 = v1;
  v2[0].text =
      "#ifndef FIREHOSE_LIMITS_H_\n#define FIREHOSE_LIMITS_H_\n"
      "inline constexpr int kCap = 16;\n#endif\n";
  const AnalysisResult warm = Analyze(v2, options);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 2u);

  // And an untouched rerun after that hits both.
  const AnalysisResult hot = Analyze(v2, options);
  ASSERT_TRUE(hot.ok) << hot.error;
  EXPECT_EQ(hot.cache_hits, 2u);
}

TEST(CacheReplayTest, StatsTimersCoverEveryEnabledPass) {
  AnalysisOptions options;
  options.checks = {"raw-new-delete", "include-guard"};
  const AnalysisResult result =
      Analyze(TwoFileTree("void Idle() {}\n"), options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.pass_ms.size(), 2u);
  for (const auto& [name, ms] : result.pass_ms) {
    EXPECT_TRUE(name == "raw-new-delete" || name == "include-guard") << name;
    EXPECT_GE(ms, 0.0);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
