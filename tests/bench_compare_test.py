#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py over the committed fixture pair.

Fixtures live in tests/fixtures/bench_compare/: one baseline artifact plus
a behavior-identical fresh run (timing moved, ratio improved) and a drifted
fresh run (deterministic counter changed, ratio dropped below the floor).
"""

import contextlib
import importlib.util
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "bench_compare"

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py")
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def run(argv):
    """Runs bench_compare.main and captures (exit_code, stdout)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = bench_compare.main(argv)
    return code, out.getvalue()


class ClassifyTest(unittest.TestCase):
    def test_timing_names_are_skipped(self):
        for key in ("scan.kernel_ns_x1000", "ingest.wall_ms",
                    "decide.latency.p99_us", "index.crossover_size"):
            self.assertEqual(bench_compare.classify(key), "skip", key)

    def test_ratio_and_exact(self):
        self.assertEqual(bench_compare.classify("scan.speedup_pct"), "ratio")
        self.assertEqual(bench_compare.classify("posts.per_sec"), "ratio")
        self.assertEqual(bench_compare.classify("scan.comparisons"), "exact")


class CompareTest(unittest.TestCase):
    def test_identical_behavior_passes_and_reports_timing(self):
        code, out = run([str(FIXTURES / "baseline"),
                         str(FIXTURES / "fresh_ok")])
        self.assertEqual(code, 0, out)
        # Timing keys surface in the default human-readable report.
        self.assertIn("timing: BENCH_demo.json: scan.kernel_ns_x1000: "
                      "500 -> 750", out)
        self.assertIn("bench_compare: OK", out)

    def test_counter_drift_and_ratio_drop_fail(self):
        code, out = run([str(FIXTURES / "baseline"),
                         str(FIXTURES / "fresh_drift")])
        self.assertEqual(code, 1, out)
        self.assertIn("scan.comparisons: 1000 -> 999", out)
        self.assertIn("scan.speedup_pct: 200 -> 120", out)

    def test_check_timing_flags_regression(self):
        code, out = run([str(FIXTURES / "baseline"),
                         str(FIXTURES / "fresh_ok"), "--check-timing"])
        # 500 -> 750 is a 50% slowdown, beyond the default 25% tolerance.
        self.assertEqual(code, 1, out)
        self.assertIn("timing regressed", out)

    def test_require_floor(self):
        code, out = run([str(FIXTURES / "baseline"),
                         str(FIXTURES / "fresh_ok"),
                         "--require", "scan.speedup_pct>=150"])
        self.assertEqual(code, 0, out)
        code, out = run([str(FIXTURES / "baseline"),
                         str(FIXTURES / "fresh_ok"),
                         "--require", "scan.speedup_pct>=500"])
        self.assertEqual(code, 1, out)


class JsonOutTest(unittest.TestCase):
    def test_summary_schema_and_contents(self):
        with tempfile.TemporaryDirectory() as tmp:
            summary_path = Path(tmp) / "summary.json"
            code, _ = run([str(FIXTURES / "baseline"),
                           str(FIXTURES / "fresh_ok"),
                           "--json-out", str(summary_path)])
            self.assertEqual(code, 0)
            summary = json.loads(summary_path.read_text())
        self.assertEqual(summary["schema"], "firehose.bench_compare.v1")
        self.assertEqual(summary["status"], "ok")
        self.assertEqual(summary["artifacts"], ["BENCH_demo.json"])
        self.assertEqual(summary["failures"], [])
        timing_keys = {entry["key"] for entry in summary["timing"]}
        self.assertIn("scan.kernel_ns_x1000", timing_keys)
        entry = next(e for e in summary["timing"]
                     if e["key"] == "scan.kernel_ns_x1000")
        self.assertEqual(entry["baseline"], 500)
        self.assertEqual(entry["fresh"], 750)

    def test_summary_written_even_on_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            summary_path = Path(tmp) / "summary.json"
            code, _ = run([str(FIXTURES / "baseline"),
                           str(FIXTURES / "fresh_drift"),
                           "--json-out", str(summary_path)])
            self.assertEqual(code, 1)
            summary = json.loads(summary_path.read_text())
        self.assertEqual(summary["status"], "fail")
        self.assertTrue(any("scan.comparisons" in failure
                            for failure in summary["failures"]))


if __name__ == "__main__":
    unittest.main()
