#include "src/author/follow_graph.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(FollowGraphTest, EmptyGraph) {
  FollowGraph g;
  EXPECT_EQ(g.num_authors(), 0u);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(FollowGraphTest, AddAndQueryFollows) {
  FollowGraph g(4);
  g.AddFollow(0, 1);
  g.AddFollow(0, 2);
  g.AddFollow(3, 1);
  g.Finalize();
  EXPECT_EQ(g.Followees(0), (std::vector<AuthorId>{1, 2}));
  EXPECT_EQ(g.Followers(1), (std::vector<AuthorId>{0, 3}));
  EXPECT_TRUE(g.Followees(1).empty());
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(FollowGraphTest, SelfFollowsIgnored) {
  FollowGraph g(2);
  g.AddFollow(0, 0);
  g.Finalize();
  EXPECT_TRUE(g.Followees(0).empty());
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(FollowGraphTest, DuplicateFollowsCollapse) {
  FollowGraph g(2);
  g.AddFollow(0, 1);
  g.AddFollow(0, 1);
  g.AddFollow(0, 1);
  g.Finalize();
  EXPECT_EQ(g.Followees(0).size(), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FollowGraphTest, OutOfRangeEndpointsIgnored) {
  FollowGraph g(2);
  g.AddFollow(0, 5);
  g.AddFollow(5, 0);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(FollowGraphTest, FinalizeIsIdempotent) {
  FollowGraph g(3);
  g.AddFollow(0, 1);
  g.Finalize();
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FollowGraphTest, AdjacencySortedAfterFinalize) {
  FollowGraph g(5);
  g.AddFollow(0, 4);
  g.AddFollow(0, 1);
  g.AddFollow(0, 3);
  g.Finalize();
  EXPECT_EQ(g.Followees(0), (std::vector<AuthorId>{1, 3, 4}));
}

TEST(BfsSampleTest, ReachesConnectedAuthorsUndirected) {
  FollowGraph g(5);
  // 0 -> 1, 2 -> 1 (undirected reach from 0: {0,1,2}), 3 -> 4 separate.
  g.AddFollow(0, 1);
  g.AddFollow(2, 1);
  g.AddFollow(3, 4);
  g.Finalize();
  auto sample = g.BfsSample(0, 100);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<AuthorId>{0, 1, 2}));
}

TEST(BfsSampleTest, RespectsSizeLimit) {
  FollowGraph g(10);
  for (AuthorId a = 0; a + 1 < 10; ++a) g.AddFollow(a, a + 1);
  g.Finalize();
  EXPECT_EQ(g.BfsSample(0, 4).size(), 4u);
}

TEST(BfsSampleTest, StartIsFirstInVisitOrder) {
  FollowGraph g(3);
  g.AddFollow(2, 0);
  g.Finalize();
  const auto sample = g.BfsSample(2, 10);
  ASSERT_FALSE(sample.empty());
  EXPECT_EQ(sample[0], 2u);
}

TEST(BfsSampleTest, DegenerateInputs) {
  FollowGraph g(2);
  g.Finalize();
  EXPECT_TRUE(g.BfsSample(5, 10).empty());  // start out of range
  EXPECT_TRUE(g.BfsSample(0, 0).empty());   // zero budget
  EXPECT_EQ(g.BfsSample(0, 10).size(), 1u); // isolated start
}

}  // namespace
}  // namespace firehose
