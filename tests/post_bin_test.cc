#include "src/stream/post_bin.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

BinEntry Entry(int64_t time_ms, PostId id = 0) {
  return BinEntry{time_ms, 0, 0, id};
}

TEST(PostBinTest, StartsEmpty) {
  PostBin bin;
  EXPECT_TRUE(bin.empty());
  EXPECT_EQ(bin.size(), 0u);
}

TEST(PostBinTest, PushAndAccess) {
  PostBin bin;
  bin.Push(Entry(10, 1));
  bin.Push(Entry(20, 2));
  bin.Push(Entry(30, 3));
  EXPECT_EQ(bin.size(), 3u);
  EXPECT_EQ(bin.FromNewest(0).post_id, 3u);
  EXPECT_EQ(bin.FromNewest(2).post_id, 1u);
  EXPECT_EQ(bin.FromOldest(0).post_id, 1u);
  EXPECT_EQ(bin.FromOldest(2).post_id, 3u);
}

TEST(PostBinTest, EvictOlderThanRemovesPrefix) {
  PostBin bin;
  for (int64_t t = 0; t < 10; ++t) bin.Push(Entry(t, static_cast<PostId>(t)));
  EXPECT_EQ(bin.EvictOlderThan(5), 5u);
  EXPECT_EQ(bin.size(), 5u);
  EXPECT_EQ(bin.FromOldest(0).time_ms, 5);
}

TEST(PostBinTest, EvictBoundaryIsExclusive) {
  PostBin bin;
  bin.Push(Entry(100));
  EXPECT_EQ(bin.EvictOlderThan(100), 0u);  // time == cutoff survives
  EXPECT_EQ(bin.EvictOlderThan(101), 1u);
}

TEST(PostBinTest, EvictAllAndReuse) {
  PostBin bin;
  bin.Push(Entry(1));
  bin.Push(Entry(2));
  EXPECT_EQ(bin.EvictOlderThan(1000), 2u);
  EXPECT_TRUE(bin.empty());
  bin.Push(Entry(2000, 42));
  EXPECT_EQ(bin.FromNewest(0).post_id, 42u);
}

TEST(PostBinTest, EvictOnEmptyIsNoop) {
  PostBin bin;
  EXPECT_EQ(bin.EvictOlderThan(100), 0u);
}

TEST(PostBinTest, RingWrapsCorrectly) {
  PostBin bin;
  // Fill past the initial capacity (8) with interleaved evictions so the
  // ring head moves and wraps.
  int64_t t = 0;
  for (int round = 0; round < 100; ++round) {
    bin.Push(Entry(t, static_cast<PostId>(t)));
    ++t;
    if (round % 3 == 0) bin.EvictOlderThan(t - 4);
  }
  // Validate ordering end to end.
  for (size_t i = 0; i + 1 < bin.size(); ++i) {
    EXPECT_LE(bin.FromOldest(i).time_ms, bin.FromOldest(i + 1).time_ms);
  }
  EXPECT_EQ(bin.FromNewest(0).time_ms, t - 1);
}

TEST(PostBinTest, GrowthPreservesOrder) {
  PostBin bin;
  for (int64_t t = 0; t < 1000; ++t) {
    bin.Push(Entry(t, static_cast<PostId>(t)));
  }
  ASSERT_EQ(bin.size(), 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(bin.FromOldest(i).post_id, i);
  }
}

TEST(PostBinTest, GrowthAfterWrapPreservesOrder) {
  PostBin bin;
  for (int64_t t = 0; t < 6; ++t) bin.Push(Entry(t));
  bin.EvictOlderThan(4);  // head moves to index 4
  for (int64_t t = 6; t < 40; ++t) bin.Push(Entry(t));  // forces growth
  EXPECT_EQ(bin.size(), 36u);
  for (size_t i = 0; i + 1 < bin.size(); ++i) {
    EXPECT_LT(bin.FromOldest(i).time_ms, bin.FromOldest(i + 1).time_ms);
  }
}

TEST(PostBinTest, ApproxBytesTracksCapacity) {
  PostBin bin;
  EXPECT_EQ(bin.ApproxBytes(), 0u);
  bin.Push(Entry(1));
  const size_t small = bin.ApproxBytes();
  EXPECT_GE(small, 2 * sizeof(BinEntry));
  for (int64_t t = 2; t <= 100; ++t) bin.Push(Entry(t));
  EXPECT_GT(bin.ApproxBytes(), small);
}

TEST(PostBinTest, EqualTimestampsAllowed) {
  PostBin bin;
  bin.Push(Entry(5, 1));
  bin.Push(Entry(5, 2));
  bin.Push(Entry(5, 3));
  EXPECT_EQ(bin.size(), 3u);
  EXPECT_EQ(bin.FromNewest(0).post_id, 3u);
  EXPECT_EQ(bin.EvictOlderThan(6), 3u);
}

}  // namespace
}  // namespace firehose
