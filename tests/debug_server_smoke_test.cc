// End-to-end live-introspection smoke test: starts the real
// firehose_diversify binary with --live --debug_port=0, parses the
// announced port from its stdout, scrapes every debug endpoint while the
// replay is still running, and then reconciles the mid-stream snapshots
// against the final --metrics_out artifact:
//
//   every scraped engine counter is <= its final value (monotonicity)
//   each scrape is internally consistent: posts_in == posts_out + pruned
//   /statusz carries the build stamp and the live runtime block
//   /tracez returns Chrome trace_event JSON while spans keep landing

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/firehose.h"

#ifndef FIREHOSE_DIVERSIFY_BIN
#error "FIREHOSE_DIVERSIFY_BIN must point at the firehose_diversify binary"
#endif

namespace firehose {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

uint64_t JsonUint(const std::string& json, const std::string& key,
                  bool* found) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    *found = false;
    return 0;
  }
  *found = true;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

uint64_t RequireUint(const std::string& json, const std::string& key) {
  bool found = false;
  const uint64_t value = JsonUint(json, key, &found);
  EXPECT_TRUE(found) << "key missing: " << key << "\nin: " << json;
  return value;
}

class DebugServerSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SocialGraphOptions social_options;
    social_options.num_authors = 300;
    social_options.num_communities = 10;
    social_options.avg_followees = 20.0;
    social_options.seed = 515;
    const FollowGraph social = GenerateSocialGraph(social_options);
    std::vector<AuthorId> authors;
    for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
    const auto similarities = AllPairsSimilarity(social, authors, 0.05);
    AuthorGraph graph =
        AuthorGraph::FromSimilarities(authors, similarities, 0.7);

    StreamGenOptions stream_options;
    stream_options.posts_per_author = 12.0;
    stream_options.seed = 616;
    const SimHasher hasher;
    const PostStream stream = GenerateStream(graph, hasher, stream_options);
    ASSERT_GT(stream.size(), 1000u);

    ASSERT_TRUE(SaveAuthorGraph(graph, kGraphPath));
    ASSERT_TRUE(SavePostStream(stream, kStreamPath));
  }

  void TearDown() override {
    for (const char* path :
         {kGraphPath, kStreamPath, kMetricsPath, kOutPath}) {
      std::remove(path);
    }
  }

  static constexpr const char* kGraphPath = "debug_smoke_graph.bin";
  static constexpr const char* kStreamPath = "debug_smoke_stream.bin";
  static constexpr const char* kMetricsPath = "debug_smoke_metrics.json";
  static constexpr const char* kOutPath = "debug_smoke_out.bin";
};

TEST_F(DebugServerSmokeTest, MidStreamScrapesReconcileWithFinalSnapshot) {
  // 24h of stream at 40000x is ~2.2s of wall clock: long enough that the
  // scrapes below land mid-replay, short enough for a unit-test budget.
  const std::string command =
      std::string("\"") + FIREHOSE_DIVERSIFY_BIN + "\" --graph=" + kGraphPath +
      " --stream=" + kStreamPath +
      " --algorithm=cliquebin --live --speedup=40000 --debug_port=0" +
      " --metrics_out=" + kMetricsPath + " --out=" + kOutPath +
      " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), pipe), nullptr);
  int port = 0;
  ASSERT_EQ(std::sscanf(
                line, "debug server listening on http://127.0.0.1:%d", &port),
            1)
      << "unexpected first line: " << line;
  ASSERT_GT(port, 0);

  // Scrape all four endpoints while the replay runs. The port is
  // announced before the consumer loop starts, so retry /varz until the
  // first publish lands (the first iteration forces one).
  int status = 0;
  std::string varz_mid;
  std::vector<std::string> varz_scrapes;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(HttpGet(port, "/varz", &status, &varz_mid));
    EXPECT_EQ(status, 200);
    if (varz_mid.find("engine.posts_in") != std::string::npos) break;
  }
  ASSERT_NE(varz_mid.find("engine.posts_in"), std::string::npos);
  varz_scrapes.push_back(varz_mid);

  std::string prom_mid;
  ASSERT_TRUE(HttpGet(port, "/metricsz", &status, &prom_mid));
  EXPECT_EQ(status, 200);
  EXPECT_NE(prom_mid.find("# TYPE firehose_"), std::string::npos);

  std::string statusz;
  ASSERT_TRUE(HttpGet(port, "/statusz", &status, &statusz));
  EXPECT_EQ(status, 200);
  EXPECT_NE(statusz.find("\"build\": \""), std::string::npos);
  EXPECT_NE(statusz.find("\"uptime_ms\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"watchdog\": "), std::string::npos);
  EXPECT_NE(statusz.find("\"mode\": \"live\""), std::string::npos);

  std::string tracez;
  ASSERT_TRUE(HttpGet(port, "/tracez", &status, &tracez));
  EXPECT_EQ(status, 200);
  EXPECT_NE(tracez.find("\"traceEvents\":["), std::string::npos);

  // A second varz scrape a moment later: counters may only grow.
  std::string varz_later;
  ASSERT_TRUE(HttpGet(port, "/varz", &status, &varz_later));
  varz_scrapes.push_back(varz_later);

  // Drain the process to completion.
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
  }
  ASSERT_EQ(pclose(pipe), 0);

  const std::string final_snapshot = Slurp(kMetricsPath);
  ASSERT_FALSE(final_snapshot.empty());
  const uint64_t final_in = RequireUint(final_snapshot, "engine.posts_in");
  const uint64_t final_out = RequireUint(final_snapshot, "engine.posts_out");
  const uint64_t final_pruned =
      RequireUint(final_snapshot, "engine.posts_pruned");
  ASSERT_GT(final_in, 0u);
  EXPECT_EQ(final_in, final_out + final_pruned);

  for (const std::string& varz : varz_scrapes) {
    // Internally consistent: a snapshot never mixes two instants.
    const uint64_t in = RequireUint(varz, "engine.posts_in");
    const uint64_t out = RequireUint(varz, "engine.posts_out");
    const uint64_t pruned = RequireUint(varz, "engine.posts_pruned");
    EXPECT_EQ(in, out + pruned) << varz;
    // Monotone: a mid-stream value never exceeds the final artifact.
    EXPECT_LE(in, final_in);
    EXPECT_LE(out, final_out);
    EXPECT_LE(pruned, final_pruned);
  }
  // The two ordered scrapes are themselves monotone.
  EXPECT_LE(RequireUint(varz_scrapes[0], "engine.posts_in"),
            RequireUint(varz_scrapes[1], "engine.posts_in"));

  // The final artifact is untouched by observation: schema intact, no
  // timing keys (those appear only in live scrapes).
  EXPECT_NE(final_snapshot.find("\"schema\": \"firehose.metrics.v1\""),
            std::string::npos);
}

TEST_F(DebugServerSmokeTest, FatalSignalMidStreamLeavesFlightTrace) {
  const char* kTracePath = "debug_smoke_crash_trace.json";
  std::remove(kTracePath);
  // `echo $$; exec ...` exposes the binary's pid as the first stdout
  // line (the shell exec-replaces itself), so the test can deliver a
  // real SIGSEGV mid-replay.
  const std::string command =
      std::string("echo $$; exec \"") + FIREHOSE_DIVERSIFY_BIN +
      "\" --graph=" + kGraphPath + " --stream=" + kStreamPath +
      " --algorithm=cliquebin --live --speedup=40000 --debug_port=0" +
      " --crash_trace_out=" + kTracePath + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), pipe), nullptr);
  const long pid = std::strtol(line, nullptr, 10);
  ASSERT_GT(pid, 0);
  ASSERT_NE(std::fgets(line, sizeof(line), pipe), nullptr);
  int port = 0;
  ASSERT_EQ(std::sscanf(
                line, "debug server listening on http://127.0.0.1:%d", &port),
            1);

  // Let the replay decide a few posts so the rings hold real spans, then
  // crash it. The very first publish can land before any post (posts_in
  // still 0 — common under sanitizers), so wait for a NONZERO count.
  std::string varz;
  int status = 0;
  bool found = false;
  for (int i = 0; i < 2000; ++i) {
    if (HttpGet(port, "/varz", &status, &varz) &&
        JsonUint(varz, "engine.posts_in", &found) > 0) {
      break;
    }
  }
  EXPECT_GT(JsonUint(varz, "engine.posts_in", &found), 0u) << varz;
  ASSERT_EQ(std::system(
                ("kill -SEGV " + std::to_string(pid) + " 2>/dev/null").c_str()),
            0);
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
  }
  const int exit_status = pclose(pipe);
  // The handler re-raises with the default disposition: the process
  // died of SIGSEGV, it did not exit cleanly.
  EXPECT_NE(exit_status, 0);

  // The crash handler left a well-formed Chrome trace behind.
  const std::string trace = Slurp(kTracePath);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\""), std::string::npos);
  EXPECT_EQ(trace.substr(trace.size() - 3), "]}\n");
  std::remove(kTracePath);
}

}  // namespace
}  // namespace firehose
