#include "src/core/unibin.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExamplePosts;
using testing_util::PaperExampleThresholds;

Post MakePost(PostId id, AuthorId author, int64_t time_ms, uint64_t simhash) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.simhash = simhash;
  return post;
}

TEST(UniBinTest, FirstPostAlwaysAdmitted) {
  const AuthorGraph graph = PaperExampleGraph();
  UniBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 42)));
  EXPECT_EQ(diversifier.stats().posts_out, 1u);
}

TEST(UniBinTest, PaperFigure6aTrace) {
  const AuthorGraph graph = PaperExampleGraph();
  UniBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  std::vector<bool> admitted;
  for (const Post& post : PaperExamplePosts()) {
    admitted.push_back(diversifier.Offer(post));
  }
  // Z = {P1, P2, P4}: the exact outcome of Figure 6a.
  EXPECT_EQ(admitted, (std::vector<bool>{true, true, false, true, false}));
  // Comparison count from the §4.1 walk-through: 0+1+2+2+1.
  EXPECT_EQ(diversifier.stats().comparisons, 6u);
  EXPECT_EQ(diversifier.stats().insertions, 3u);
  EXPECT_EQ(diversifier.stats().posts_in, 5u);
  EXPECT_EQ(diversifier.stats().posts_out, 3u);
}

TEST(UniBinTest, ContentSimilarButAuthorFarIsNotCovered) {
  const AuthorGraph graph = PaperExampleGraph();
  UniBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  // Authors 1 and 3 are not neighbors: same content is still diverse.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 1, 0, 0xAAAA)));
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 3, 1, 0xAAAA)));
}

TEST(UniBinTest, SameAuthorIsAlwaysAuthorSimilar) {
  const AuthorGraph graph = PaperExampleGraph();
  UniBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 3, 0, 0xAAAA)));
  // Author 3 has only one neighbor (2), but covers its own posts.
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 3, 1, 0xAAAA)));
}

TEST(UniBinTest, TimeWindowExpiryReadmits) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.lambda_t_ms = 100;
  UniBinDiversifier diversifier(t, &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 7)));
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 0, 50, 7)));   // within λt
  EXPECT_TRUE(diversifier.Offer(MakePost(2, 0, 200, 7)));   // window passed
}

TEST(UniBinTest, TimeWindowBoundaryIsInclusive) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.lambda_t_ms = 100;
  UniBinDiversifier diversifier(t, &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 7)));
  // distt == λt still covers (Definition 1 uses <=).
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 0, 100, 7)));
}

TEST(UniBinTest, ContentDimensionDisabled) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.use_content = false;
  UniBinDiversifier diversifier(t, &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 0)));
  // Content-far post from a similar author is now covered.
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 1, 1, ~0ULL)));
}

TEST(UniBinTest, AuthorDimensionDisabled) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.use_author = false;
  UniBinDiversifier diversifier(t, &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 1, 0, 0xAAAA)));
  // Author-far (1 vs 3) but content-identical: covered without authors.
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 3, 1, 0xAAAA)));
}

TEST(UniBinTest, NullGraphMeansNoCrossAuthorCoverage) {
  UniBinDiversifier diversifier(PaperExampleThresholds(), nullptr);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 0, 0, 5)));
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 1, 1, 5)));   // different author
  EXPECT_FALSE(diversifier.Offer(MakePost(2, 0, 2, 5)));  // same author
}

TEST(UniBinTest, StatsAndMemoryAccumulate) {
  const AuthorGraph graph = PaperExampleGraph();
  UniBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  for (const Post& post : PaperExamplePosts()) diversifier.Offer(post);
  EXPECT_GT(diversifier.ApproxBytes(), 0u);
  EXPECT_GE(diversifier.stats().peak_bytes, diversifier.ApproxBytes());
}

}  // namespace
}  // namespace firehose
