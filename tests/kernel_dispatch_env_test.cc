// Dispatch-report assertions driven by the FIREHOSE_KERNEL environment
// variable. The ctest registration runs this binary several times with
// different FIREHOSE_KERNEL values (see tests/CMakeLists.txt); each run
// asserts the report is consistent with its own environment, and the
// forced-scalar run additionally pins the /statusz surface: every build
// compiles the scalar variant, so "FIREHOSE_KERNEL=scalar must resolve
// to scalar" holds on any machine, flags or not.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/kernels/dispatch.h"
#include "src/obs/debug_server.h"
#include "src/runtime/pipeline.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using kernels::AvailableKernelOps;
using kernels::GetKernelDispatchReport;
using kernels::KernelDispatchReport;

bool CompiledListContains(const KernelDispatchReport& report,
                          const std::string& name) {
  const std::string compiled = std::string(",") + report.compiled + ",";
  return compiled.find("," + name + ",") != std::string::npos;
}

TEST(KernelDispatchEnv, ReportIsInternallyConsistent) {
  const KernelDispatchReport& report = GetKernelDispatchReport();
  // Scalar is unconditionally compiled and is the dispatch floor.
  EXPECT_TRUE(CompiledListContains(report, "scalar")) << report.compiled;
  EXPECT_TRUE(CompiledListContains(report, report.active))
      << report.active << " not in " << report.compiled;
  EXPECT_TRUE(CompiledListContains(report, report.best)) << report.best;
  // The active ops object agrees with the report.
  EXPECT_STREQ(kernels::ActiveKernelOps().name, report.active);
  // The available list starts at scalar and contains the active variant.
  bool found_active = false;
  for (const kernels::KernelOps* ops : AvailableKernelOps()) {
    if (std::strcmp(ops->name, report.active) == 0) found_active = true;
  }
  EXPECT_TRUE(found_active);
}

TEST(KernelDispatchEnv, RequestedMatchesEnvironment) {
  const char* env = std::getenv("FIREHOSE_KERNEL");
  const KernelDispatchReport& report = GetKernelDispatchReport();
  const std::vector<std::string> known = {"scalar", "sse", "avx2", "avx512"};
  if (env == nullptr ||
      std::find(known.begin(), known.end(), env) == known.end()) {
    EXPECT_STREQ(report.requested, "auto");
    // Auto dispatch runs the widest usable variant.
    EXPECT_STREQ(report.active, report.best);
    return;
  }
  EXPECT_STREQ(report.requested, env);
  // A request never resolves *up*: active <= requested tier, and when the
  // requested variant is usable it is chosen exactly.
  const auto tier = [&](const std::string& name) {
    return std::find(known.begin(), known.end(), name) - known.begin();
  };
  EXPECT_LE(tier(report.active), tier(report.requested));
  for (const kernels::KernelOps* ops : AvailableKernelOps()) {
    if (std::strcmp(ops->name, env) == 0) {
      EXPECT_STREQ(report.active, env);  // usable request honored exactly
    }
  }
}

TEST(KernelDispatchEnv, ForcedScalarAlwaysResolves) {
  const char* env = std::getenv("FIREHOSE_KERNEL");
  if (env == nullptr || std::strcmp(env, "scalar") != 0) {
    GTEST_SKIP() << "only meaningful under FIREHOSE_KERNEL=scalar";
  }
  const KernelDispatchReport& report = GetKernelDispatchReport();
  EXPECT_STREQ(report.active, "scalar");
  EXPECT_STREQ(report.requested, "scalar");
  EXPECT_EQ(kernels::ActiveKernelOps().variant,
            kernels::KernelVariant::kScalar);
}

// The dispatch decision must be visible where operators look: the
// pipeline's /statusz runtime block carries a "kernel" field equal to
// the report's active variant.
TEST(KernelDispatchEnv, StatuszCarriesActiveKernel) {
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto diversifier = MakeDiversifier(
      Algorithm::kUniBin, testing_util::PaperExampleThresholds(), &graph);
  const PostStream stream = testing_util::PaperExamplePosts();
  PostStream out;
  CollectSink sink(&out);
  Pipeline pipeline(diversifier.get(), &sink);

  obs::DebugState debug;
  PipelineObs o;
  o.debug = &debug;
  o.publish_interval_nanos = 0;  // publish every post
  VectorSource source(&stream);
  pipeline.Run(source, o);

  const std::string status = debug.status_json();
  const std::string want = std::string("\"kernel\": \"") +
                           GetKernelDispatchReport().active + "\"";
  EXPECT_NE(status.find(want), std::string::npos)
      << "statusz block " << status << " missing " << want;
}

}  // namespace
}  // namespace firehose
