#include "src/io/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace firehose {
namespace {

TEST(HttpServerTest, ServesGetOnEphemeralPort) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "hello " + request.path + "\n";
    return response;
  }));
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/greet", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "hello /greet\n");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, SplitsQueryFromPath) {
  HttpServer server;
  std::string seen_path;
  std::string seen_query;
  ASSERT_TRUE(server.Start(0, [&](const HttpRequest& request) {
    seen_path = request.path;
    seen_query = request.query;
    return HttpResponse{};
  }));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/tracez?window_s=5", &status, &body));
  EXPECT_EQ(seen_path, "/tracez");
  EXPECT_EQ(seen_query, "window_s=5");
  server.Stop();
}

TEST(HttpServerTest, PropagatesHandlerStatus) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest&) {
    HttpResponse response;
    response.status = 404;
    response.body = "nope\n";
    return response;
  }));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/missing", &status, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(body, "nope\n");
  server.Stop();
}

TEST(HttpServerTest, HandlesSequentialConnections) {
  HttpServer server;
  int hits = 0;
  ASSERT_TRUE(server.Start(0, [&](const HttpRequest&) {
    ++hits;
    HttpResponse response;
    response.body = std::to_string(hits);
    return response;
  }));
  for (int i = 1; i <= 5; ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(HttpGet(server.port(), "/", &status, &body));
    EXPECT_EQ(body, std::to_string(i));
  }
  server.Stop();
}

TEST(HttpServerTest, RebindAfterStopWorks) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest&) {
    return HttpResponse{};
  }));
  const int first_port = server.port();
  server.Stop();

  HttpServer second;
  ASSERT_TRUE(second.Start(0, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "second";
    return response;
  }));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(second.port(), "/", &status, &body));
  EXPECT_EQ(body, "second");
  second.Stop();
  (void)first_port;
}

TEST(HttpGetTest, FailsCleanlyWhenNothingListens) {
  int status = 0;
  std::string body;
  // Port 1 is privileged and almost certainly closed; the client must
  // return false, not hang or crash.
  EXPECT_FALSE(HttpGet(1, "/", &status, &body));
}

}  // namespace
}  // namespace firehose
