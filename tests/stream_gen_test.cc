#include "src/gen/stream_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/gen/social_graph_gen.h"

namespace firehose {
namespace {

AuthorGraph SmallAuthorGraph() {
  SocialGraphOptions options;
  options.num_authors = 200;
  options.num_communities = 5;
  options.avg_followees = 20.0;
  options.seed = 3;
  const FollowGraph social = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto pairs = AllPairsSimilarity(social, authors, 0.3);
  return AuthorGraph::FromSimilarities(authors, pairs, 0.7);
}

StreamGenOptions SmallStreamOptions(uint64_t seed = 4) {
  StreamGenOptions options;
  options.duration_ms = 3600 * 1000;  // one hour keeps the test fast
  options.posts_per_author = 8.0;
  options.seed = seed;
  return options;
}

TEST(StreamGenTest, DeterministicGivenSeed) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream a = GenerateStream(graph, hasher, SmallStreamOptions());
  const PostStream b = GenerateStream(graph, hasher, SmallStreamOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].time_ms, b[i].time_ms);
    EXPECT_EQ(a[i].author, b[i].author);
  }
}

TEST(StreamGenTest, TimeOrderedWithDenseIds) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  ASSERT_FALSE(stream.empty());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, i);
    if (i > 0) {
      EXPECT_GE(stream[i].time_ms, stream[i - 1].time_ms);
    }
    EXPECT_LT(stream[i].time_ms, SmallStreamOptions().duration_ms);
  }
}

TEST(StreamGenTest, AuthorsComeFromTheGraph) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  for (const Post& post : stream) {
    EXPECT_TRUE(graph.HasVertex(post.author));
  }
}

TEST(StreamGenTest, VolumeMatchesRate) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  const double expected = 200 * 8.0;
  EXPECT_GT(stream.size(), expected * 0.8);
  EXPECT_LT(stream.size(), expected * 1.2);
}

TEST(StreamGenTest, SimhashMatchesText) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  for (size_t i = 0; i < stream.size(); i += 37) {
    EXPECT_EQ(stream[i].simhash, hasher.Fingerprint(stream[i].text));
  }
}

TEST(StreamGenTest, ContainsPrunableRedundancy) {
  // Diversification must find something to prune: posts_out < posts_in.
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  StreamGenOptions options = SmallStreamOptions();
  options.cross_author_dup_prob = 0.2;
  const PostStream stream = GenerateStream(graph, hasher, options);

  DiversityThresholds t;
  t.lambda_c = 18;
  t.lambda_t_ms = 30 * 60 * 1000;
  auto diversifier = MakeDiversifier(Algorithm::kUniBin, t, &graph);
  for (const Post& post : stream) diversifier->Offer(post);
  EXPECT_LT(diversifier->stats().posts_out, diversifier->stats().posts_in);
  // But most posts survive (the paper prunes ~10%).
  EXPECT_GT(diversifier->stats().posts_out,
            diversifier->stats().posts_in / 2);
}

TEST(StreamGenTest, ZeroDupProbabilityStillGenerates) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  StreamGenOptions options = SmallStreamOptions();
  options.cross_author_dup_prob = 0.0;
  options.self_dup_prob = 0.0;
  EXPECT_FALSE(GenerateStream(graph, hasher, options).empty());
}

TEST(SampleStreamTest, RatioAndDenseIds) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  const PostStream sampled = SampleStream(stream, 0.25, 8);
  EXPECT_GT(sampled.size(), stream.size() / 5);
  EXPECT_LT(sampled.size(), stream.size() / 3);
  for (size_t i = 0; i < sampled.size(); ++i) EXPECT_EQ(sampled[i].id, i);
  EXPECT_TRUE(SampleStream(stream, 0.0, 8).empty());
  EXPECT_EQ(SampleStream(stream, 1.0, 8).size(), stream.size());
}

TEST(FilterStreamTest, KeepsOnlyGivenAuthors) {
  const AuthorGraph graph = SmallAuthorGraph();
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, SmallStreamOptions());
  const std::vector<AuthorId> keep = {0, 1, 2, 3, 4};
  const PostStream filtered = FilterStreamByAuthors(stream, keep);
  const std::set<AuthorId> keep_set(keep.begin(), keep.end());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i].id, i);
    EXPECT_TRUE(keep_set.count(filtered[i].author) > 0);
  }
  EXPECT_LT(filtered.size(), stream.size());
}

}  // namespace
}  // namespace firehose
