// Crash-recovery tests for the DurableSession: a run that dies at any
// point — clean stop, torn WAL write, corrupted checkpoint — and is then
// resumed must make exactly the decisions of an uninterrupted run,
// reconstruct the byte-identical output stream, and end with identical
// serialized engine state. Incompatible or mismatched durable state is a
// hard, named error, never a silent divergence.

#include "src/dur/durable.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/dur/fault.h"
#include "src/dur/framing.h"
#include "src/util/binary.h"
#include "src/io/persist.h"
#include "src/util/build_info.h"
#include "tests/test_util.h"

namespace firehose {
namespace dur {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string("crash_recovery_test_tmp_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    Rng rng(20260731);
    graph_ = testing_util::RandomAuthorGraph(14, 0.3, rng);
    cover_ = CliqueCover::Greedy(graph_);
    stream_ = testing_util::RandomStream(320, 14, 40, rng);
    thresholds_.lambda_c = 6;
    thresholds_.lambda_t_ms = 900;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Diversifier> NewEngine(Algorithm algorithm) {
    return MakeDiversifier(algorithm, thresholds_, &graph_, &cover_);
  }

  DurableOptions Options(FileOps* ops = nullptr) {
    DurableOptions options;
    options.dir = dir_;
    options.checkpoint_every = 25;
    options.segment_bytes = 1024;  // several rotations per run
    options.ops = ops;
    return options;
  }

  /// The uninterrupted reference: output TSV text and final engine state.
  void Reference(Algorithm algorithm, std::string* out_tsv,
                 std::string* state) {
    auto engine = NewEngine(algorithm);
    *out_tsv = PostStreamTsvHeader();
    for (const Post& post : stream_) {
      if (engine->Offer(post)) AppendPostTsvLine(post, out_tsv);
    }
    BinaryWriter writer;
    engine->SaveState(&writer);
    *state = writer.Release();
  }

  /// One durable incarnation over `stream_`: recovers, repositions the
  /// simulated output, then processes posts until `stop_after` new posts
  /// (0 = run to completion and Close). Returns false on any io error
  /// (callers treat that as the crash). `out` is the simulated durable
  /// output file, `durable_out_bytes` its last fsynced size.
  bool RunIncarnation(Algorithm algorithm, FileOps* ops, uint64_t stop_after,
                      std::string* out, uint64_t* durable_out_bytes,
                      std::string* error) {
    auto engine = NewEngine(algorithm);
    DurableSession session(Options(ops), engine.get());
    std::string replayed;
    RecoveryReport report;
    if (!session.Recover(
            &report,
            [&](const Post& post) { AppendPostTsvLine(post, &replayed); },
            error)) {
      return false;
    }
    // Reposition the output exactly as the tool does: truncate to the
    // checkpointed offset (or start fresh) and append the replayed tail.
    if (report.found_checkpoint) {
      out->resize(static_cast<size_t>(report.output_bytes));
    } else {
      *out = PostStreamTsvHeader();
    }
    out->append(replayed);

    uint64_t processed = 0;
    for (size_t i = report.next_seq; i < stream_.size(); ++i) {
      bool accepted = false;
      if (!session.Process(stream_[i], &accepted)) {
        *error = "Process failed";
        return false;
      }
      if (accepted) AppendPostTsvLine(stream_[i], out);
      if (session.ShouldCheckpoint()) {
        *durable_out_bytes = out->size();  // "fsync" the simulated output
        if (!session.Checkpoint(*durable_out_bytes)) {
          *error = "Checkpoint failed";
          return false;
        }
      }
      if (stop_after > 0 && ++processed >= stop_after) return true;  // crash
    }
    *durable_out_bytes = out->size();
    if (!session.Close(*durable_out_bytes)) {
      *error = "Close failed";
      return false;
    }
    return true;
  }

  /// Simulates losing everything after the last fsynced offset (the page
  /// cache the crash destroyed). The simulated output only survives up to
  /// `durable_out_bytes`.
  static void CrashOutput(std::string* out, uint64_t durable_out_bytes) {
    if (out->size() > durable_out_bytes) {
      out->resize(static_cast<size_t>(durable_out_bytes));
    }
  }

  std::string dir_;
  AuthorGraph graph_;
  CliqueCover cover_;
  PostStream stream_;
  DiversityThresholds thresholds_;
};

TEST_F(CrashRecoveryTest, UninterruptedDurableRunMatchesPlainRun) {
  for (const Algorithm algorithm : kAllAlgorithms) {
    std::filesystem::remove_all(dir_);
    std::string expected_tsv, expected_state;
    Reference(algorithm, &expected_tsv, &expected_state);

    std::string out;
    uint64_t durable_bytes = 0;
    std::string error;
    ASSERT_TRUE(RunIncarnation(algorithm, nullptr, 0, &out, &durable_bytes,
                               &error))
        << error;
    EXPECT_EQ(out, expected_tsv) << AlgorithmName(algorithm);
  }
}

TEST_F(CrashRecoveryTest, CrashAtEveryCheckpointBoundaryRecoversExactly) {
  const Algorithm algorithm = Algorithm::kCliqueBin;
  std::string expected_tsv, expected_state;
  Reference(algorithm, &expected_tsv, &expected_state);

  // Kill the run after k new posts, for k sweeping across checkpoint
  // boundaries, then resume to completion (possibly crashing repeatedly).
  for (uint64_t k : {1u, 7u, 24u, 25u, 26u, 49u, 50u, 99u, 113u, 200u}) {
    std::filesystem::remove_all(dir_);
    std::string out;
    uint64_t durable_bytes = 0;
    std::string error;
    int incarnations = 0;
    for (;;) {
      const bool done = RunIncarnation(algorithm, nullptr, k, &out,
                                       &durable_bytes, &error);
      ASSERT_TRUE(done) << error;  // io never fails with real ops
      ASSERT_LT(++incarnations, 1000);
      if (out.size() == expected_tsv.size() && out == expected_tsv) {
        // Completed? Only when the whole stream was consumed: run once
        // more with no kill to Close cleanly.
        break;
      }
      CrashOutput(&out, durable_bytes);
    }
    std::string final_out = out;
    uint64_t final_bytes = durable_bytes;
    ASSERT_TRUE(RunIncarnation(algorithm, nullptr, 0, &final_out,
                               &final_bytes, &error))
        << error;
    EXPECT_EQ(final_out, expected_tsv) << "kill every " << k << " posts";

    // The recovered engine's serialized state matches the uninterrupted
    // run's bit for bit.
    auto engine = NewEngine(algorithm);
    DurableSession session(Options(), engine.get());
    RecoveryReport report;
    ASSERT_TRUE(session.Recover(&report, nullptr, &error)) << error;
    EXPECT_EQ(report.next_seq, stream_.size());
    BinaryWriter state;
    engine->SaveState(&state);
    EXPECT_EQ(state.buffer(), expected_state) << "kill every " << k;
  }
}

TEST_F(CrashRecoveryTest, TornWalWriteSweepNeverDiverges) {
  const Algorithm algorithm = Algorithm::kNeighborBin;
  std::string expected_tsv, expected_state;
  Reference(algorithm, &expected_tsv, &expected_state);

  // Measure the total bytes a full durable run appends, then re-run with
  // the byte cursor failing at K for a sweep of K: the incarnation dies
  // on the torn write, recovery (with healthy ops) resumes, and the final
  // output must be byte-identical.
  uint64_t total_bytes = 0;
  {
    std::filesystem::remove_all(dir_);
    FaultFileOps counting(RealFileOps(), FaultPlan{});
    std::string out;
    uint64_t durable_bytes = 0;
    std::string error;
    ASSERT_TRUE(RunIncarnation(algorithm, &counting, 0, &out, &durable_bytes,
                               &error))
        << error;
    total_bytes = counting.bytes_appended();
  }
  ASSERT_GT(total_bytes, 2000u);

  for (uint64_t k = 0; k < total_bytes; k += 137) {
    std::filesystem::remove_all(dir_);
    FaultPlan plan;
    plan.fail_after_bytes = k;
    FaultFileOps faulty(RealFileOps(), plan);
    std::string out;
    uint64_t durable_bytes = 0;
    std::string error;
    if (!RunIncarnation(algorithm, &faulty, 0, &out, &durable_bytes,
                        &error)) {
      CrashOutput(&out, durable_bytes);  // the crash ate the page cache
    }
    // Healthy resume finishes the job.
    std::string final_out = out;
    uint64_t final_bytes = durable_bytes;
    ASSERT_TRUE(RunIncarnation(algorithm, nullptr, 0, &final_out,
                               &final_bytes, &error))
        << "fail at byte " << k << ": " << error;
    EXPECT_EQ(final_out, expected_tsv) << "fail at byte " << k;
  }
}

TEST_F(CrashRecoveryTest, CorruptNewestCheckpointFallsBackToOlder) {
  const Algorithm algorithm = Algorithm::kUniBin;
  std::string expected_tsv, expected_state;
  Reference(algorithm, &expected_tsv, &expected_state);

  // Crash mid-run with at least two checkpoints on disk.
  std::string out;
  uint64_t durable_bytes = 0;
  std::string error;
  ASSERT_TRUE(RunIncarnation(algorithm, nullptr, 80, &out, &durable_bytes,
                             &error))
      << error;
  CrashOutput(&out, durable_bytes);

  // Rot a byte in the middle of the newest checkpoint.
  std::vector<std::string> checkpoints;
  for (const std::string& name : RealFileOps()->List(dir_)) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) checkpoints.push_back(name);
  }
  ASSERT_GE(checkpoints.size(), 2u);
  const std::string newest = dir_ + "/" + checkpoints.back();
  std::string bytes;
  ASSERT_TRUE(RealFileOps()->Read(newest, &bytes));
  bytes[bytes.size() / 2] ^= 0x20;
  auto file = RealFileOps()->Create(newest);
  ASSERT_TRUE(file->Append(bytes));
  ASSERT_TRUE(file->Close());

  // Recovery must fall back to the older checkpoint, replay the WAL gap
  // (which retention deliberately kept), and still converge exactly.
  // The output beyond the older checkpoint's offset is stale; recovery
  // truncates it, so hand the resumed run only the prefix it reports.
  std::string final_out = out;
  uint64_t final_bytes = 0;
  ASSERT_TRUE(RunIncarnation(algorithm, nullptr, 0, &final_out, &final_bytes,
                             &error))
      << error;
  EXPECT_EQ(final_out, expected_tsv);
}

TEST_F(CrashRecoveryTest, IncompatibleCheckpointIsAHardNamedError) {
  // Handcraft a checkpoint claiming a future state format: intact CRC,
  // so this is incompatibility, not rot — recovery must refuse loudly.
  ASSERT_TRUE(RealFileOps()->CreateDir(dir_));
  BinaryWriter payload;
  payload.PutString("FHCKP");
  payload.PutVarint(kStateFormatVersion + 7);
  payload.PutString("firehose 99.1.0");
  payload.PutString("CliqueBin");
  payload.PutVarint(5);
  payload.PutVarint(0);
  payload.PutString("");
  std::string frame;
  AppendFrame(&frame, payload.buffer());
  auto file = RealFileOps()->Create(dir_ + "/" + CheckpointName(5));
  ASSERT_TRUE(file->Append(frame));
  ASSERT_TRUE(file->Close());

  auto engine = NewEngine(Algorithm::kCliqueBin);
  DurableSession session(Options(), engine.get());
  RecoveryReport report;
  std::string error;
  EXPECT_FALSE(session.Recover(&report, nullptr, &error));
  EXPECT_NE(error.find("incompatible"), std::string::npos) << error;
  EXPECT_NE(error.find("firehose 99.1.0"), std::string::npos) << error;
  EXPECT_NE(error.find(BuildInfoString()), std::string::npos) << error;
}

TEST_F(CrashRecoveryTest, AlgorithmMismatchIsAHardNamedError) {
  // Checkpoint with UniBin, then try to resume as CliqueBin.
  std::string out;
  uint64_t durable_bytes = 0;
  std::string error;
  ASSERT_TRUE(RunIncarnation(Algorithm::kUniBin, nullptr, 60, &out,
                             &durable_bytes, &error))
      << error;

  auto engine = NewEngine(Algorithm::kCliqueBin);
  DurableSession session(Options(), engine.get());
  RecoveryReport report;
  EXPECT_FALSE(session.Recover(&report, nullptr, &error));
  EXPECT_NE(error.find("UniBin"), std::string::npos) << error;
  EXPECT_NE(error.find("CliqueBin"), std::string::npos) << error;
}

TEST_F(CrashRecoveryTest, ProcessBeforeRecoverRefuses) {
  auto engine = NewEngine(Algorithm::kUniBin);
  DurableSession session(Options(), engine.get());
  bool accepted = false;
  EXPECT_FALSE(session.Process(stream_.front(), &accepted));
}

TEST_F(CrashRecoveryTest, PostRecordRoundTripsAndRejectsDamage) {
  Post post;
  post.id = 1234;
  post.author = 77;
  post.time_ms = -5;  // signed timestamps survive
  post.simhash = 0xDEADBEEFCAFEF00Dull;
  post.text = "tabs\tand\nnewlines";
  const std::string record = EncodePostRecord(post);
  Post decoded;
  ASSERT_TRUE(DecodePostRecord(record, &decoded));
  EXPECT_EQ(decoded.id, post.id);
  EXPECT_EQ(decoded.author, post.author);
  EXPECT_EQ(decoded.time_ms, post.time_ms);
  EXPECT_EQ(decoded.simhash, post.simhash);
  EXPECT_EQ(decoded.text, post.text);
  for (size_t cut = 0; cut < record.size(); ++cut) {
    EXPECT_FALSE(DecodePostRecord(record.substr(0, cut), &decoded))
        << "truncated at " << cut;
  }
  EXPECT_FALSE(DecodePostRecord(record + "x", &decoded));
}

}  // namespace
}  // namespace dur
}  // namespace firehose
