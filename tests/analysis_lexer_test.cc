// Golden tests for the analysis lexer: the constructs that break
// per-line regex linting — raw strings, spliced comments, char literals
// holding comment openers — must come out as single, correctly-classified
// tokens.

#include "src/analysis/lexer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace firehose {
namespace analysis {
namespace {

std::vector<Token> NonComment(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment) out.push_back(token);
  }
  return out;
}

TEST(LexerTest, ClassifiesBasicTokens) {
  const std::vector<Token> tokens = Lex("int x = 42;\n");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_TRUE(tokens[0].at_line_start);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_FALSE(tokens[1].at_line_start);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPunct);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[4].text, ";");
  for (const Token& token : tokens) EXPECT_EQ(token.line, 1);
}

TEST(LexerTest, TracksLineNumbers) {
  const std::vector<Token> tokens = Lex("a\nb\n\nc\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LexerTest, LineCommentIsOneToken) {
  const std::vector<Token> tokens = Lex("x; // rand() fopen(\ny;\n");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].text, "// rand() fopen(");
  // The banned names live inside the comment token, not as identifiers.
  EXPECT_EQ(tokens[3].text, "y");
  EXPECT_EQ(tokens[3].line, 2);
}

TEST(LexerTest, BlockCommentSpansLines) {
  const std::vector<Token> tokens = Lex("a /* one\ntwo */ b\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, "/* one\ntwo */");
  EXPECT_EQ(tokens[1].line, 1);
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[2].line, 2);
}

TEST(LexerTest, LineSplicedCommentSwallowsNextLine) {
  // The backslash-newline splices the second physical line into the `//`
  // comment — `fopen(x);` must NOT surface as code tokens.
  const std::vector<Token> tokens = Lex("a; // spliced \\\nfopen(x);\nb;\n");
  const std::vector<Token> code = NonComment(tokens);
  ASSERT_EQ(code.size(), 4u);
  EXPECT_EQ(code[0].text, "a");
  EXPECT_EQ(code[2].text, "b");
  EXPECT_EQ(code[2].line, 3);
}

TEST(LexerTest, SplicedIdentifierComparesUnspliced) {
  const std::vector<Token> tokens = Lex("fo\\\no;\n");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[0].line, 1);
}

TEST(LexerTest, StringLiteralHidesCode) {
  const std::vector<Token> tokens = Lex("s = \"rand() // not a comment\";\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "\"rand() // not a comment\"");
}

TEST(LexerTest, StringEscapesDoNotEndLiteral) {
  const std::vector<Token> tokens = Lex(R"(s = "a\"b";)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "\"a\\\"b\"");
}

TEST(LexerTest, CharLiteralWithSlashes) {
  // '/' twice must not open a comment; '"' must not open a string.
  const std::vector<Token> tokens = Lex("a = '/'; b = '/'; c = '\"'; d;\n");
  const std::vector<Token> code = NonComment(tokens);
  ASSERT_EQ(code.size(), 14u);
  EXPECT_EQ(code[2].kind, TokenKind::kCharacter);
  EXPECT_EQ(code[2].text, "'/'");
  EXPECT_EQ(code[10].kind, TokenKind::kCharacter);
  EXPECT_EQ(code[10].text, "'\"'");
  EXPECT_EQ(code[12].text, "d");
}

TEST(LexerTest, RawStringPlain) {
  const std::vector<Token> tokens = Lex("s = R\"(no \\escape \" here)\";\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kRawString);
  EXPECT_EQ(tokens[2].text, "R\"(no \\escape \" here)\"");
}

TEST(LexerTest, RawStringCustomDelimiter) {
  // The `)"` inside must not close the literal — only `)xy"` does.
  const std::vector<Token> tokens = Lex("s = R\"xy(inner )\" still)xy\";\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kRawString);
  EXPECT_EQ(tokens[2].text, "R\"xy(inner )\" still)xy\"");
}

TEST(LexerTest, RawStringKeepsSplices) {
  // Backslash-newline is literal inside a raw string (the standard
  // reverses splicing there); the token must keep both characters.
  const std::vector<Token> tokens = Lex("s = R\"(a\\\nb)\";\nnext;\n");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kRawString);
  EXPECT_NE(tokens[2].text.find("\\\n"), std::string::npos);
  EXPECT_EQ(tokens[4].text, "next");
  EXPECT_EQ(tokens[4].line, 3);
}

TEST(LexerTest, RawStringWithCommentAndDirectiveText) {
  const std::vector<Token> tokens =
      Lex("s = R\"(// #include \"evil.h\" rand())\";\nok;\n");
  const std::vector<Token> code = NonComment(tokens);
  ASSERT_EQ(code.size(), 6u);
  EXPECT_EQ(code[2].kind, TokenKind::kRawString);
  EXPECT_EQ(code[4].text, "ok");
}

TEST(LexerTest, EncodingPrefixes) {
  const std::vector<Token> tokens = Lex("a = u8\"x\"; b = L'y'; c = U\"z\";\n");
  const std::vector<Token> code = NonComment(tokens);
  ASSERT_EQ(code.size(), 12u);
  EXPECT_EQ(code[2].kind, TokenKind::kString);
  EXPECT_EQ(code[2].text, "u8\"x\"");
  EXPECT_EQ(code[6].kind, TokenKind::kCharacter);
  EXPECT_EQ(code[6].text, "L'y'");
  EXPECT_EQ(code[10].kind, TokenKind::kString);
  EXPECT_EQ(code[10].text, "U\"z\"");
}

TEST(LexerTest, HeaderNameAfterInclude) {
  const std::vector<Token> tokens =
      Lex("#include <vector>\n#include \"src/x.h\"\n");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "#");
  EXPECT_TRUE(tokens[0].at_line_start);
  EXPECT_EQ(tokens[2].kind, TokenKind::kHeaderName);
  EXPECT_EQ(tokens[2].text, "<vector>");
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "\"src/x.h\"");
}

TEST(LexerTest, LessThanIsNotHeaderNameOutsideInclude) {
  const std::vector<Token> tokens = Lex("a < b > c;\n");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kPunct);
  EXPECT_EQ(tokens[1].text, "<");
}

TEST(LexerTest, MaximalMunchPunctuation) {
  const std::vector<Token> tokens = Lex("a <<= b; p ->* q; x <=> y; f(...);\n");
  std::vector<std::string> puncts;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kPunct) puncts.push_back(token.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->*"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<=>"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "..."), puncts.end());
}

TEST(LexerTest, PpNumbers) {
  const std::vector<Token> tokens = Lex("x = 1e+3; y = 0x1F; z = 1'000'000;\n");
  std::vector<std::string> numbers;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kNumber) numbers.push_back(token.text);
  }
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(numbers[0], "1e+3");
  EXPECT_EQ(numbers[1], "0x1F");
  EXPECT_EQ(numbers[2], "1'000'000");
}

TEST(LexerTest, UnterminatedConstructsCloseAtEof) {
  // An analyzer keeps going where a compiler stops: none of these crash,
  // and each yields a single token of the right kind.
  EXPECT_EQ(Lex("/* never closed").size(), 1u);
  EXPECT_EQ(Lex("/* never closed")[0].kind, TokenKind::kComment);
  EXPECT_EQ(Lex("R\"(open forever").size(), 1u);
  EXPECT_EQ(Lex("R\"(open forever")[0].kind, TokenKind::kRawString);
  const std::vector<Token> str = Lex("\"open");
  ASSERT_EQ(str.size(), 1u);
  EXPECT_EQ(str[0].kind, TokenKind::kString);
}

TEST(LexerTest, IsIdentIsPunctHelpers) {
  const std::vector<Token> tokens = Lex("foo;\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(IsIdent(tokens[0], "foo"));
  EXPECT_FALSE(IsIdent(tokens[0], "bar"));
  EXPECT_FALSE(IsIdent(tokens[1], ";"));
  EXPECT_TRUE(IsPunct(tokens[1], ";"));
  EXPECT_FALSE(IsPunct(tokens[0], "foo"));
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
