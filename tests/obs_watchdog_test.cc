#include "src/obs/watchdog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/clock.h"

namespace firehose {
namespace obs {
namespace {

constexpr uint64_t kSecond = 1'000'000'000ull;

TEST(WatchdogTest, SlowButProgressingNeverTrips) {
  ManualClock clock(0);
  Watchdog watchdog(/*stall_nanos=*/2 * kSecond, &clock);
  const int task = watchdog.RegisterTask("consumer");
  ASSERT_GE(task, 0);
  watchdog.SetQueueDepth(task, 100);

  // One post every 1.5s: slower than the poll cadence but always moving
  // before the 2s stall budget runs out.
  uint64_t progress = 0;
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceNanos(3 * kSecond / 2);
    watchdog.ReportProgress(task, ++progress);
    EXPECT_EQ(watchdog.Poll(), 0);
  }
  EXPECT_EQ(watchdog.trip_count(), 0u);
}

TEST(WatchdogTest, WedgedConsumerWithQueuedWorkTripsOnce) {
  ManualClock clock(0);
  Watchdog watchdog(2 * kSecond, &clock);
  const int task = watchdog.RegisterTask("consumer");
  std::vector<std::string> trips;
  watchdog.SetTripCallback(
      [&](int id, const char* name, uint64_t progress, int64_t depth) {
        trips.push_back(std::string(name) + ":" + std::to_string(id) + ":" +
                        std::to_string(progress) + ":" +
                        std::to_string(depth));
      });

  watchdog.ReportProgress(task, 5);
  clock.AdvanceNanos(kSecond);
  EXPECT_EQ(watchdog.Poll(), 0);  // absorbs progress=5 as the baseline

  // The producer keeps publishing depth, the consumer stops reporting.
  watchdog.SetQueueDepth(task, 42);
  clock.AdvanceNanos(kSecond);
  EXPECT_EQ(watchdog.Poll(), 0);  // only 1s frozen so far
  clock.AdvanceNanos(kSecond + 1);
  EXPECT_EQ(watchdog.Poll(), 1);  // 2s+ frozen with work queued: trip
  EXPECT_EQ(watchdog.Poll(), 1);  // still stalled...
  EXPECT_EQ(watchdog.trip_count(), 1u);  // ...but the callback fired once
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0], "consumer:0:5:42");
}

TEST(WatchdogTest, IdleTaskNeverTrips) {
  ManualClock clock(0);
  Watchdog watchdog(kSecond, &clock);
  const int task = watchdog.RegisterTask("drained");
  watchdog.SetQueueDepth(task, 0);
  for (int i = 0; i < 100; ++i) {
    clock.AdvanceNanos(10 * kSecond);
    EXPECT_EQ(watchdog.Poll(), 0);
  }
  EXPECT_EQ(watchdog.trip_count(), 0u);
}

TEST(WatchdogTest, ProgressAfterTripReArmsTheAlarm) {
  ManualClock clock(0);
  Watchdog watchdog(kSecond, &clock);
  const int task = watchdog.RegisterTask("consumer");
  watchdog.SetQueueDepth(task, 10);
  clock.AdvanceNanos(kSecond + 1);
  EXPECT_EQ(watchdog.Poll(), 1);
  EXPECT_EQ(watchdog.trip_count(), 1u);

  // It recovers, drains a bit, then wedges again: a second distinct trip.
  watchdog.ReportProgress(task, 1);
  EXPECT_EQ(watchdog.Poll(), 0);
  clock.AdvanceNanos(kSecond + 1);
  EXPECT_EQ(watchdog.Poll(), 1);
  EXPECT_EQ(watchdog.trip_count(), 2u);
}

TEST(WatchdogTest, SnapshotReportsRegisteredSlots) {
  ManualClock clock(0);
  Watchdog watchdog(kSecond, &clock);
  const int a = watchdog.RegisterTask("consumer");
  const int b = watchdog.RegisterTask("shard");
  watchdog.ReportProgress(a, 7);
  watchdog.SetQueueDepth(a, 3);
  watchdog.ReportProgress(b, 9);

  Watchdog::TaskInfo info[Watchdog::kMaxTasks];
  const int written = watchdog.SnapshotTasks(info, Watchdog::kMaxTasks);
  ASSERT_EQ(written, 2);
  EXPECT_STREQ(info[0].name, "consumer");
  EXPECT_EQ(info[0].progress, 7u);
  EXPECT_EQ(info[0].depth, 3);
  EXPECT_FALSE(info[0].tripped);
  EXPECT_STREQ(info[1].name, "shard");
  EXPECT_EQ(info[1].progress, 9u);
}

TEST(WatchdogTest, SnapshotMarksTrippedSlots) {
  ManualClock clock(0);
  Watchdog watchdog(kSecond, &clock);
  const int task = watchdog.RegisterTask("stuck");
  watchdog.SetQueueDepth(task, 1);
  clock.AdvanceNanos(kSecond + 1);
  watchdog.Poll();
  Watchdog::TaskInfo info[1];
  ASSERT_EQ(watchdog.SnapshotTasks(info, 1), 1);
  EXPECT_TRUE(info[0].tripped);
}

TEST(WatchdogTest, RegistrationBeyondCapacityIsRejected) {
  ManualClock clock(0);
  Watchdog watchdog(kSecond, &clock);
  for (int i = 0; i < Watchdog::kMaxTasks; ++i) {
    EXPECT_GE(watchdog.RegisterTask("t"), 0);
  }
  EXPECT_EQ(watchdog.RegisterTask("overflow"), -1);
  // Reports against the rejected id must be safely ignored.
  watchdog.ReportProgress(-1, 1);
  watchdog.SetQueueDepth(-1, 1);
  EXPECT_GE(watchdog.Poll(), 0);
}

TEST(WatchdogTest, BackgroundPollerRunsAndStops) {
  // Real clock, tiny intervals: just proves the poller thread starts,
  // polls, and joins cleanly. Trip logic is covered deterministically
  // above with the ManualClock.
  Watchdog watchdog(1, nullptr);
  const int task = watchdog.RegisterTask("bg");
  watchdog.SetQueueDepth(task, 1);
  watchdog.StartPolling(/*poll_interval_nanos=*/100'000);
  while (watchdog.trip_count() == 0) {
  }
  watchdog.StopPolling();
  EXPECT_GE(watchdog.trip_count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace firehose
