#include "src/gen/text_gen.h"

#include <gtest/gtest.h>

#include "src/simhash/simhash.h"
#include "src/text/tokenize.h"

namespace firehose {
namespace {

TEST(TextGenTest, DeterministicGivenSeed) {
  TextGenerator a(5);
  TextGenerator b(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.MakePost(), b.MakePost());
}

TEST(TextGenTest, PostsAreNonDegenerate) {
  TextGenerator text_gen(11);
  for (int i = 0; i < 200; ++i) {
    const std::string post = text_gen.MakePost();
    EXPECT_FALSE(post.empty());
    EXPECT_FALSE(IsDegeneratePost(post)) << post;
    EXPECT_LT(post.size(), 400u) << post;  // microblog-length
  }
}

TEST(TextGenTest, CorpusIsDiverse) {
  TextGenerator text_gen(13);
  const SimHasher hasher;
  const uint64_t a = hasher.Fingerprint(text_gen.MakePost());
  int distinct = 0;
  for (int i = 0; i < 50; ++i) {
    if (SimHashDistance(a, hasher.Fingerprint(text_gen.MakePost())) > 10) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 40);
}

TEST(TextGenTest, UrlOnlyPerturbationKeepsWordsChangesUrl) {
  TextGenerator text_gen(17);
  // Find a post that contains a URL.
  std::string post;
  for (int i = 0; i < 200; ++i) {
    post = text_gen.MakePost();
    if (post.find("https://t.co/") != std::string::npos) break;
  }
  ASSERT_NE(post.find("https://t.co/"), std::string::npos);
  const std::string variant = text_gen.Perturb(post, PerturbLevel::kUrlOnly);
  EXPECT_NE(variant, post);  // URL re-shortened
  // Every non-URL token is preserved in order.
  const auto tokens_a = Tokenize(post);
  const auto tokens_b = Tokenize(variant);
  ASSERT_EQ(tokens_a.size(), tokens_b.size());
  for (size_t i = 0; i < tokens_a.size(); ++i) {
    if (tokens_a[i].kind != TokenKind::kUrl) {
      EXPECT_EQ(tokens_a[i].text, tokens_b[i].text);
    } else {
      EXPECT_NE(tokens_a[i].text, tokens_b[i].text);
      // Both short URLs expand to the same long URL.
      EXPECT_EQ(text_gen.shortener().Expand(tokens_a[i].text),
                text_gen.shortener().Expand(tokens_b[i].text));
    }
  }
}

TEST(TextGenTest, UrlOnlyPerturbationWithoutUrlIsIdentity) {
  TextGenerator text_gen(19);
  const std::string post = "plain words with no links here";
  EXPECT_EQ(text_gen.Perturb(post, PerturbLevel::kUrlOnly), post);
}

TEST(TextGenTest, MeanDistanceGrowsWithPerturbLevel) {
  // The engine behind Figures 3/4: stronger perturbation means larger
  // normalized-SimHash distance, on average.
  TextGenerator text_gen(23);
  const SimHasher hasher;
  double mean_by_level[6] = {};
  const int trials = 150;
  for (int level = 0; level <= 5; ++level) {
    double sum = 0.0;
    for (int i = 0; i < trials; ++i) {
      const std::string base = text_gen.MakePost();
      const std::string variant =
          text_gen.Perturb(base, static_cast<PerturbLevel>(level));
      sum += SimHashDistance(hasher.Fingerprint(base),
                             hasher.Fingerprint(variant));
    }
    mean_by_level[level] = sum / trials;
  }
  EXPECT_LT(mean_by_level[0], 3.0);            // URL swap barely moves it
  EXPECT_LT(mean_by_level[1], mean_by_level[3]);
  EXPECT_LT(mean_by_level[3], mean_by_level[5]);
  EXPECT_GT(mean_by_level[5], 24.0);           // unrelated ≈ 32
}

TEST(TextGenTest, FormattingPerturbationVanishesUnderNormalization) {
  // Level-1 noise is case/punctuation: normalized fingerprints should stay
  // much closer than raw fingerprints on URL-free posts.
  TextGenerator text_gen(29);
  SimHashOptions raw_options;
  raw_options.normalize = false;
  const SimHasher raw_hasher(raw_options);
  const SimHasher norm_hasher;
  double raw_sum = 0.0;
  double norm_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 300 && count < 100; ++i) {
    const std::string base = text_gen.MakePost();
    if (base.find("https://") != std::string::npos) continue;
    const std::string variant =
        text_gen.Perturb(base, PerturbLevel::kFormatting);
    raw_sum += SimHashDistance(raw_hasher.Fingerprint(base),
                               raw_hasher.Fingerprint(variant));
    norm_sum += SimHashDistance(norm_hasher.Fingerprint(base),
                                norm_hasher.Fingerprint(variant));
    ++count;
  }
  ASSERT_GT(count, 20);
  EXPECT_LT(norm_sum, raw_sum * 0.8);
}

TEST(TextGenTest, UnrelatedLevelIgnoresInput) {
  TextGenerator text_gen(31);
  const std::string variant =
      text_gen.Perturb("some specific input words", PerturbLevel::kUnrelated);
  EXPECT_EQ(variant.find("specific"), std::string::npos);
}

TEST(TextGenTest, RedundancyCutoffConstant) {
  EXPECT_EQ(kMaxRedundantLevel, 3);
  EXPECT_LE(static_cast<int>(PerturbLevel::kTruncation), kMaxRedundantLevel);
  EXPECT_GT(static_cast<int>(PerturbLevel::kReworded), kMaxRedundantLevel);
}

}  // namespace
}  // namespace firehose
