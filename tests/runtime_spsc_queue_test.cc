#include "src/runtime/spsc_queue.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, MinimumCapacityQueueStillTransfers) {
  // capacity 0 and 1 both round to the 2-slot minimum and must behave
  // like any other queue at the full/empty boundary.
  for (const size_t requested : {size_t{0}, size_t{1}}) {
    SpscQueue<int> queue(requested);
    EXPECT_TRUE(queue.TryPush(7));
    EXPECT_TRUE(queue.TryPush(8));
    EXPECT_FALSE(queue.TryPush(9)) << "requested=" << requested;
    int v = 0;
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(queue.TryPush(9));
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, 8);
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, 9);
    EXPECT_FALSE(queue.TryPop(&v));
  }
}

TEST(SpscQueueTest, FullEmptyBoundarySingleThread) {
  SpscQueue<int> queue(4);
  for (int round = 0; round < 3; ++round) {
    // Fill to exactly capacity, confirm the next push is rejected without
    // clobbering the oldest element.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(queue.ApproxSize(), static_cast<size_t>(i));
      EXPECT_TRUE(queue.TryPush(round * 10 + i));
    }
    EXPECT_EQ(queue.ApproxSize(), 4u);
    EXPECT_FALSE(queue.TryPush(999));
    // Drain to exactly empty, confirm the next pop is rejected and the
    // size estimate never underflows.
    int v = -1;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(queue.TryPop(&v));
      EXPECT_EQ(v, round * 10 + i);
    }
    EXPECT_EQ(queue.ApproxSize(), 0u);
    EXPECT_FALSE(queue.TryPop(&v));
    EXPECT_EQ(queue.ApproxSize(), 0u);
  }
}

TEST(SpscQueueTest, IndexArithmeticSurvivesWraparoundPastSizeMax) {
  // Positions are monotonically increasing size_t values that wrap modulo
  // 2^64; `head - tail` must stay correct across the wrap. Start the
  // indices just below SIZE_MAX so every boundary case crosses it.
  SpscQueue<int> queue(4);
  queue.TESTONLY_SetStartIndex(SIZE_MAX - 1);
  EXPECT_EQ(queue.ApproxSize(), 0u);
  int v = -1;
  EXPECT_FALSE(queue.TryPop(&v));

  // Fill while head wraps from SIZE_MAX-1 to 2.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_EQ(queue.ApproxSize(), 4u);
  EXPECT_FALSE(queue.TryPush(4));

  // Drain while tail wraps the same boundary; FIFO order must hold.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(queue.TryPop(&v));
  EXPECT_EQ(queue.ApproxSize(), 0u);

  // Steady-state churn across the wrapped region.
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(queue.TryPush(100 + i));
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, 100 + i);
  }
}

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  int v = 0;
  EXPECT_TRUE(queue.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(queue.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(queue.TryPop(&v));
}

TEST(SpscQueueTest, FullQueueRejectsPush) {
  SpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  int v;
  EXPECT_TRUE(queue.TryPop(&v));
  EXPECT_TRUE(queue.TryPush(3));  // space again
}

TEST(SpscQueueTest, WrapsAroundRepeatedly) {
  SpscQueue<int> queue(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(queue.TryPush(round));
    int v = -1;
    EXPECT_TRUE(queue.TryPop(&v));
    EXPECT_EQ(v, round);
  }
}

TEST(SpscQueueTest, ApproxSizeTracksOccupancy) {
  SpscQueue<int> queue(8);
  EXPECT_EQ(queue.ApproxSize(), 0u);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  EXPECT_EQ(queue.ApproxSize(), 2u);
  int v;
  ASSERT_TRUE(queue.TryPop(&v));
  EXPECT_EQ(queue.ApproxSize(), 1u);
}

TEST(SpscQueueTest, TwoThreadsTransferEverythingInOrder) {
  SpscQueue<int> queue(64);
  constexpr int kCount = 200000;
  std::vector<int> received;
  received.reserve(kCount);

  std::thread producer([&queue] {
    for (int i = 0; i < kCount; ++i) {
      while (!queue.TryPush(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&queue, &received] {
    while (static_cast<int>(received.size()) < kCount) {
      int v;
      if (queue.TryPop(&v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i) << "out of order at " << i;
  }
}

TEST(SpscQueueTest, StructPayload) {
  struct Payload {
    uint64_t a;
    int b;
  };
  SpscQueue<Payload> queue(4);
  EXPECT_TRUE(queue.TryPush({42, -1}));
  Payload out{0, 0};
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.a, 42u);
  EXPECT_EQ(out.b, -1);
}

}  // namespace
}  // namespace firehose
