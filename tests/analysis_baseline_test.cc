// Baseline round-trip and SARIF output tests: the baseline file must
// survive format -> parse -> apply unchanged, and the SARIF log must be
// well-formed JSON with the 2.1.0 structure the CI upload consumes.

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/sarif.h"

namespace firehose {
namespace analysis {
namespace {

const std::vector<Finding> kFindings = {
    {"src/core/a.cc", 10, "raw-new-delete", "raw `new`; use containers", ""},
    {"src/dur/wal.cc", 20, "unchecked-error",
     "result of 'Sync' is silently discarded", ""},
    {"src/util/b.h", 1, "include-guard", "header with \"quotes\"\tand tabs", ""},
};

// --- FormatFinding -----------------------------------------------------------

TEST(FormatFindingTest, MatchesLegacyLintFormat) {
  EXPECT_EQ(FormatFinding(kFindings[0]),
            "src/core/a.cc:10: [raw-new-delete] raw `new`; use containers");
}

// --- baseline round-trip -----------------------------------------------------

TEST(BaselineTest, RoundTripsThroughFormatAndParse) {
  const std::string text = FormatBaseline(kFindings);
  const std::set<std::string> keys = ParseBaseline(text);
  ASSERT_EQ(keys.size(), kFindings.size());
  for (const Finding& finding : kFindings) {
    EXPECT_EQ(keys.count(BaselineKey(finding)), 1u) << BaselineKey(finding);
  }
}

TEST(BaselineTest, KeysOmitLineNumbers) {
  Finding moved = kFindings[0];
  moved.line = 999;  // unrelated edits shift lines; the key must not care
  EXPECT_EQ(BaselineKey(moved), BaselineKey(kFindings[0]));
}

TEST(BaselineTest, ParserSkipsCommentsBlanksAndCrlf) {
  const std::set<std::string> keys = ParseBaseline(
      "# a comment\n"
      "\n"
      "check\tsrc/a.cc\tmessage one\r\n"
      "# another\n"
      "check\tsrc/b.cc\tmessage two\n");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.count("check\tsrc/a.cc\tmessage one"), 1u);
  EXPECT_EQ(keys.count("check\tsrc/b.cc\tmessage two"), 1u);
}

TEST(BaselineTest, ApplyPartitionsFindings) {
  std::set<std::string> baseline = {BaselineKey(kFindings[1])};
  std::vector<Finding> findings = kFindings;
  std::vector<Finding> baselined;
  ApplyBaseline(baseline, &findings, &baselined);
  ASSERT_EQ(findings.size(), 2u);
  ASSERT_EQ(baselined.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/a.cc");
  EXPECT_EQ(findings[1].path, "src/util/b.h");
  EXPECT_EQ(baselined[0].path, "src/dur/wal.cc");
}

TEST(BaselineTest, EmptyBaselineKeepsEverything) {
  std::vector<Finding> findings = kFindings;
  std::vector<Finding> baselined;
  ApplyBaseline({}, &findings, &baselined);
  EXPECT_EQ(findings.size(), kFindings.size());
  EXPECT_TRUE(baselined.empty());
}

// --- stale-entry pruning -----------------------------------------------------

TEST(BaselineTest, StaleKeysAreThoseNoFindingMatches) {
  const std::set<std::string> baseline = {
      BaselineKey(kFindings[0]),
      BaselineKey(kFindings[1]),
      "gone-check\tsrc/deleted.cc\tfinding that was fixed",
  };
  const std::set<std::string> stale = StaleBaselineKeys(baseline, kFindings);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(*stale.begin(), "gone-check\tsrc/deleted.cc\tfinding that was fixed");
}

TEST(BaselineTest, NothingIsStaleWhenEveryKeyStillMatches) {
  std::set<std::string> baseline;
  for (const Finding& finding : kFindings) {
    baseline.insert(BaselineKey(finding));
  }
  EXPECT_TRUE(StaleBaselineKeys(baseline, kFindings).empty());
}

TEST(BaselineTest, EverythingIsStaleAgainstACleanTree) {
  const std::set<std::string> baseline = {BaselineKey(kFindings[0])};
  EXPECT_EQ(StaleBaselineKeys(baseline, {}).size(), 1u);
}

TEST(BaselineTest, FormatKeysRoundTripsThroughParse) {
  // What --prune-baseline writes back must parse to exactly the kept
  // keys, and keep the explanatory header.
  const std::set<std::string> kept = {
      BaselineKey(kFindings[0]),
      BaselineKey(kFindings[2]),
  };
  const std::string text = FormatBaselineKeys(kept);
  EXPECT_EQ(text[0], '#');
  EXPECT_EQ(ParseBaseline(text), kept);
  EXPECT_TRUE(ParseBaseline(FormatBaselineKeys({})).empty());
}

// --- SARIF -------------------------------------------------------------------

// Minimal recursive-descent JSON well-formedness checker. Enough to
// guarantee the CI uploader's parser will not reject the artifact.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped character
      if (text_[pos_] == '\n') return false;  // raw newline is invalid
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') return ++pos_, true;
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SarifTest, OutputIsWellFormedJson) {
  EXPECT_TRUE(JsonChecker(ToSarif(kFindings)).Valid());
  EXPECT_TRUE(JsonChecker(ToSarif({})).Valid());
}

TEST(SarifTest, CarriesSchemaVersionAndDriver) {
  const std::string sarif = ToSarif(kFindings);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"firehose_analyze\""), std::string::npos);
}

TEST(SarifTest, DeclaresOneRulePerRegisteredCheck) {
  const std::string sarif = ToSarif({});
  EXPECT_EQ(CountOccurrences(sarif, "\"id\": "), AllChecks().size());
  for (const CheckInfo& check : AllChecks()) {
    EXPECT_NE(sarif.find("\"id\": \"" + check.name + "\""), std::string::npos)
        << check.name;
  }
}

TEST(SarifTest, EmitsOneResultPerFinding) {
  const std::string sarif = ToSarif(kFindings);
  EXPECT_EQ(CountOccurrences(sarif, "\"ruleId\": "), kFindings.size());
  EXPECT_EQ(CountOccurrences(sarif, "\"physicalLocation\""), kFindings.size());
  EXPECT_NE(sarif.find("\"uri\": \"src/dur/wal.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 20"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(SarifTest, EscapesMessageText) {
  // kFindings[2] holds a quote and a tab; both must arrive escaped.
  const std::string sarif = ToSarif(kFindings);
  EXPECT_NE(sarif.find("header with \\\"quotes\\\"\\tand tabs"),
            std::string::npos);
  EXPECT_TRUE(JsonChecker(sarif).Valid());
}

TEST(SarifTest, ClampsNonPositiveLinesToOne) {
  const std::string sarif =
      ToSarif({{"src/core/a.cc", 0, "layering", "module-level finding", ""}});
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_TRUE(JsonChecker(sarif).Valid());
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
