#include "src/runtime/sharded.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/eval/experiment.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

struct Workbench {
  AuthorGraph graph;
  std::vector<User> users;
  PostStream stream;
};

Workbench MakeWorkbench(uint64_t seed, int num_authors, int num_users,
                        int num_posts) {
  Rng rng(seed);
  Workbench w;
  w.graph = testing_util::RandomAuthorGraph(num_authors, 0.25, rng);
  for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
    std::vector<AuthorId> subs;
    for (AuthorId a = 0; a < static_cast<AuthorId>(num_authors); ++a) {
      if (rng.Bernoulli(0.4)) subs.push_back(a);
    }
    if (subs.empty()) subs.push_back(0);
    w.users.push_back(User{u, subs});
  }
  w.stream = testing_util::RandomStream(num_posts, num_authors, 25, rng);
  return w;
}

std::vector<std::pair<PostId, UserId>> SequentialDeliveries(
    Algorithm algorithm, const DiversityThresholds& t, const Workbench& w) {
  auto engine = MakeSUserEngine(algorithm, t, w.graph, w.users);
  std::vector<std::pair<PostId, UserId>> deliveries;
  RunMultiUser(*engine, w.stream, &deliveries);
  std::sort(deliveries.begin(), deliveries.end());
  return deliveries;
}

class ShardedTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedTest, MatchesSequentialSEngineExactly) {
  const int num_shards = GetParam();
  const Workbench w = MakeWorkbench(91, 14, 8, 500);
  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 400;

  for (Algorithm algorithm : kAllAlgorithms) {
    const auto expected = SequentialDeliveries(algorithm, t, w);
    std::vector<std::pair<PostId, UserId>> sharded;
    const ShardedRunResult result = RunShardedSUser(
        algorithm, t, w.graph, w.users, w.stream, num_shards, &sharded);
    EXPECT_EQ(sharded, expected) << AlgorithmName(algorithm) << " shards="
                                 << num_shards;
    EXPECT_EQ(result.deliveries, expected.size());
    EXPECT_EQ(result.num_shards, std::max(num_shards, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedTest,
                         ::testing::Values(0, 1, 2, 3, 4, 7));

TEST(ShardedTest, CustomThresholdsPreserved) {
  Workbench w = MakeWorkbench(93, 10, 4, 400);
  DiversityThresholds loose;
  loose.lambda_c = -1;  // user 0 gets everything
  w.users[0].custom_thresholds = loose;
  DiversityThresholds t;
  t.lambda_c = 6;
  t.lambda_t_ms = 500;
  const auto expected = SequentialDeliveries(Algorithm::kUniBin, t, w);
  std::vector<std::pair<PostId, UserId>> sharded;
  RunShardedSUser(Algorithm::kUniBin, t, w.graph, w.users, w.stream, 3,
                  &sharded);
  EXPECT_EQ(sharded, expected);
}

TEST(ShardedTest, EmptyStreamAndUsers) {
  const Workbench w = MakeWorkbench(95, 6, 3, 0);
  DiversityThresholds t;
  std::vector<std::pair<PostId, UserId>> deliveries;
  const ShardedRunResult result = RunShardedSUser(
      Algorithm::kUniBin, t, w.graph, w.users, w.stream, 2, &deliveries);
  EXPECT_EQ(result.deliveries, 0u);
  EXPECT_TRUE(deliveries.empty());

  const ShardedRunResult no_users = RunShardedSUser(
      Algorithm::kUniBin, t, w.graph, {}, w.stream, 2, nullptr);
  EXPECT_EQ(no_users.deliveries, 0u);
}

TEST(ShardedTest, ComputeSharedComponentsShape) {
  // Two users with the same subscriptions share every component; a third
  // disjoint user adds its own.
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  const DiversityThresholds t = testing_util::PaperExampleThresholds();
  const std::vector<User> users = {User{0, {0, 1, 2, 3}},
                                   User{1, {0, 1, 2, 3}},
                                   User{2, {0}}};
  const auto components = ComputeSharedComponents(t, graph, users);
  // {0,1,2,3} is one connected component shared by u0+u1; {0} for u2.
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].authors, (std::vector<AuthorId>{0, 1, 2, 3}));
  EXPECT_EQ(components[0].users, (std::vector<UserId>{0, 1}));
  EXPECT_EQ(components[1].authors, (std::vector<AuthorId>{0}));
  EXPECT_EQ(components[1].users, (std::vector<UserId>{2}));
}

}  // namespace
}  // namespace firehose
