// Property / metamorphic tests for PostBin's structure-of-arrays ring
// view: under random push/evict interleavings (driving wraparound and
// growth), the at-most-two contiguous lane segments concatenated must
// equal FromOldest iteration entry for entry, CountOlderThan must agree
// with a linear scan, and Save/Load must preserve the view.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/stream/post_bin.h"
#include "src/util/binary.h"
#include "src/util/random.h"

namespace firehose {
namespace {

bool SameEntry(const BinEntry& a, const BinEntry& b) {
  return a.time_ms == b.time_ms && a.simhash == b.simhash &&
         a.author == b.author && a.post_id == b.post_id;
}

/// Flattens the segment view into one oldest→newest entry list.
std::vector<BinEntry> FlattenSegments(const PostBin& bin) {
  PostBin::LaneSpan segments[2];
  const size_t num_segments = bin.Segments(segments);
  std::vector<BinEntry> entries;
  entries.reserve(bin.size());
  for (size_t s = 0; s < num_segments; ++s) {
    const PostBin::LaneSpan& seg = segments[s];
    for (size_t j = 0; j < seg.size; ++j) {
      entries.push_back(BinEntry{seg.time_ms[j], seg.simhash[j], seg.author[j],
                                 seg.post_id[j]});
    }
  }
  return entries;
}

/// The properties every reachable bin state must satisfy.
void CheckViewInvariants(const PostBin& bin) {
  const std::vector<BinEntry> flat = FlattenSegments(bin);
  ASSERT_EQ(flat.size(), bin.size());

  // Segments concatenated == FromOldest iteration == reversed FromNewest.
  for (size_t i = 0; i < bin.size(); ++i) {
    EXPECT_TRUE(SameEntry(flat[i], bin.FromOldest(i))) << "i=" << i;
    EXPECT_TRUE(SameEntry(flat[i], bin.FromNewest(bin.size() - 1 - i)))
        << "i=" << i;
  }

  // Lanes are time-ordered (the bin's push precondition is preserved).
  for (size_t i = 1; i < flat.size(); ++i) {
    EXPECT_LE(flat[i - 1].time_ms, flat[i].time_ms);
  }

  // CountOlderThan agrees with a linear scan at cutoffs straddling every
  // entry boundary (and beyond both ends).
  std::vector<int64_t> cutoffs = {INT64_MIN, 0, INT64_MAX};
  for (const BinEntry& entry : flat) {
    cutoffs.push_back(entry.time_ms);
    cutoffs.push_back(entry.time_ms + 1);
  }
  for (int64_t cutoff : cutoffs) {
    size_t linear = 0;
    while (linear < flat.size() && flat[linear].time_ms < cutoff) ++linear;
    EXPECT_EQ(bin.CountOlderThan(cutoff), linear) << "cutoff=" << cutoff;
  }
}

TEST(SoaViewPropertyTest, RandomPushEvictInterleavings) {
  Rng rng(20260806);
  for (int round = 0; round < 40; ++round) {
    PostBin bin;
    int64_t now = 0;
    uint64_t next_id = 0;
    uint64_t pushes_before = bin.pushes();
    for (int op = 0; op < 300; ++op) {
      if (rng.Bernoulli(0.7)) {
        now += static_cast<int64_t>(rng.UniformInt(50));
        bin.Push(BinEntry{now, rng.Next(),
                          static_cast<AuthorId>(rng.UniformInt(32)),
                          static_cast<PostId>(next_id++)});
        EXPECT_EQ(bin.pushes(), ++pushes_before);
      } else {
        // Evict a random fraction of the window — sometimes nothing,
        // sometimes everything — to walk the head across the ring.
        const int64_t cutoff = now - static_cast<int64_t>(rng.UniformInt(400));
        const size_t before = bin.size();
        const size_t expected = bin.CountOlderThan(cutoff);
        EXPECT_EQ(bin.EvictOlderThan(cutoff), expected);
        EXPECT_EQ(bin.size(), before - expected);
        EXPECT_EQ(bin.pushes(), pushes_before);  // eviction never decrements
      }
      if (op % 17 == 0) CheckViewInvariants(bin);
    }
    CheckViewInvariants(bin);
  }
}

TEST(SoaViewPropertyTest, WraparoundProducesTwoOrderedSegments) {
  PostBin bin;
  // Fill to capacity 8, evict the front, refill: head > 0 forces a wrap.
  for (int i = 0; i < 8; ++i) {
    bin.Push(BinEntry{i, static_cast<uint64_t>(i), 0, static_cast<PostId>(i)});
  }
  ASSERT_EQ(bin.EvictOlderThan(5), 5u);
  for (int i = 8; i < 12; ++i) {
    bin.Push(BinEntry{i, static_cast<uint64_t>(i), 0, static_cast<PostId>(i)});
  }
  PostBin::LaneSpan segments[2];
  ASSERT_EQ(bin.Segments(segments), 2u);
  EXPECT_EQ(segments[0].size + segments[1].size, bin.size());
  EXPECT_GT(segments[0].size, 0u);
  EXPECT_GT(segments[1].size, 0u);
  // Oldest→newest across the seam.
  EXPECT_LT(segments[0].time_ms[segments[0].size - 1], segments[1].time_ms[0]);
  CheckViewInvariants(bin);
}

TEST(SoaViewPropertyTest, GrowthPreservesViewAndOrder) {
  PostBin bin;
  // Interleave pushes and evictions so growth happens with head_ != 0.
  int64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 3;
    bin.Push(BinEntry{now, static_cast<uint64_t>(i) * 7919, 1,
                      static_cast<PostId>(i)});
    if (i == 50) bin.EvictOlderThan(now - 30);
  }
  CheckViewInvariants(bin);
  EXPECT_EQ(bin.FromNewest(0).post_id, 199u);
}

TEST(SoaViewPropertyTest, SaveLoadPreservesViewAndCapacity) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    PostBin bin;
    int64_t now = 0;
    for (int i = 0; i < 64 + round * 13; ++i) {
      now += static_cast<int64_t>(rng.UniformInt(20));
      bin.Push(BinEntry{now, rng.Next(),
                        static_cast<AuthorId>(rng.UniformInt(16)),
                        static_cast<PostId>(i)});
      if (rng.Bernoulli(0.1)) bin.EvictOlderThan(now - 100);
    }

    BinaryWriter writer;
    bin.Save(&writer);
    PostBin restored;
    BinaryReader reader(writer.buffer());
    ASSERT_TRUE(restored.Load(reader));
    ASSERT_TRUE(reader.AtEnd());

    ASSERT_EQ(restored.size(), bin.size());
    EXPECT_EQ(restored.ApproxBytes(), bin.ApproxBytes());
    const std::vector<BinEntry> original = FlattenSegments(bin);
    const std::vector<BinEntry> loaded = FlattenSegments(restored);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_TRUE(SameEntry(loaded[i], original[i])) << "i=" << i;
    }
    // Load resets the push sequence to the live size: external index
    // accelerators keyed by sequence are invalidated wholesale.
    EXPECT_EQ(restored.pushes(), restored.size());
    CheckViewInvariants(restored);
  }
}

TEST(SoaViewPropertyTest, EmptyBinHasNoSegments) {
  PostBin bin;
  PostBin::LaneSpan segments[2];
  EXPECT_EQ(bin.Segments(segments), 0u);
  EXPECT_EQ(bin.CountOlderThan(123), 0u);
  bin.Push(BinEntry{10, 1, 2, 3});
  ASSERT_EQ(bin.EvictOlderThan(11), 1u);
  EXPECT_EQ(bin.Segments(segments), 0u);  // emptied after wrap state
}

}  // namespace
}  // namespace firehose
