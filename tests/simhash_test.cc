#include "src/simhash/simhash.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/gen/text_gen.h"
#include "src/util/random.h"

namespace firehose {
namespace {

TEST(SimHashTest, DeterministicFingerprints) {
  const SimHasher hasher;
  EXPECT_EQ(hasher.Fingerprint("hello world news today"),
            hasher.Fingerprint("hello world news today"));
}

TEST(SimHashTest, IdenticalTextsAtDistanceZero) {
  const SimHasher hasher;
  const uint64_t a = hasher.Fingerprint("markets rally on fed decision");
  EXPECT_EQ(SimHashDistance(a, a), 0);
}

TEST(SimHashTest, EmptyTextMapsToZero) {
  const SimHasher hasher;
  EXPECT_EQ(hasher.Fingerprint(""), 0u);
  EXPECT_EQ(hasher.Fingerprint("   "), 0u);
}

TEST(SimHashTest, NormalizationMakesCaseIrrelevant) {
  const SimHasher hasher;  // normalize = true by default
  EXPECT_EQ(hasher.Fingerprint("Breaking News About Markets"),
            hasher.Fingerprint("breaking news about markets"));
}

TEST(SimHashTest, NormalizationMakesPunctuationIrrelevant) {
  const SimHasher hasher;
  EXPECT_EQ(hasher.Fingerprint("breaking news, about markets!"),
            hasher.Fingerprint("breaking news about markets"));
}

TEST(SimHashTest, RawModeIsCaseSensitive) {
  SimHashOptions options;
  options.normalize = false;
  const SimHasher hasher(options);
  EXPECT_NE(hasher.Fingerprint("Breaking News About Markets Today Friends"),
            hasher.Fingerprint("breaking news about markets today friends"));
}

TEST(SimHashTest, NearDuplicatesAreClose) {
  const SimHasher hasher;
  const std::string base =
      "over 300 people missing after south korean ferry sinks reuters story";
  const std::string variant =
      "over 300 people missing after south korean ferry sinks reuters";
  EXPECT_LE(SimHashDistance(hasher.Fingerprint(base),
                            hasher.Fingerprint(variant)),
            18);
}

TEST(SimHashTest, UnrelatedTextsAreFar) {
  const SimHasher hasher;
  const uint64_t a = hasher.Fingerprint(
      "alibaba growth accelerates ipo filing expected next week technology");
  const uint64_t b = hasher.Fingerprint(
      "your desire for success should be greater than your fear of failure");
  EXPECT_GT(SimHashDistance(a, b), 18);
}

TEST(SimHashTest, RandomPairsConcentrateAroundThirtyTwo) {
  // Figure 2's premise: fingerprints of unrelated posts behave like
  // independent random bit vectors, so distances center on 32.
  TextGenerator text_gen(7);
  const SimHasher hasher;
  std::vector<uint64_t> prints;
  for (int i = 0; i < 400; ++i) {
    prints.push_back(hasher.Fingerprint(text_gen.MakePost()));
  }
  double sum = 0.0;
  int count = 0;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = prints[rng.UniformInt(prints.size())];
    const uint64_t b = prints[rng.UniformInt(prints.size())];
    if (a == b) continue;
    sum += SimHashDistance(a, b);
    ++count;
  }
  EXPECT_NEAR(sum / count, 32.0, 4.0);
}

TEST(SimHashTest, ZeroMentionWeightIgnoresMentions) {
  SimHashOptions options;
  options.mention_weight = 0;
  const SimHasher hasher(options);
  EXPECT_EQ(hasher.Fingerprint("big news about rates @cnn"),
            hasher.Fingerprint("big news about rates @fox"));
}

TEST(SimHashTest, BoostedHashtagWeightDominates) {
  SimHashOptions boosted;
  boosted.hashtag_weight = 100;
  const SimHasher heavy(boosted);
  const SimHasher plain;
  // With overwhelming hashtag weight, two posts sharing only the hashtag
  // should be closer under `heavy` than under `plain`.
  const std::string a = "markets fall sharply on weak data #breaking";
  const std::string b = "completely different words about sports #breaking";
  const int d_heavy =
      SimHashDistance(heavy.Fingerprint(a), heavy.Fingerprint(b));
  const int d_plain =
      SimHashDistance(plain.Fingerprint(a), plain.Fingerprint(b));
  EXPECT_LT(d_heavy, d_plain);
}

TEST(SimHashTest, AllWeightsZeroYieldsZeroFingerprint) {
  SimHashOptions options;
  options.word_weight = 0;
  options.hashtag_weight = 0;
  options.mention_weight = 0;
  options.url_weight = 0;
  options.number_weight = 0;
  const SimHasher hasher(options);
  EXPECT_EQ(hasher.Fingerprint("anything at all #tag @user 42"), 0u);
}

TEST(SimHashTest, DistanceBoundedBySixtyFour) {
  TextGenerator text_gen(13);
  const SimHasher hasher;
  for (int i = 0; i < 100; ++i) {
    const int d = SimHashDistance(hasher.Fingerprint(text_gen.MakePost()),
                                  hasher.Fingerprint(text_gen.MakePost()));
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 64);
  }
}

}  // namespace
}  // namespace firehose
