#include "src/obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/clock.h"

namespace firehose {
namespace obs {
namespace {

/// Captures every emitted line; installed/removed per test.
class CapturedLog {
 public:
  CapturedLog() {
    SetLogSink(&CapturedLog::Sink, this);
    SetLogMinLevel(LogLevel::kDebug);
  }
  ~CapturedLog() {
    SetLogSink(nullptr, nullptr);
    SetLogClock(nullptr);
    SetLogMinLevel(LogLevel::kInfo);
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  static void Sink(void* ctx, std::string_view line) {
    static_cast<CapturedLog*>(ctx)->lines_.emplace_back(line);
  }
  std::vector<std::string> lines_;
};

TEST(LogEventTest, FormatsLevelMessageAndPairs) {
  CapturedLog log;
  ManualClock clock(1234);
  SetLogClock(&clock);
  FIREHOSE_LOG(kWarn, "wal torn tail")
      .Kv("segment", static_cast<uint64_t>(7))
      .Kv("offset", 4096)
      .Kv("torn", true);
  ASSERT_EQ(log.lines().size(), 1u);
  EXPECT_EQ(log.lines()[0],
            "ts=1234 level=warn msg=\"wal torn tail\" segment=7 offset=4096 "
            "torn=true");
}

TEST(LogEventTest, QuotesAndEscapesHostileValues) {
  CapturedLog log;
  ManualClock clock(1);
  SetLogClock(&clock);
  FIREHOSE_LOG(kInfo, "x")
      .Kv("path", "/tmp/a b")
      .Kv("quote", "say \"hi\"")
      .Kv("slash", "a\\b")
      .Kv("newline", "a\nb")
      .Kv("equals", "k=v")
      .Kv("empty", "");
  ASSERT_EQ(log.lines().size(), 1u);
  const std::string& line = log.lines()[0];
  EXPECT_NE(line.find("path=\"/tmp/a b\""), std::string::npos);
  EXPECT_NE(line.find("quote=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(line.find("slash=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(line.find("newline=\"a\\nb\""), std::string::npos);
  EXPECT_NE(line.find("equals=\"k=v\""), std::string::npos);
  EXPECT_NE(line.find("empty=\"\""), std::string::npos);
  // Escaped, so the line itself never spans two lines.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogEventTest, SignedAndFloatValues) {
  CapturedLog log;
  ManualClock clock(1);
  SetLogClock(&clock);
  FIREHOSE_LOG(kInfo, "nums")
      .Kv("neg", -42)
      .Kv("big", 1ull << 40)
      .Kv("ratio", 0.25);
  ASSERT_EQ(log.lines().size(), 1u);
  const std::string& line = log.lines()[0];
  EXPECT_NE(line.find("neg=-42"), std::string::npos);
  EXPECT_NE(line.find("big=1099511627776"), std::string::npos);
  EXPECT_NE(line.find("ratio=0.25"), std::string::npos);
}

TEST(LogLevelTest, MinLevelDropsBelow) {
  CapturedLog log;
  SetLogMinLevel(LogLevel::kWarn);
  FIREHOSE_LOG(kDebug, "dropped debug");
  FIREHOSE_LOG(kInfo, "dropped info");
  FIREHOSE_LOG(kWarn, "kept warn");
  FIREHOSE_LOG(kError, "kept error");
  ASSERT_EQ(log.lines().size(), 2u);
  EXPECT_NE(log.lines()[0].find("kept warn"), std::string::npos);
  EXPECT_NE(log.lines()[1].find("kept error"), std::string::npos);
}

TEST(LogSiteTest, AdmitsBurstThenSuppresses) {
  // 10/s with burst 3 from idle: 3 admitted back-to-back, the rest of
  // the same instant suppressed.
  LogSite site(10.0, 3);
  EXPECT_EQ(site.Admit(0), 0);
  EXPECT_EQ(site.Admit(0), 0);
  EXPECT_EQ(site.Admit(0), 0);
  EXPECT_EQ(site.Admit(0), -1);
  EXPECT_EQ(site.Admit(0), -1);
  EXPECT_EQ(site.suppressed_total(), 2u);
}

TEST(LogSiteTest, RefillsOverTimeAndReportsSuppressedCount) {
  LogSite site(10.0, 1);  // one admission per 100ms, no burst headroom
  EXPECT_EQ(site.Admit(0), 0);
  EXPECT_EQ(site.Admit(1'000'000), -1);
  EXPECT_EQ(site.Admit(2'000'000), -1);
  // 100ms later the bucket refilled; the admitted call reports how many
  // lines were dropped since the last admission.
  EXPECT_EQ(site.Admit(100'000'000), 2);
  // The counter reset after being reported.
  EXPECT_EQ(site.Admit(200'000'000), 0);
}

TEST(LogSiteTest, UnlimitedSiteAlwaysAdmits) {
  LogSite site(0.0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(site.Admit(0), 0);
}

TEST(LogRateLimitTest, SuppressedCountSurfacesOnNextAdmittedLine) {
  CapturedLog log;
  ManualClock clock(0);
  SetLogClock(&clock);
  // The macro's built-in site is 50/s burst 10, and each expansion owns
  // its own site — so the whole scenario must run through ONE expansion:
  // 20 calls at t=0 (10 land, 10 suppressed), then one more a second
  // later once the bucket refilled.
  for (int i = 0; i < 21; ++i) {
    if (i == 20) {
      EXPECT_EQ(log.lines().size(), 10u);
      clock.AdvanceNanos(1'000'000'000);
    }
    FIREHOSE_LOG(kInfo, "flood");
  }
  ASSERT_EQ(log.lines().size(), 11u);
  // The refilled line carries the count of what was dropped meanwhile.
  EXPECT_NE(log.lines()[10].find("suppressed=10"), std::string::npos);
}

TEST(LogRateLimitTest, SuppressedStatementSkipsArgumentEvaluation) {
  CapturedLog log;
  ManualClock clock(0);
  SetLogClock(&clock);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  for (int i = 0; i < 20; ++i) {
    FIREHOSE_LOG(kInfo, "flood2").Kv("cost", expensive());
  }
  // Only the 10 admitted lines paid for their arguments.
  EXPECT_EQ(log.lines().size(), 10u);
  EXPECT_EQ(evaluations, 10);
}

}  // namespace
}  // namespace obs
}  // namespace firehose
