// Write-ahead log tests: append/replay round trips, segment rotation and
// retention, sync-policy fsync accounting, and — via the fault-injecting
// FileOps — exhaustive torn-write and bit-rot sweeps proving that
// recovery always yields a clean prefix of the logged records and never
// fails hard on damage (only on genuinely incompatible builds).

#include "src/dur/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/dur/fault.h"
#include "src/dur/framing.h"
#include "src/util/binary.h"
#include "src/util/build_info.h"

namespace firehose {
namespace dur {
namespace {

class DurWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string("dur_wal_test_tmp_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  WalOptions Options(FileOps* ops = nullptr) {
    WalOptions options;
    options.dir = dir_;
    options.ops = ops;
    return options;
  }

  /// Appends `count` records "record-<seq>" starting from `first`.
  void FillWal(const WalOptions& options, uint64_t first, int count) {
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(first));
    for (int i = 0; i < count; ++i) {
      uint64_t seq = 0;
      ASSERT_TRUE(writer.Append(Payload(first + i), &seq));
      EXPECT_EQ(seq, first + static_cast<uint64_t>(i));
    }
    ASSERT_TRUE(writer.Close());
  }

  static std::string Payload(uint64_t seq) {
    return "record-" + std::to_string(seq);
  }

  std::string dir_;
};

TEST_F(DurWalTest, MissingDirectoryReadsAsEmpty) {
  const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/false);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.next_seq, 0u);
  EXPECT_FALSE(result.corruption_detected);
}

TEST_F(DurWalTest, AppendReadRoundTrip) {
  FillWal(Options(), 0, 25);
  const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/false);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.records.size(), 25u);
  for (uint64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(result.records[i].seq, i);
    EXPECT_EQ(result.records[i].payload, Payload(i));
  }
  EXPECT_EQ(result.next_seq, 25u);
  EXPECT_EQ(result.truncated_bytes, 0u);
}

TEST_F(DurWalTest, ReplayFromCheckpointSkipsPrefix) {
  FillWal(Options(), 0, 20);
  const WalReadResult result = ReadWal(Options(), 12, /*truncate_tail=*/false);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.records.size(), 8u);
  EXPECT_EQ(result.records.front().seq, 12u);
  EXPECT_EQ(result.next_seq, 20u);
}

TEST_F(DurWalTest, RotationSpansSegmentsTransparently) {
  WalOptions options = Options();
  options.segment_bytes = 64;  // a few records per segment
  FillWal(options, 0, 40);
  size_t segments = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_)) {
    ++segments;
  }
  EXPECT_GT(segments, 3u);
  const WalReadResult result = ReadWal(options, 0, /*truncate_tail=*/false);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.records.size(), 40u);
  for (uint64_t i = 0; i < 40; ++i) EXPECT_EQ(result.records[i].seq, i);
}

TEST_F(DurWalTest, PruneDropsSegmentsBehindCheckpoint) {
  WalOptions options = Options();
  options.segment_bytes = 64;
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(0));
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(writer.Append(Payload(i)));
  ASSERT_TRUE(writer.Sync());  // flush the open tail so ReadWal sees it
  writer.PruneSegmentsBelow(30);
  // Replay from the checkpoint still works; pruned history is gone but
  // was redundant by definition.
  const WalReadResult result = ReadWal(options, 30, /*truncate_tail=*/false);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.next_seq, 40u);
  ASSERT_FALSE(result.records.empty());
  EXPECT_EQ(result.records.front().seq, 30u);
  ASSERT_TRUE(writer.Close());
}

TEST_F(DurWalTest, ResumeOpensFreshSegmentAndChains) {
  FillWal(Options(), 0, 10);
  // A recovered process resumes at seq 10 in a new segment.
  FillWal(Options(), 10, 5);
  const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/false);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.records.size(), 15u);
  EXPECT_EQ(result.records.back().seq, 14u);
}

TEST_F(DurWalTest, SyncPolicyControlsFsyncCadence) {
  struct Case {
    const char* spec;
    uint64_t expected_syncs;
  };
  for (const Case& c : {Case{"always", 12}, Case{"every=4", 3},
                        Case{"none", 0}}) {
    std::filesystem::remove_all(dir_);
    FaultFileOps ops(RealFileOps(), FaultPlan{});
    WalOptions options = Options(&ops);
    auto policy = MakeSyncPolicy(c.spec);
    ASSERT_NE(policy, nullptr) << c.spec;
    options.sync = policy.get();
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(0));
    for (int i = 0; i < 12; ++i) ASSERT_TRUE(writer.Append(Payload(i)));
    EXPECT_EQ(ops.syncs(), c.expected_syncs) << c.spec;
    ASSERT_TRUE(writer.Close());
  }
}

TEST_F(DurWalTest, MakeSyncPolicyRejectsBadSpecs) {
  EXPECT_NE(MakeSyncPolicy("none"), nullptr);
  EXPECT_NE(MakeSyncPolicy("always"), nullptr);
  EXPECT_NE(MakeSyncPolicy("every=7"), nullptr);
  EXPECT_EQ(MakeSyncPolicy("every=0"), nullptr);
  EXPECT_EQ(MakeSyncPolicy("every="), nullptr);
  EXPECT_EQ(MakeSyncPolicy("every=3x"), nullptr);
  EXPECT_EQ(MakeSyncPolicy("sometimes"), nullptr);
  EXPECT_EQ(MakeSyncPolicy(""), nullptr);
}

TEST_F(DurWalTest, TornWriteAtEveryByteLeavesReplayableCleanPrefix) {
  // Reference: what an undamaged log replays.
  FillWal(Options(), 0, 12);
  const WalReadResult full = ReadWal(Options(), 0, /*truncate_tail=*/false);
  ASSERT_TRUE(full.ok);
  const std::string segment = dir_ + "/" + WalSegmentName(0);
  std::string bytes;
  ASSERT_TRUE(RealFileOps()->Read(segment, &bytes));

  // Re-write the same log through FaultFileOps failing at byte K, for
  // every K: the writer reports the failure, and recovery replays some
  // clean prefix of the records — never garbage, never a crash.
  for (uint64_t k = 0; k < bytes.size(); ++k) {
    std::filesystem::remove_all(dir_);
    FaultPlan plan;
    plan.fail_after_bytes = k;
    FaultFileOps ops(RealFileOps(), plan);
    WalOptions options = Options(&ops);
    WalWriter writer(options);
    bool failed = !writer.Open(0);
    for (int i = 0; !failed && i < 12; ++i) {
      failed = !writer.Append(Payload(i));
    }
    EXPECT_TRUE(failed) << "fail_after_bytes=" << k;
    (void)writer.Close();  // the injected fault makes Close fail by design

    const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/true);
    ASSERT_TRUE(result.ok) << "fail_after_bytes=" << k;
    ASSERT_LE(result.records.size(), full.records.size());
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i].seq, full.records[i].seq);
      EXPECT_EQ(result.records[i].payload, full.records[i].payload);
    }
    EXPECT_EQ(result.next_seq, result.records.size());

    // After tail truncation the log must be clean: a second read agrees
    // and reports no damage, and a resumed writer can extend the chain.
    const WalReadResult again = ReadWal(Options(), 0, /*truncate_tail=*/false);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.records.size(), result.records.size());
    EXPECT_FALSE(again.corruption_detected) << "fail_after_bytes=" << k;
    FillWal(Options(), result.next_seq, 3);
    const WalReadResult extended =
        ReadWal(Options(), 0, /*truncate_tail=*/false);
    ASSERT_TRUE(extended.ok);
    EXPECT_EQ(extended.records.size(), result.records.size() + 3);
  }
}

TEST_F(DurWalTest, DroppedTailIsInvisibleAfterRecovery) {
  // Model stdio-buffered bytes that never reached the disk: the writer
  // believes every append succeeded, but everything past the drop point
  // vanishes. Recovery replays the durable prefix.
  const uint64_t drop_at = 200;
  FaultPlan plan;
  plan.drop_after_bytes = drop_at;
  FaultFileOps ops(RealFileOps(), plan);
  WalOptions options = Options(&ops);
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(0));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(writer.Append(Payload(i)));  // the lie
  }
  ASSERT_TRUE(writer.Close());

  const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/true);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(result.records.size(), 30u);
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].payload, Payload(i));
  }
}

TEST_F(DurWalTest, BitFlipAtEveryByteNeverReplaysGarbage) {
  FillWal(Options(), 0, 10);
  const std::string segment = dir_ + "/" + WalSegmentName(0);
  std::string pristine;
  ASSERT_TRUE(RealFileOps()->Read(segment, &pristine));
  const WalReadResult full = ReadWal(Options(), 0, /*truncate_tail=*/false);
  ASSERT_TRUE(full.ok);

  for (size_t at = 0; at < pristine.size(); ++at) {
    std::string damaged = pristine;
    damaged[at] ^= static_cast<char>(1 << (at % 8));
    auto file = RealFileOps()->Create(segment);
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(file->Append(damaged));
    ASSERT_TRUE(file->Close());

    const WalReadResult result =
        ReadWal(Options(), 0, /*truncate_tail=*/false);
    ASSERT_TRUE(result.ok) << "flip at byte " << at;
    // Whatever survives must be a clean prefix of the true records.
    ASSERT_LE(result.records.size(), full.records.size());
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i].payload, full.records[i].payload)
          << "flip at byte " << at;
    }
    EXPECT_LT(result.records.size(), full.records.size())
        << "flip at byte " << at << " went undetected";
  }
}

TEST_F(DurWalTest, SequenceGapOrphansLaterSegments) {
  WalOptions options = Options();
  options.segment_bytes = 64;
  FillWal(options, 0, 40);
  // Destroy a middle segment: the records after the hole have no valid
  // predecessors and must not be replayed.
  std::vector<std::string> names = RealFileOps()->List(dir_);
  ASSERT_GT(names.size(), 2u);
  ASSERT_TRUE(RealFileOps()->Remove(dir_ + "/" + names[1]));

  const WalReadResult result = ReadWal(options, 0, /*truncate_tail=*/true);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.corruption_detected);
  EXPECT_LT(result.records.size(), 40u);
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].seq, i);
  }
  // Orphans were deleted: what remains replays clean.
  const WalReadResult again = ReadWal(options, 0, /*truncate_tail=*/false);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.records.size(), result.records.size());
  EXPECT_FALSE(again.corruption_detected);
}

TEST_F(DurWalTest, IncompatibleBuildIsAHardErrorNamingTheWriter) {
  // Handcraft a segment whose header claims a future state format. The
  // checksum is valid, so this is not rot — recovery must refuse loudly
  // rather than silently discard data.
  ASSERT_TRUE(RealFileOps()->CreateDir(dir_));
  BinaryWriter header;
  header.PutString("FHWAL");
  header.PutVarint(kStateFormatVersion + 1);
  header.PutString("firehose 99.0.0");
  header.PutVarint(0);
  std::string frame;
  AppendFrame(&frame, header.buffer());
  auto file = RealFileOps()->Create(dir_ + "/" + WalSegmentName(0));
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(file->Append(frame));
  ASSERT_TRUE(file->Close());

  const WalReadResult result = ReadWal(Options(), 0, /*truncate_tail=*/true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("incompatible"), std::string::npos);
  EXPECT_NE(result.error.find("firehose 99.0.0"), std::string::npos);
  EXPECT_NE(result.error.find(BuildInfoString()), std::string::npos);
}

TEST_F(DurWalTest, FailedSyncSurfacesThroughAppend) {
  FaultPlan plan;
  plan.fail_sync = true;
  FaultFileOps ops(RealFileOps(), plan);
  WalOptions options = Options(&ops);
  auto policy = MakeSyncPolicy("always");
  options.sync = policy.get();
  WalWriter writer(options);
  // Open itself SyncDirs, which fail_sync also poisons.
  EXPECT_FALSE(writer.Open(0));
}

}  // namespace
}  // namespace dur
}  // namespace firehose
