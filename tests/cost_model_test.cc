#include "src/core/cost_model.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

CostModelParams PaperishParams() {
  // Roughly the paper's λa = 0.7 topology: d = 113.7, c = 29, s = 20 over
  // m = 20,150 authors, with n posts per 30-minute window.
  CostModelParams p;
  p.r = 0.9;
  p.n = 4400;
  p.m = 20150;
  p.d = 113.7;
  p.c = 29;
  p.s = 20;
  return p;
}

TEST(CostModelTest, UniBinFormulas) {
  const CostModelParams p = PaperishParams();
  const CostPrediction pred = PredictCost(Algorithm::kUniBin, p);
  EXPECT_DOUBLE_EQ(pred.ram_posts, 0.9 * 4400);
  EXPECT_DOUBLE_EQ(pred.comparisons, 0.9 * 4400 * 4400);
  EXPECT_DOUBLE_EQ(pred.insertions, 0.9 * 4400);
}

TEST(CostModelTest, NeighborBinFormulas) {
  const CostModelParams p = PaperishParams();
  const CostPrediction pred = PredictCost(Algorithm::kNeighborBin, p);
  EXPECT_DOUBLE_EQ(pred.ram_posts, (113.7 + 1) * 0.9 * 4400);
  EXPECT_DOUBLE_EQ(pred.comparisons, (113.7 + 1) / 20150 * 0.9 * 4400 * 4400);
  EXPECT_DOUBLE_EQ(pred.insertions, (113.7 + 1) * 0.9 * 4400);
}

TEST(CostModelTest, CliqueBinFormulas) {
  const CostModelParams p = PaperishParams();
  const CostPrediction pred = PredictCost(Algorithm::kCliqueBin, p);
  EXPECT_DOUBLE_EQ(pred.ram_posts, 29 * 0.9 * 4400);
  EXPECT_DOUBLE_EQ(pred.comparisons, 20.0 * 29 / 20150 * 0.9 * 4400 * 4400);
  EXPECT_DOUBLE_EQ(pred.insertions, 29 * 0.9 * 4400);
}

TEST(CostModelTest, ExpectedOrderingUnderSparseGraph) {
  // Table 3's qualitative ordering: UniBin most comparisons / least RAM,
  // NeighborBin fewest comparisons / most RAM, CliqueBin in between.
  const CostModelParams p = PaperishParams();
  const CostPrediction uni = PredictCost(Algorithm::kUniBin, p);
  const CostPrediction nbr = PredictCost(Algorithm::kNeighborBin, p);
  const CostPrediction clq = PredictCost(Algorithm::kCliqueBin, p);
  EXPECT_GT(uni.comparisons, clq.comparisons);
  EXPECT_GT(clq.comparisons, nbr.comparisons);
  EXPECT_LT(uni.ram_posts, clq.ram_posts);
  EXPECT_LT(clq.ram_posts, nbr.ram_posts);
  EXPECT_LT(uni.insertions, clq.insertions);
  EXPECT_LT(clq.insertions, nbr.insertions);
}

TEST(CostModelTest, ZeroAuthorsAvoidsDivisionByZero) {
  CostModelParams p;
  p.m = 0;
  p.n = 100;
  EXPECT_DOUBLE_EQ(PredictCost(Algorithm::kNeighborBin, p).comparisons, 0.0);
  EXPECT_DOUBLE_EQ(PredictCost(Algorithm::kCliqueBin, p).comparisons, 0.0);
}

TEST(CostModelTest, CliqueIdentity) {
  // With disjoint cliques (q = 1), c cliques of size s per author give
  // each author c*(s-1) neighbors: residual zero when d matches.
  CostModelParams p;
  p.c = 2;
  p.s = 5;
  p.d = 8;
  EXPECT_DOUBLE_EQ(CliqueIdentityResidual(p, 1.0), 0.0);
  // Overlapping cliques (q < 1) reduce the effective neighbor count.
  EXPECT_LT(CliqueIdentityResidual(p, 0.5), 0.0);
}

}  // namespace
}  // namespace firehose
