#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

struct CoverageCase {
  Algorithm algorithm;
  uint64_t seed;
  int lambda_c;
  int64_t lambda_t_ms;
  double edge_prob;
};

class CoveragePropertyTest : public ::testing::TestWithParam<CoverageCase> {};

// The defining guarantee of Problem 1: every stream post is covered by at
// least one post of the diversified sub-stream Z — in all three
// dimensions simultaneously. Verified against Z by brute force.
TEST_P(CoveragePropertyTest, EveryInputPostIsCovered) {
  const CoverageCase c = GetParam();
  Rng rng(c.seed);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(20, c.edge_prob, rng);
  const PostStream stream = testing_util::RandomStream(400, 20, 50, rng);

  DiversityThresholds t;
  t.lambda_c = c.lambda_c;
  t.lambda_t_ms = c.lambda_t_ms;
  auto diversifier = MakeDiversifier(c.algorithm, t, &graph);

  std::vector<const Post*> z;
  for (const Post& post : stream) {
    if (diversifier->Offer(post)) z.push_back(&post);
  }

  for (const Post& post : stream) {
    bool covered = false;
    for (const Post* zp : z) {
      if (std::abs(post.time_ms - zp->time_ms) > t.lambda_t_ms) continue;
      if (HammingDistance64(post.simhash, zp->simhash) > t.lambda_c) continue;
      if (zp->author != post.author &&
          !graph.IsNeighbor(post.author, zp->author)) {
        continue;
      }
      covered = true;
      break;
    }
    EXPECT_TRUE(covered) << "post " << post.id << " uncovered under "
                         << AlgorithmName(c.algorithm);
  }
}

// Z is online-maximal: no Z post is covered by an *earlier* Z post (it
// would have been pruned at arrival otherwise).
TEST_P(CoveragePropertyTest, OutputIsOnlineMaximal) {
  const CoverageCase c = GetParam();
  Rng rng(c.seed ^ 0xBEEF);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(20, c.edge_prob, rng);
  const PostStream stream = testing_util::RandomStream(400, 20, 50, rng);

  DiversityThresholds t;
  t.lambda_c = c.lambda_c;
  t.lambda_t_ms = c.lambda_t_ms;
  auto diversifier = MakeDiversifier(c.algorithm, t, &graph);

  std::vector<const Post*> z;
  for (const Post& post : stream) {
    if (diversifier->Offer(post)) z.push_back(&post);
  }
  for (size_t i = 0; i < z.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      const bool covers =
          z[i]->time_ms - z[j]->time_ms <= t.lambda_t_ms &&
          HammingDistance64(z[i]->simhash, z[j]->simhash) <= t.lambda_c &&
          (z[i]->author == z[j]->author ||
           graph.IsNeighbor(z[i]->author, z[j]->author));
      EXPECT_FALSE(covers) << "Z post " << z[i]->id
                           << " was already covered by Z post " << z[j]->id;
    }
  }
}

std::vector<CoverageCase> MakeCases() {
  std::vector<CoverageCase> cases;
  for (Algorithm algorithm : kAllAlgorithms) {
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      for (int lambda_c : {0, 3, 18}) {
        cases.push_back(CoverageCase{algorithm, seed, lambda_c, 2000, 0.2});
        cases.push_back(CoverageCase{algorithm, seed, lambda_c, 200, 0.5});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoveragePropertyTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<CoverageCase>& info) {
      const CoverageCase& c = info.param;
      return std::string(AlgorithmName(c.algorithm)) + "_s" +
             std::to_string(c.seed) + "_c" + std::to_string(c.lambda_c) +
             "_t" + std::to_string(c.lambda_t_ms) + "_e" +
             std::to_string(static_cast<int>(c.edge_prob * 10));
    });

}  // namespace
}  // namespace firehose
