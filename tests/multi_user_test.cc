#include "src/core/multi_user.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleThresholds;

// Figure 7's two-user setup: global graph over authors 0..5 (a1..a6):
// component {0,1,5} shared by u1 and u2 (a1,a2,a6), a4 similar to a3 for
// u1 and to a5 for u2.
AuthorGraph Figure7Graph() {
  return AuthorGraph::FromEdges({0, 1, 2, 3, 4, 5},
                                {{0, 1}, {0, 5}, {2, 3}, {3, 4}});
}

std::vector<User> Figure7Users() {
  // u1 subscribes {a1,a2,a3,a4,a6} = {0,1,2,3,5};
  // u2 subscribes {a1,a2,a4,a5,a6} = {0,1,3,4,5}.
  return {User{0, {0, 1, 2, 3, 5}}, User{1, {0, 1, 3, 4, 5}}};
}

PostStream MultiUserStream(uint64_t seed, int num_posts, int num_authors) {
  Rng rng(seed);
  return testing_util::RandomStream(num_posts, num_authors, 30, rng);
}

// Per-user reference: diversify the user's sub-stream against G_i.
std::map<UserId, std::vector<PostId>> PerUserReference(
    const PostStream& stream, const DiversityThresholds& t,
    const AuthorGraph& graph, const std::vector<User>& users) {
  std::map<UserId, std::vector<PostId>> result;
  for (const User& user : users) {
    const AuthorGraph gi = graph.InducedSubgraph(user.subscriptions);
    PostStream sub;
    for (const Post& post : stream) {
      if (gi.HasVertex(post.author)) sub.push_back(post);
    }
    result[user.id] = testing_util::ReferenceDiversify(sub, t, gi);
  }
  return result;
}

std::map<UserId, std::vector<PostId>> CollectTimelines(
    MultiUserEngine& engine, const PostStream& stream,
    const std::vector<User>& users) {
  std::map<UserId, std::vector<PostId>> timelines;
  for (const User& user : users) timelines[user.id];  // ensure keys exist
  std::vector<UserId> delivered;
  for (const Post& post : stream) {
    engine.Offer(post, &delivered);
    for (UserId user : delivered) timelines[user].push_back(post.id);
  }
  return timelines;
}

TEST(MultiUserTest, MEngineMatchesPerUserReference) {
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const PostStream stream = MultiUserStream(5, 300, 6);
  const DiversityThresholds t = PaperExampleThresholds();

  for (Algorithm algorithm : kAllAlgorithms) {
    auto engine = MakeMUserEngine(algorithm, t, graph, users);
    EXPECT_EQ(CollectTimelines(*engine, stream, users),
              PerUserReference(stream, t, graph, users))
        << engine->name();
  }
}

TEST(MultiUserTest, SEngineMatchesPerUserReference) {
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const PostStream stream = MultiUserStream(6, 300, 6);
  const DiversityThresholds t = PaperExampleThresholds();

  for (Algorithm algorithm : kAllAlgorithms) {
    auto engine = MakeSUserEngine(algorithm, t, graph, users);
    EXPECT_EQ(CollectTimelines(*engine, stream, users),
              PerUserReference(stream, t, graph, users))
        << engine->name();
  }
}

TEST(MultiUserTest, SharedComponentIsDeduplicated) {
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const DiversityThresholds t = PaperExampleThresholds();

  // u1's components: {0,1,5}, {2,3}. u2's: {0,1,5}, {3,4}.
  // Distinct components: 3. M engine would hold 2 diversifiers (1/user).
  auto s_engine = MakeSUserEngine(Algorithm::kUniBin, t, graph, users);
  EXPECT_EQ(s_engine->num_diversifiers(), 3u);
  auto m_engine = MakeMUserEngine(Algorithm::kUniBin, t, graph, users);
  EXPECT_EQ(m_engine->num_diversifiers(), 2u);
}

TEST(MultiUserTest, SEngineDoesLessWorkWithSharedSubscriptions) {
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const PostStream stream = MultiUserStream(7, 600, 6);
  const DiversityThresholds t = PaperExampleThresholds();

  auto m_engine = MakeMUserEngine(Algorithm::kUniBin, t, graph, users);
  auto s_engine = MakeSUserEngine(Algorithm::kUniBin, t, graph, users);
  std::vector<UserId> delivered;
  for (const Post& post : stream) m_engine->Offer(post, &delivered);
  for (const Post& post : stream) s_engine->Offer(post, &delivered);
  // The shared component {0,1,5} is processed once instead of twice.
  EXPECT_LT(s_engine->AggregateStats().comparisons,
            m_engine->AggregateStats().comparisons);
  EXPECT_LT(s_engine->AggregateStats().insertions,
            m_engine->AggregateStats().insertions);
}

TEST(MultiUserTest, PostsFromUnsubscribedAuthorsGoNowhere) {
  const AuthorGraph graph = Figure7Graph();
  const std::vector<User> users = {User{0, {0, 1}}};
  const DiversityThresholds t = PaperExampleThresholds();

  for (bool shared : {false, true}) {
    auto engine = shared ? MakeSUserEngine(Algorithm::kUniBin, t, graph, users)
                         : MakeMUserEngine(Algorithm::kUniBin, t, graph, users);
    std::vector<UserId> delivered;
    Post post;
    post.id = 0;
    post.author = 4;  // nobody subscribes to a5
    post.time_ms = 0;
    post.simhash = 1;
    engine->Offer(post, &delivered);
    EXPECT_TRUE(delivered.empty());
    Post far;
    far.id = 1;
    far.author = 99;  // unknown author entirely
    far.time_ms = 1;
    far.simhash = 2;
    engine->Offer(far, &delivered);
    EXPECT_TRUE(delivered.empty());
  }
}

TEST(MultiUserTest, Figure7UsersCanDivergeOnSharedAuthorA4) {
  // a4 (id 3) is similar to a3 (id 2, subscribed only by u1) and to a5
  // (id 4, subscribed only by u2): a post by a3 can cover a4's post for u1
  // while u2 still sees it.
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const DiversityThresholds t = PaperExampleThresholds();
  auto engine = MakeSUserEngine(Algorithm::kUniBin, t, graph, users);

  std::vector<UserId> delivered;
  Post by_a3;
  by_a3.id = 0;
  by_a3.author = 2;
  by_a3.time_ms = 0;
  by_a3.simhash = 0x7;
  engine->Offer(by_a3, &delivered);
  EXPECT_EQ(delivered, (std::vector<UserId>{0}));  // only u1 subscribes a3

  Post by_a4;
  by_a4.id = 1;
  by_a4.author = 3;
  by_a4.time_ms = 1;
  by_a4.simhash = 0x7;  // content-identical to a3's post
  engine->Offer(by_a4, &delivered);
  EXPECT_EQ(delivered, (std::vector<UserId>{1}));  // covered for u1 only
}

class MultiUserPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiUserPropertyTest, MAndSAgreeOnRandomWorkloads) {
  Rng rng(GetParam());
  const int num_authors = 12;
  const AuthorGraph graph =
      testing_util::RandomAuthorGraph(num_authors, 0.25, rng);
  std::vector<User> users;
  const int num_users = 6;
  for (UserId u = 0; u < num_users; ++u) {
    std::vector<AuthorId> subs;
    for (AuthorId a = 0; a < static_cast<AuthorId>(num_authors); ++a) {
      if (rng.Bernoulli(0.5)) subs.push_back(a);
    }
    if (subs.empty()) subs.push_back(0);
    users.push_back(User{u, subs});
  }
  const PostStream stream = testing_util::RandomStream(400, num_authors, 30, rng);

  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 500;

  for (Algorithm algorithm : kAllAlgorithms) {
    auto m_engine = MakeMUserEngine(algorithm, t, graph, users);
    auto s_engine = MakeSUserEngine(algorithm, t, graph, users);
    const auto m_timelines = CollectTimelines(*m_engine, stream, users);
    const auto s_timelines = CollectTimelines(*s_engine, stream, users);
    EXPECT_EQ(m_timelines, s_timelines) << AlgorithmName(algorithm);
    const auto reference = PerUserReference(stream, t, graph, users);
    EXPECT_EQ(m_timelines, reference) << AlgorithmName(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiUserPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(MultiUserTest, CustomThresholdsHonoredPerUser) {
  const AuthorGraph graph = Figure7Graph();
  // u0 uses default thresholds; u1 disables pruning entirely by setting
  // an impossible content threshold.
  DiversityThresholds strict = PaperExampleThresholds();
  strict.lambda_c = -1;  // nothing is ever content-similar
  std::vector<User> users = {User{0, {0, 1, 5}}, User{1, {0, 1, 5}, strict}};
  const PostStream stream = MultiUserStream(21, 200, 6);

  for (bool shared : {false, true}) {
    auto engine =
        shared ? MakeSUserEngine(Algorithm::kUniBin,
                                 PaperExampleThresholds(), graph, users)
               : MakeMUserEngine(Algorithm::kUniBin,
                                 PaperExampleThresholds(), graph, users);
    const auto timelines = CollectTimelines(*engine, stream, users);
    // u1 sees every post from {0,1,5}; u0 sees a strict subset.
    size_t subscribed_posts = 0;
    for (const Post& post : stream) {
      if (post.author == 0 || post.author == 1 || post.author == 5) {
        ++subscribed_posts;
      }
    }
    EXPECT_EQ(timelines.at(1).size(), subscribed_posts);
    EXPECT_LT(timelines.at(0).size(), subscribed_posts);
  }
}

TEST(MultiUserTest, CustomThresholdsBlockSharing) {
  const AuthorGraph graph = Figure7Graph();
  DiversityThresholds wide = PaperExampleThresholds();
  wide.lambda_t_ms = 999999;
  // Same subscriptions; different thresholds: S engine must keep the
  // component {0,1,5} separate per user (2 components + shared none).
  std::vector<User> same_t = {User{0, {0, 1, 5}}, User{1, {0, 1, 5}}};
  std::vector<User> diff_t = {User{0, {0, 1, 5}},
                              User{1, {0, 1, 5}, wide}};
  auto shared_engine = MakeSUserEngine(
      Algorithm::kUniBin, PaperExampleThresholds(), graph, same_t);
  auto split_engine = MakeSUserEngine(
      Algorithm::kUniBin, PaperExampleThresholds(), graph, diff_t);
  EXPECT_EQ(shared_engine->num_diversifiers(), 1u);
  EXPECT_EQ(split_engine->num_diversifiers(), 2u);
}

TEST(MultiUserTest, CustomThresholdSAndMStillAgree) {
  const AuthorGraph graph = Figure7Graph();
  DiversityThresholds wide = PaperExampleThresholds();
  wide.lambda_t_ms = 100000;
  std::vector<User> users = Figure7Users();
  users[1].custom_thresholds = wide;
  const PostStream stream = MultiUserStream(23, 400, 6);
  for (Algorithm algorithm : kAllAlgorithms) {
    auto m_engine =
        MakeMUserEngine(algorithm, PaperExampleThresholds(), graph, users);
    auto s_engine =
        MakeSUserEngine(algorithm, PaperExampleThresholds(), graph, users);
    EXPECT_EQ(CollectTimelines(*m_engine, stream, users),
              CollectTimelines(*s_engine, stream, users))
        << AlgorithmName(algorithm);
  }
}

TEST(MultiUserTest, NamesIdentifyEngineAndAlgorithm) {
  const AuthorGraph graph = Figure7Graph();
  const auto users = Figure7Users();
  const DiversityThresholds t = PaperExampleThresholds();
  EXPECT_EQ(MakeMUserEngine(Algorithm::kCliqueBin, t, graph, users)->name(),
            "M_CliqueBin");
  EXPECT_EQ(MakeSUserEngine(Algorithm::kNeighborBin, t, graph, users)->name(),
            "S_NeighborBin");
}

}  // namespace
}  // namespace firehose
