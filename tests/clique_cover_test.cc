#include "src/author/clique_cover.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace firehose {
namespace {

// Checks the three structural invariants of a valid cover for `graph`:
// every clique is complete, every edge is covered, every vertex appears.
void ExpectValidCover(const CliqueCover& cover, const AuthorGraph& graph) {
  std::set<std::pair<AuthorId, AuthorId>> covered_edges;
  for (const auto& clique : cover.cliques()) {
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(graph.IsNeighbor(clique[i], clique[j]))
            << "clique not complete: " << clique[i] << "," << clique[j];
        covered_edges.insert({clique[i], clique[j]});
      }
    }
  }
  for (AuthorId u : graph.vertices()) {
    EXPECT_FALSE(cover.CliquesOf(u).empty()) << "vertex uncovered: " << u;
    for (AuthorId v : graph.Neighbors(u)) {
      if (u < v) {
        EXPECT_TRUE(covered_edges.count({u, v}) > 0)
            << "edge uncovered: " << u << "," << v;
      }
    }
  }
}

TEST(CliqueCoverTest, TriangleBecomesOneClique) {
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  const CliqueCover cover = CliqueCover::Greedy(g);
  ASSERT_EQ(cover.num_cliques(), 1u);
  EXPECT_EQ(cover.cliques()[0], (std::vector<AuthorId>{0, 1, 2}));
  ExpectValidCover(cover, g);
}

TEST(CliqueCoverTest, PaperFigure6cCover) {
  // Figure 5a graph: triangle {a1,a2,a3} + edge {a3,a4}; the paper's cover
  // is C0 = {a1,a2,a3}, C1 = {a3,a4} (ids shifted down by one).
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1, 2, 3}, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  const CliqueCover cover = CliqueCover::Greedy(g);
  ASSERT_EQ(cover.num_cliques(), 2u);
  EXPECT_EQ(cover.cliques()[0], (std::vector<AuthorId>{0, 1, 2}));
  EXPECT_EQ(cover.cliques()[1], (std::vector<AuthorId>{2, 3}));
  // a3 (id 2) belongs to both cliques; others to exactly one.
  EXPECT_EQ(cover.CliquesOf(2).size(), 2u);
  EXPECT_EQ(cover.CliquesOf(0).size(), 1u);
  EXPECT_EQ(cover.CliquesOf(3).size(), 1u);
  ExpectValidCover(cover, g);
}

TEST(CliqueCoverTest, IsolatedVerticesGetSingletons) {
  const AuthorGraph g = AuthorGraph::FromEdges({0, 1, 5}, {{0, 1}});
  const CliqueCover cover = CliqueCover::Greedy(g);
  ASSERT_EQ(cover.CliquesOf(5).size(), 1u);
  const CliqueId singleton = cover.CliquesOf(5)[0];
  EXPECT_EQ(cover.cliques()[singleton], (std::vector<AuthorId>{5}));
  ExpectValidCover(cover, g);
}

TEST(CliqueCoverTest, EmptyGraph) {
  const CliqueCover cover = CliqueCover::Greedy(AuthorGraph());
  EXPECT_EQ(cover.num_cliques(), 0u);
  EXPECT_TRUE(cover.CliquesOf(0).empty());
  EXPECT_DOUBLE_EQ(cover.AvgCliqueSize(), 0.0);
  EXPECT_DOUBLE_EQ(cover.AvgCliquesPerAuthor(), 0.0);
}

TEST(CliqueCoverTest, PathGraphUsesEdgeCliques) {
  // A path 0-1-2-3 has no triangles: cover must be the 3 edges.
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  const CliqueCover cover = CliqueCover::Greedy(g);
  EXPECT_EQ(cover.num_cliques(), 3u);
  EXPECT_EQ(cover.TotalCliqueSize(), 6u);
  ExpectValidCover(cover, g);
}

TEST(CliqueCoverTest, CompleteGraphIsOneClique) {
  std::vector<std::pair<AuthorId, AuthorId>> edges;
  std::vector<AuthorId> vertices;
  for (AuthorId i = 0; i < 6; ++i) {
    vertices.push_back(i);
    for (AuthorId j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  const CliqueCover cover =
      CliqueCover::Greedy(AuthorGraph::FromEdges(vertices, edges));
  EXPECT_EQ(cover.num_cliques(), 1u);
  EXPECT_EQ(cover.cliques()[0].size(), 6u);
  EXPECT_DOUBLE_EQ(cover.AvgCliquesPerAuthor(), 1.0);
  EXPECT_DOUBLE_EQ(cover.AvgCliqueSize(), 6.0);
}

TEST(CliqueCoverTest, StatsOnPaperGraph) {
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1, 2, 3}, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  const CliqueCover cover = CliqueCover::Greedy(g);
  EXPECT_EQ(cover.TotalCliqueSize(), 5u);               // 3 + 2
  EXPECT_DOUBLE_EQ(cover.AvgCliquesPerAuthor(), 1.25);  // 5 memberships / 4
  EXPECT_DOUBLE_EQ(cover.AvgCliqueSize(), 2.5);
  EXPECT_GT(cover.ApproxBytes(), 0u);
}

TEST(CliqueCoverTest, DeterministicAcrossRuns) {
  const AuthorGraph g = AuthorGraph::FromEdges(
      {0, 1, 2, 3, 4}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {1, 3}});
  const CliqueCover a = CliqueCover::Greedy(g);
  const CliqueCover b = CliqueCover::Greedy(g);
  EXPECT_EQ(a.cliques(), b.cliques());
}

class RandomGraphCoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphCoverTest, GreedyCoverIsAlwaysValid) {
  Rng rng(GetParam());
  const int n = 40;
  std::vector<AuthorId> vertices;
  std::vector<std::pair<AuthorId, AuthorId>> edges;
  for (AuthorId i = 0; i < n; ++i) vertices.push_back(i);
  for (AuthorId i = 0; i < n; ++i) {
    for (AuthorId j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.15)) edges.emplace_back(i, j);
    }
  }
  const AuthorGraph g = AuthorGraph::FromEdges(vertices, edges);
  const CliqueCover cover = CliqueCover::Greedy(g);
  ExpectValidCover(cover, g);
  // Sanity of the §4.4 accounting: total memberships = Σ clique sizes.
  uint64_t memberships = 0;
  for (AuthorId a : g.vertices()) memberships += cover.CliquesOf(a).size();
  EXPECT_EQ(memberships, cover.TotalCliqueSize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphCoverTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace firehose
