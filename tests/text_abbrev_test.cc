#include "src/text/abbrev.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(AbbrevTest, LookupKnown) {
  EXPECT_EQ(LookupAbbreviation("lol"), "laughing out loud");
  EXPECT_EQ(LookupAbbreviation("u"), "you");
  EXPECT_EQ(LookupAbbreviation("gr8"), "great");
}

TEST(AbbrevTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(LookupAbbreviation("LOL"), "laughing out loud");
  EXPECT_EQ(LookupAbbreviation("Btw"), "by the way");
}

TEST(AbbrevTest, LookupUnknownReturnsEmpty) {
  EXPECT_TRUE(LookupAbbreviation("hello").empty());
  EXPECT_TRUE(LookupAbbreviation("").empty());
  EXPECT_TRUE(LookupAbbreviation("zzz").empty());
}

TEST(AbbrevTest, ExpandWholeText) {
  EXPECT_EQ(ExpandAbbreviations("omg this is gr8"),
            "oh my god this is great");
}

TEST(AbbrevTest, ExpandPreservesUnknownTokens) {
  EXPECT_EQ(ExpandAbbreviations("reading the news rn #breaking"),
            "reading the news right now #breaking");
}

TEST(AbbrevTest, ExpandEmptyAndWhitespace) {
  EXPECT_EQ(ExpandAbbreviations(""), "");
  EXPECT_EQ(ExpandAbbreviations("   "), "");
}

TEST(AbbrevTest, DictionaryHasDeclaredSize) {
  EXPECT_EQ(AbbreviationCount(), 40);
}

TEST(AbbrevTest, EveryDictionaryEntryResolves) {
  // Exercises the binary search against the full (sorted) table.
  const char* known[] = {"2day", "2mrw", "2nite", "4",    "abt",  "afaik",
                         "b4",   "bc",   "bday",  "brb",  "btw",  "cya",
                         "dm",   "fb",   "ffs",   "fomo", "ftw",  "fyi",
                         "gr8",  "idk",  "ikr",   "imho", "imo",  "irl",
                         "jk",   "lmk",  "lol",   "nbd",  "ngl",  "omg",
                         "ppl",  "rn",   "rt",    "smh",  "tbh",  "thx",
                         "til",  "u",    "ur",    "w/"};
  for (const char* abbrev : known) {
    EXPECT_FALSE(LookupAbbreviation(abbrev).empty()) << abbrev;
  }
}

}  // namespace
}  // namespace firehose
