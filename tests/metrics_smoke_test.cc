// End-to-end observability smoke test: builds a small workload with the
// library, runs the real firehose_diversify binary (path injected by
// CMake as FIREHOSE_DIVERSIFY_BIN) with --metrics_out / --trace_out, and
// checks that the exported snapshot reconciles with itself:
//
//   engine.posts_in == engine.posts_out + engine.posts_pruned
//   pipeline.decision_comparisons histogram count == engine.posts_in
//   repeated identical runs -> byte-identical metrics snapshots
//   the trace file is Chrome trace_event JSON ("traceEvents")

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/firehose.h"

#ifndef FIREHOSE_DIVERSIFY_BIN
#error "FIREHOSE_DIVERSIFY_BIN must point at the firehose_diversify binary"
#endif

namespace firehose {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Value of `"key": <integer>` in a firehose.metrics.v1 JSON snapshot.
uint64_t JsonUint(const std::string& json, const std::string& key,
                  bool* found) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    *found = false;
    return 0;
  }
  *found = true;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

uint64_t RequireUint(const std::string& json, const std::string& key) {
  bool found = false;
  const uint64_t value = JsonUint(json, key, &found);
  EXPECT_TRUE(found) << "metric missing from snapshot: " << key;
  return value;
}

class MetricsSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small but non-trivial workload (a few thousand posts, real graph).
    SocialGraphOptions social_options;
    social_options.num_authors = 300;
    social_options.num_communities = 10;
    social_options.avg_followees = 20.0;
    social_options.seed = 4242;
    const FollowGraph social = GenerateSocialGraph(social_options);
    std::vector<AuthorId> authors;
    for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
    const auto similarities = AllPairsSimilarity(social, authors, 0.05);
    AuthorGraph graph =
        AuthorGraph::FromSimilarities(authors, similarities, 0.7);

    StreamGenOptions stream_options;
    stream_options.posts_per_author = 12.0;
    stream_options.seed = 99;
    const SimHasher hasher;
    const PostStream stream = GenerateStream(graph, hasher, stream_options);
    ASSERT_GT(stream.size(), 1000u);

    ASSERT_TRUE(SaveAuthorGraph(graph, kGraphPath));
    ASSERT_TRUE(SavePostStream(stream, kStreamPath));
  }

  void TearDown() override {
    for (const char* path :
         {kGraphPath, kStreamPath, "metrics_smoke_m1.json",
          "metrics_smoke_m2.json", "metrics_smoke_t.json"}) {
      std::remove(path);
    }
  }

  int RunDiversify(const std::string& extra_flags) {
    const std::string command = std::string("\"") + FIREHOSE_DIVERSIFY_BIN +
                                "\" --graph=" + kGraphPath +
                                " --stream=" + kStreamPath + " " +
                                extra_flags + " > /dev/null 2>&1";
    return std::system(command.c_str());
  }

  static constexpr const char* kGraphPath = "metrics_smoke_graph.bin";
  static constexpr const char* kStreamPath = "metrics_smoke_stream.bin";
};

TEST_F(MetricsSmokeTest, CountersReconcileAndSnapshotsAreByteStable) {
  ASSERT_EQ(RunDiversify("--algorithm=cliquebin "
                         "--metrics_out=metrics_smoke_m1.json "
                         "--trace_out=metrics_smoke_t.json"),
            0);
  const std::string snapshot = Slurp("metrics_smoke_m1.json");
  ASSERT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.find("\"schema\": \"firehose.metrics.v1\""),
            std::string::npos);

  // Post conservation: every offered post is either delivered or pruned.
  const uint64_t posts_in = RequireUint(snapshot, "engine.posts_in");
  const uint64_t posts_out = RequireUint(snapshot, "engine.posts_out");
  const uint64_t pruned = RequireUint(snapshot, "engine.posts_pruned");
  ASSERT_GT(posts_in, 0u);
  EXPECT_EQ(posts_in, posts_out + pruned);

  // The pipeline saw the same stream the engine counted.
  EXPECT_EQ(RequireUint(snapshot, "pipeline.posts_in"), posts_in);
  EXPECT_EQ(RequireUint(snapshot, "pipeline.posts_out"), posts_out);

  // One decision-comparisons sample per post.
  const size_t hist = snapshot.find("\"pipeline.decision_comparisons\"");
  ASSERT_NE(hist, std::string::npos);
  bool found = false;
  const uint64_t hist_count =
      JsonUint(snapshot.substr(hist), "count", &found);
  ASSERT_TRUE(found);
  EXPECT_EQ(hist_count, posts_in);
  // ... and their sum is the engine's total comparison count.
  const uint64_t hist_sum = JsonUint(snapshot.substr(hist), "sum", &found);
  ASSERT_TRUE(found);
  EXPECT_EQ(hist_sum, RequireUint(snapshot, "engine.comparisons"));

  // The trace is Chrome trace_event JSON with the pipeline span.
  const std::string trace = Slurp("metrics_smoke_t.json");
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"Pipeline::Run\""), std::string::npos);

  // Identical inputs export identical bytes (timing metrics dropped).
  ASSERT_EQ(RunDiversify("--algorithm=cliquebin "
                         "--metrics_out=metrics_smoke_m2.json"),
            0);
  EXPECT_EQ(snapshot, Slurp("metrics_smoke_m2.json"));
}

TEST_F(MetricsSmokeTest, UniBinSnapshotReconcilesToo) {
  ASSERT_EQ(RunDiversify("--algorithm=unibin "
                         "--metrics_out=metrics_smoke_m1.json"),
            0);
  const std::string snapshot = Slurp("metrics_smoke_m1.json");
  const uint64_t posts_in = RequireUint(snapshot, "engine.posts_in");
  EXPECT_EQ(posts_in, RequireUint(snapshot, "engine.posts_out") +
                          RequireUint(snapshot, "engine.posts_pruned"));
  // UniBin keeps one bin; occupancy gauges must say so.
  const size_t bins = snapshot.find("\"engine.bins\"");
  ASSERT_NE(bins, std::string::npos);
  bool found = false;
  EXPECT_EQ(JsonUint(snapshot.substr(bins), "value", &found), 1u);
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace firehose
