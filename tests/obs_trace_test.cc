#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/clock.h"

namespace firehose {
namespace obs {
namespace {

TEST(TraceRecorderTest, DeterministicJsonWithManualClock) {
  ManualClock clock(5000);
  TraceRecorder trace(&clock);
  trace.AddComplete("stage", "pipeline", 5000, 1205000);
  clock.SetNanos(2005000);
  trace.AddInstant("evict", "bin", /*tid=*/1);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"stage\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":0.000,\"dur\":1200.000},\n"
      "{\"name\":\"evict\",\"cat\":\"bin\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":1,\"ts\":2000.000,\"s\":\"t\"}\n"
      "]}\n";
  EXPECT_EQ(trace.ToJson(), expected);
  // Identical state exports identical bytes.
  EXPECT_EQ(trace.ToJson(), expected);
}

TEST(TraceRecorderTest, RebasesToEarliestEvent) {
  ManualClock clock(0);
  TraceRecorder trace(&clock);
  trace.AddComplete("late", "t", 9000, 10000);
  trace.AddComplete("early", "t", 1000, 2000);
  const std::string json = trace.ToJson();
  // Earliest event is at ts 0 and sorts first.
  const size_t early = json.find("\"name\":\"early\"");
  const size_t late = json.find("\"name\":\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":8.000"), std::string::npos);
}

TEST(TraceRecorderTest, EscapesNamesAndCarriesArgs) {
  ManualClock clock(0);
  TraceRecorder trace(&clock);
  trace.AddComplete("quote\"back\\slash", "cat", 0, 10, /*tid=*/0,
                    "{\"n\":3}");
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
}

TEST(TraceScopeTest, NullRecorderIsNoOp) {
  // Must not crash nor read any clock.
  TraceScope scope(nullptr, "name", "cat");
}

TEST(TraceScopeTest, RecordsCompleteSpan) {
  ManualClock clock(100, /*auto_advance_nanos=*/50);
  TraceRecorder trace(&clock);
  { TraceScope scope(&trace, "work", "test", /*tid=*/2); }
  EXPECT_EQ(trace.size(), 1u);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.050"), std::string::npos);
}

TEST(GlobalTraceTest, InstantRoutesToInstalledRecorder) {
  EXPECT_EQ(GlobalTrace(), nullptr);
  GlobalTraceInstant("dropped", "test");  // disabled: no-op

  ManualClock clock(0);
  TraceRecorder trace(&clock);
  SetGlobalTrace(&trace);
  GlobalTraceInstant("kept", "test");
  SetGlobalTrace(nullptr);
  GlobalTraceInstant("dropped_again", "test");

  EXPECT_EQ(trace.size(), 1u);
  EXPECT_NE(trace.ToJson().find("\"name\":\"kept\""), std::string::npos);
  EXPECT_EQ(GlobalTrace(), nullptr);
}

TEST(TraceRecorderTest, EmptyTraceIsValidJson) {
  TraceRecorder trace;
  EXPECT_EQ(trace.ToJson(), "{\"traceEvents\":[\n]}\n");
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace firehose
