#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

struct EquivalenceCase {
  uint64_t seed;
  int lambda_c;
  int64_t lambda_t_ms;
  double edge_prob;
  int num_authors;
  int num_posts;
};

class EquivalencePropertyTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

// UniBin, NeighborBin and CliqueBin index Z differently but decide
// coverage identically, so all three must emit the exact same sub-stream —
// and that sub-stream must match the brute-force reference.
TEST_P(EquivalencePropertyTest, AllAlgorithmsMatchReference) {
  const EquivalenceCase c = GetParam();
  Rng rng(c.seed);
  const AuthorGraph graph =
      testing_util::RandomAuthorGraph(c.num_authors, c.edge_prob, rng);
  const PostStream stream =
      testing_util::RandomStream(c.num_posts, c.num_authors, 40, rng);

  DiversityThresholds t;
  t.lambda_c = c.lambda_c;
  t.lambda_t_ms = c.lambda_t_ms;

  const std::vector<PostId> expected =
      testing_util::ReferenceDiversify(stream, t, graph);

  for (Algorithm algorithm : kAllAlgorithms) {
    auto diversifier = MakeDiversifier(algorithm, t, &graph);
    std::vector<PostId> admitted;
    for (const Post& post : stream) {
      if (diversifier->Offer(post)) admitted.push_back(post.id);
    }
    EXPECT_EQ(admitted, expected) << AlgorithmName(algorithm);
  }
}

// NeighborBin never does more comparisons than UniBin (it scans a strict
// subset of candidates), and all algorithms agree on posts_out.
TEST_P(EquivalencePropertyTest, WorkCountersAreConsistent) {
  const EquivalenceCase c = GetParam();
  Rng rng(c.seed ^ 0xF00D);
  const AuthorGraph graph =
      testing_util::RandomAuthorGraph(c.num_authors, c.edge_prob, rng);
  const PostStream stream =
      testing_util::RandomStream(c.num_posts, c.num_authors, 40, rng);

  DiversityThresholds t;
  t.lambda_c = c.lambda_c;
  t.lambda_t_ms = c.lambda_t_ms;

  IngestStats stats[3];
  int i = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto diversifier = MakeDiversifier(algorithm, t, &graph);
    for (const Post& post : stream) diversifier->Offer(post);
    stats[i++] = diversifier->stats();
  }
  const IngestStats& unibin = stats[0];
  const IngestStats& neighbor = stats[1];
  const IngestStats& clique = stats[2];

  EXPECT_EQ(unibin.posts_out, neighbor.posts_out);
  EXPECT_EQ(unibin.posts_out, clique.posts_out);
  // UniBin: one insertion per admitted post. Others: >= 1 copies.
  EXPECT_EQ(unibin.insertions, unibin.posts_out);
  EXPECT_GE(neighbor.insertions, neighbor.posts_out);
  EXPECT_GE(clique.insertions, clique.posts_out);
  // NeighborBin's candidate set is a subset of UniBin's window.
  EXPECT_LE(neighbor.comparisons, unibin.comparisons);
  // CliqueBin stores at most as many copies as NeighborBin (Table 3).
  EXPECT_LE(clique.insertions, neighbor.insertions);
}

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;
  uint64_t seed = 100;
  for (int lambda_c : {0, 2, 6, 18, 32}) {
    for (int64_t lambda_t : {50LL, 500LL, 100000LL}) {
      for (double edge_prob : {0.05, 0.3, 0.9}) {
        cases.push_back(
            EquivalenceCase{++seed, lambda_c, lambda_t, edge_prob, 15, 300});
      }
    }
  }
  // A couple of larger shapes.
  cases.push_back(EquivalenceCase{7777, 18, 1000, 0.1, 60, 1500});
  cases.push_back(EquivalenceCase{8888, 12, 250, 0.6, 8, 1500});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalencePropertyTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      const EquivalenceCase& c = info.param;
      return "s" + std::to_string(c.seed) + "_c" + std::to_string(c.lambda_c) +
             "_t" + std::to_string(c.lambda_t_ms) + "_e" +
             std::to_string(static_cast<int>(c.edge_prob * 100)) + "_a" +
             std::to_string(c.num_authors);
    });

}  // namespace
}  // namespace firehose
