#include "src/text/normalize.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(NormalizeTest, LowercasesText) {
  EXPECT_EQ(Normalize("Hello WORLD"), "hello world");
}

TEST(NormalizeTest, SqueezesWhitespace) {
  EXPECT_EQ(Normalize("a   b\t\tc\n d"), "a b c d");
}

TEST(NormalizeTest, StripsLeadingAndTrailingWhitespace) {
  EXPECT_EQ(Normalize("  hello  "), "hello");
}

TEST(NormalizeTest, StripsNonAlphanumerics) {
  // '*', '-', '+', '!' are stripped; '/' survives as a URL character.
  EXPECT_EQ(Normalize("a*b-c+d/e!"), "abcd/e");
  EXPECT_EQ(Normalize("so-called \"news\"*"), "socalled news");
}

TEST(NormalizeTest, PreservesSocialMarkersByDefault) {
  EXPECT_EQ(Normalize("#Tag @User!"), "#tag @user");
  EXPECT_EQ(Normalize("see https://t.co/Abc123"), "see https://t.co/abc123");
}

TEST(NormalizeTest, MarkersStrippedWhenDisabled) {
  NormalizeOptions options;
  options.preserve_social_markers = false;
  EXPECT_EQ(Normalize("#Tag @User", options), "tag user");
}

TEST(NormalizeTest, LowercaseToggle) {
  NormalizeOptions options;
  options.lowercase = false;
  EXPECT_EQ(Normalize("Hello World", options), "Hello World");
}

TEST(NormalizeTest, SqueezeToggle) {
  NormalizeOptions options;
  options.squeeze_whitespace = false;
  EXPECT_EQ(Normalize("a  b", options), "a  b");
}

TEST(NormalizeTest, StripToggle) {
  NormalizeOptions options;
  options.strip_non_alnum = false;
  EXPECT_EQ(Normalize("a*b!", options), "a*b!");
}

TEST(NormalizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(Normalize(""), "");
  EXPECT_EQ(Normalize("   \t\n "), "");
}

TEST(NormalizeTest, HighBytesPassThrough) {
  // UTF-8 continuation bytes are treated as alphanumeric.
  EXPECT_EQ(Normalize("caf\xC3\xA9"), "caf\xC3\xA9");
}

TEST(NormalizeTest, IdempotentOnNormalizedText) {
  const std::string once = Normalize("Some *Text* With   Noise!!");
  EXPECT_EQ(Normalize(once), once);
}

TEST(NormalizeTest, PaperExampleQuotePair) {
  // The two Bill Cosby quote variants of Table 1 normalize to nearly the
  // same string (quotes/periods removed, case folded).
  const std::string a = Normalize(
      "\"In order to succeed, your desire for success should be greater "
      "than your fear of failure\" Bill Cosby");
  const std::string b = Normalize(
      "In order to succeed, your desire for success should be greater than "
      "your fear of failure. Bill Cosby");
  EXPECT_EQ(a.substr(0, 40), b.substr(0, 40));
}

}  // namespace
}  // namespace firehose
