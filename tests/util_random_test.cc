#include "src/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(SplitMix64Test, DeterministicAndAdvancesState) {
  uint64_t s1 = 12345;
  uint64_t s2 = 12345;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
  const uint64_t first = SplitMix64(&s1);
  const uint64_t second = SplitMix64(&s1);
  EXPECT_NE(first, second);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, CopyForksTheStream) {
  Rng a(7);
  a.Next();
  Rng b = a;
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntZeroBoundReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(0), 0u);
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanTracksParameter) {
  const double mean = GetParam();
  Rng rng(23);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const int v = rng.Poisson(mean);
    EXPECT_GE(v, 0);
    sum += v;
  }
  const double sample_mean = sum / trials;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 10.0, 64.0, 200.0));

TEST(RngTest, PoissonZeroOrNegativeMeanIsZero) {
  Rng rng(2);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-3.0), 0);
}

TEST(RngTest, ZipfWithinRangeAndSkewed) {
  Rng rng(31);
  const int n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    const int v = rng.Zipf(n, 1.0);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 should dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ZipfHandlesCacheInvalidation) {
  Rng rng(37);
  // Interleave two (n, s) configurations; both must stay in range.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Zipf(10, 1.0), 10);
    EXPECT_LT(rng.Zipf(50, 0.5), 50);
  }
}

TEST(RngTest, ZipfDegenerateN) {
  Rng rng(41);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0);
  EXPECT_EQ(rng.Zipf(0, 1.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(43);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.Exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / trials, 5.0, 0.25);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleReturnsDistinctElements) {
  Rng rng(53);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> sample = rng.Sample(items, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleLargerThanPopulationReturnsAll) {
  Rng rng(59);
  std::vector<int> items = {1, 2, 3};
  std::vector<int> sample = rng.Sample(items, 10);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, items);
}

}  // namespace
}  // namespace firehose
