// CRC32C (Castagnoli) tests: the published check value, incremental
// extension, error detection, and a cross-check of the dispatched
// implementation (hardware SSE4.2 on x86-64) against the slice-by-8
// portable fallback over randomized buffers of every small length.

#include "src/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/util/random.h"

namespace firehose {
namespace {

TEST(Crc32cTest, PublishedCheckValue) {
  // The standard CRC check string. CRC32C("123456789") is 0xE3069283 in
  // every published catalogue of the Castagnoli polynomial.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32cExtend(0, nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "slowing the firehose, one frame at a time";
  const uint32_t whole = Crc32c(data);
  // Any split point must give the same checksum via Extend.
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  const std::string data = "0123456789abcdef0123456789abcdef";
  const uint32_t good = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), good) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, PortableMatchesDispatchedImplementation) {
  // On x86-64 with SSE4.2 the dispatched path uses the crc32 instruction;
  // elsewhere both sides run the same table code and this is a no-op
  // check. Every length 0..257 exercises the head/8-byte/tail phases.
  Rng rng(20260806);
  for (size_t n = 0; n <= 257; ++n) {
    std::string data(n, '\0');
    for (char& c : data) c = static_cast<char>(rng.Next() & 0xFF);
    const uint32_t seed = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Crc32cExtend(seed, data.data(), n),
              internal::Crc32cPortable(seed, data.data(), n))
        << "length " << n;
  }
}

TEST(Crc32cTest, HardwareProbeIsStable) {
  // Whatever the answer, it must not change within a process (the
  // dispatch decision is cached).
  const bool first = Crc32cHardwareAvailable();
  EXPECT_EQ(Crc32cHardwareAvailable(), first);
}

}  // namespace
}  // namespace firehose
