#include "src/util/histogram.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(10);
  EXPECT_EQ(h.Total(), 0u);
  EXPECT_EQ(h.Count(3), 0u);
  EXPECT_DOUBLE_EQ(h.Fraction(3), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(0), 0.0);
  EXPECT_EQ(h.ToAscii(), "(empty)\n");
}

TEST(HistogramTest, CountsAndTotal) {
  Histogram h(5);
  h.Add(0);
  h.Add(2);
  h.Add(2);
  h.Add(4);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 0u);
  EXPECT_EQ(h.Count(2), 2u);
  EXPECT_EQ(h.Count(4), 1u);
}

TEST(HistogramTest, OutOfRangeValuesClamp) {
  Histogram h(4);
  h.Add(-5);
  h.Add(100);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(3), 1u);
  EXPECT_EQ(h.Total(), 2u);
}

TEST(HistogramTest, OutOfRangeCountQueryIsZero) {
  Histogram h(4);
  h.Add(1);
  EXPECT_EQ(h.Count(-1), 0u);
  EXPECT_EQ(h.Count(4), 0u);
}

TEST(HistogramTest, MeanAndStddev) {
  Histogram h(10);
  // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, stddev 2.
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 2.0);
}

TEST(HistogramTest, FractionAndCcdf) {
  Histogram h(10);
  for (int v : {1, 2, 2, 3}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(2), 0.75);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(3), 0.25);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(4), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(-2), 1.0);
}

TEST(HistogramTest, AsciiRendersNonEmptyBucketsOnly) {
  Histogram h(20);
  h.Add(5);
  h.Add(5);
  h.Add(7);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find(" 5 |"), std::string::npos);
  EXPECT_NE(art.find(" 7 |"), std::string::npos);
  EXPECT_EQ(art.find(" 3 |"), std::string::npos);   // before first nonzero
  EXPECT_EQ(art.find(" 9 |"), std::string::npos);   // after last nonzero
  EXPECT_NE(art.find("##########"), std::string::npos);  // max bar width
}

TEST(HistogramTest, SingleBucketDegenerateConstruction) {
  Histogram h(0);  // clamps to 1 bucket
  h.Add(0);
  h.Add(42);
  EXPECT_EQ(h.num_buckets(), 1);
  EXPECT_EQ(h.Count(0), 2u);
}

}  // namespace
}  // namespace firehose
