#include "src/gen/labeled_pairs.h"

#include <map>

#include <gtest/gtest.h>

#include "src/gen/text_gen.h"
#include "src/simhash/simhash.h"

namespace firehose {
namespace {

LabeledPairOptions SmallOptions() {
  LabeledPairOptions options;
  options.min_distance = 3;
  options.max_distance = 22;
  options.pairs_per_distance = 20;
  options.max_attempts = 400000;
  options.seed = 77;
  return options;
}

TEST(LabeledPairsTest, DistancesStayInBand) {
  const auto pairs = GenerateLabeledPairs(SmallOptions());
  ASSERT_FALSE(pairs.empty());
  for (const LabeledPair& pair : pairs) {
    EXPECT_GE(pair.hamming_raw, 3);
    EXPECT_LE(pair.hamming_raw, 22);
  }
}

TEST(LabeledPairsTest, BucketQuotasRespected) {
  const LabeledPairOptions options = SmallOptions();
  const auto pairs = GenerateLabeledPairs(options);
  std::map<int, int> per_bucket;
  for (const LabeledPair& pair : pairs) ++per_bucket[pair.hamming_raw];
  for (const auto& [distance, count] : per_bucket) {
    EXPECT_LE(count, options.pairs_per_distance) << "bucket " << distance;
  }
  // The near buckets (easy to fill) should be full.
  EXPECT_EQ(per_bucket[3], options.pairs_per_distance);
  EXPECT_EQ(per_bucket[8], options.pairs_per_distance);
}

TEST(LabeledPairsTest, LabelsFollowPerturbLevel) {
  for (const LabeledPair& pair : GenerateLabeledPairs(SmallOptions())) {
    EXPECT_EQ(pair.redundant, pair.level <= kMaxRedundantLevel);
  }
}

TEST(LabeledPairsTest, StoredDistancesMatchTexts) {
  SimHashOptions raw_options;
  raw_options.normalize = false;
  const SimHasher raw_hasher(raw_options);
  const SimHasher norm_hasher;
  int checked = 0;
  for (const LabeledPair& pair : GenerateLabeledPairs(SmallOptions())) {
    if (++checked > 50) break;
    EXPECT_EQ(pair.hamming_raw,
              SimHashDistance(raw_hasher.Fingerprint(pair.text_a),
                              raw_hasher.Fingerprint(pair.text_b)));
    EXPECT_EQ(pair.hamming_norm,
              SimHashDistance(norm_hasher.Fingerprint(pair.text_a),
                              norm_hasher.Fingerprint(pair.text_b)));
    EXPECT_GE(pair.cosine, 0.0);
    EXPECT_LE(pair.cosine, 1.0 + 1e-9);
  }
}

TEST(LabeledPairsTest, ContainsBothClasses) {
  int redundant = 0;
  int clean = 0;
  for (const LabeledPair& pair : GenerateLabeledPairs(SmallOptions())) {
    (pair.redundant ? redundant : clean)++;
  }
  EXPECT_GT(redundant, 0);
  EXPECT_GT(clean, 0);
}

TEST(LabeledPairsTest, RedundancyConcentratesAtSmallDistances) {
  // Near bucket (h<=8) should be mostly redundant; far bucket (h>=20)
  // mostly not — the separation Figures 3/4 rely on.
  uint64_t near_red = 0;
  uint64_t near_total = 0;
  uint64_t far_red = 0;
  uint64_t far_total = 0;
  for (const LabeledPair& pair : GenerateLabeledPairs(SmallOptions())) {
    if (pair.hamming_norm <= 8) {
      ++near_total;
      near_red += pair.redundant ? 1 : 0;
    } else if (pair.hamming_norm >= 26) {
      ++far_total;
      far_red += pair.redundant ? 1 : 0;
    }
  }
  ASSERT_GT(near_total, 0u);
  ASSERT_GT(far_total, 0u);
  EXPECT_GT(static_cast<double>(near_red) / near_total, 0.8);
  EXPECT_LT(static_cast<double>(far_red) / far_total, 0.5);
}

TEST(LabeledPairsTest, DeterministicGivenSeed) {
  const auto a = GenerateLabeledPairs(SmallOptions());
  const auto b = GenerateLabeledPairs(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 17) {
    EXPECT_EQ(a[i].text_a, b[i].text_a);
    EXPECT_EQ(a[i].text_b, b[i].text_b);
  }
}

TEST(LabeledPairsTest, AttemptBudgetBoundsWork) {
  LabeledPairOptions options = SmallOptions();
  options.max_attempts = 100;  // far too small to fill everything
  const auto pairs = GenerateLabeledPairs(options);
  EXPECT_LE(pairs.size(), 100u);
}

}  // namespace
}  // namespace firehose
