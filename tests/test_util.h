#ifndef FIREHOSE_TESTS_TEST_UTIL_H_
#define FIREHOSE_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/author/similarity_graph.h"
#include "src/core/thresholds.h"
#include "src/stream/post.h"
#include "src/util/bitops.h"
#include "src/util/random.h"

namespace firehose {
namespace testing_util {

/// The running example of paper §4 (Figures 5 and 6), authors shifted to
/// 0-based ids: a1..a4 -> 0..3. Triangle {0,1,2} plus edge {2,3}.
inline AuthorGraph PaperExampleGraph() {
  return AuthorGraph::FromEdges({0, 1, 2, 3},
                                {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
}

/// Thresholds used with the paper example posts: λc = 3, λt wide enough
/// that no eviction happens during the example.
inline DiversityThresholds PaperExampleThresholds() {
  DiversityThresholds t;
  t.lambda_c = 3;
  t.lambda_t_ms = 1000;
  return t;
}

/// Posts P1..P5 of Figure 5b with fingerprints engineered so that exactly
/// the paper's coverage relations hold under λc = 3:
///   P3 covered by P1 (distc = 1, authors a3~a1),
///   P5 covered by P4 (distc = 1, authors a3~a4),
///   all other pairs content-far or author-far.
/// Expected diversified stream: {P1, P2, P4}.
inline PostStream PaperExamplePosts() {
  PostStream stream;
  auto add = [&stream](AuthorId author, int64_t time_ms, uint64_t simhash) {
    Post post;
    post.id = static_cast<PostId>(stream.size());
    post.author = author;
    post.time_ms = time_ms;
    post.simhash = simhash;
    stream.push_back(post);
  };
  add(0, 0, 0x0000);  // P1
  add(1, 1, 0x00FF);  // P2: 8 bits from P1
  add(2, 2, 0x0001);  // P3: 1 bit from P1 (covered), 7 from P2
  add(3, 3, 0xF0F0);  // P4: 8 bits from P1, 8 from P2
  add(2, 4, 0xF0F1);  // P5: 1 bit from P4 (covered)
  return stream;
}

/// Brute-force reference solution of SPSD: scans the whole retained
/// sub-stream per post. Used as the oracle for all property tests.
inline std::vector<PostId> ReferenceDiversify(const PostStream& stream,
                                              const DiversityThresholds& t,
                                              const AuthorGraph& graph) {
  std::vector<const Post*> z;
  std::vector<PostId> admitted;
  for (const Post& post : stream) {
    bool covered = false;
    for (const Post* prior : z) {
      if (post.time_ms - prior->time_ms > t.lambda_t_ms) continue;
      if (t.use_content &&
          HammingDistance64(post.simhash, prior->simhash) > t.lambda_c) {
        continue;
      }
      if (t.use_author && prior->author != post.author &&
          !graph.IsNeighbor(post.author, prior->author)) {
        continue;
      }
      covered = true;
      break;
    }
    if (!covered) {
      z.push_back(&post);
      admitted.push_back(post.id);
    }
  }
  return admitted;
}

/// Random Erdős–Rényi-ish author graph over `num_authors` vertices.
inline AuthorGraph RandomAuthorGraph(int num_authors, double edge_prob,
                                     Rng& rng) {
  std::vector<AuthorId> vertices;
  std::vector<std::pair<AuthorId, AuthorId>> edges;
  for (AuthorId a = 0; a < static_cast<AuthorId>(num_authors); ++a) {
    vertices.push_back(a);
    for (AuthorId b = a + 1; b < static_cast<AuthorId>(num_authors); ++b) {
      if (rng.Bernoulli(edge_prob)) edges.emplace_back(a, b);
    }
  }
  return AuthorGraph::FromEdges(vertices, edges);
}

/// Random time-ordered stream whose fingerprints cluster: most posts
/// derive from a recent post by flipping a few bits, so coverage actually
/// fires at small λc.
inline PostStream RandomStream(int num_posts, int num_authors,
                               int64_t max_gap_ms, Rng& rng) {
  PostStream stream;
  int64_t now = 0;
  for (int i = 0; i < num_posts; ++i) {
    Post post;
    post.id = static_cast<PostId>(i);
    post.author = static_cast<AuthorId>(
        rng.UniformInt(static_cast<uint64_t>(num_authors)));
    now += static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(max_gap_ms) + 1));
    post.time_ms = now;
    if (!stream.empty() && rng.Bernoulli(0.5)) {
      const Post& source = stream[rng.UniformInt(stream.size())];
      post.simhash = source.simhash;
      const int flips = static_cast<int>(rng.UniformInt(8));
      for (int f = 0; f < flips; ++f) post.simhash ^= 1ULL << rng.UniformInt(64);
    } else {
      post.simhash = rng.Next();
    }
    stream.push_back(post);
  }
  return stream;
}

}  // namespace testing_util
}  // namespace firehose

#endif  // FIREHOSE_TESTS_TEST_UTIL_H_
