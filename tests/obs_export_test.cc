#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.h"

namespace firehose {
namespace obs {
namespace {

// --- Prometheus text format --------------------------------------------------

TEST(ExportPrometheusTest, GoldenCounterAndGauge) {
  MetricsRegistry registry;
  registry.GetCounter("posts.in")->Add(7);
  Gauge* bins = registry.GetGauge("bins");
  bins->Set(3);
  bins->Set(2);
  // Names sanitize (`.` -> `_`), gain the firehose_ prefix, and sort.
  const std::string expected =
      "# TYPE firehose_bins gauge\n"
      "firehose_bins 2\n"
      "# TYPE firehose_bins_high_water gauge\n"
      "firehose_bins_high_water 3\n"
      "# TYPE firehose_posts_in counter\n"
      "firehose_posts_in 7\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(ExportPrometheusTest, HistogramIsCumulativeWithInfEdge) {
  MetricsRegistry registry;
  LogHistogram* histogram = registry.GetHistogram("lat");
  histogram->Record(1);
  histogram->Record(1024);
  histogram->Record(1024);
  const std::string out = ExportPrometheus(registry);
  EXPECT_NE(out.find("# TYPE firehose_lat histogram"), std::string::npos);
  // Two occupied buckets, emitted sparsely with cumulative counts.
  EXPECT_NE(out.find("firehose_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(out.find("firehose_lat_sum 2049"), std::string::npos);
  EXPECT_NE(out.find("firehose_lat_count 3"), std::string::npos);
  // The bucket holding the two 1024 samples is cumulative: "} 3".
  EXPECT_NE(out.find("\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("\"} 3\n"), std::string::npos);
}

TEST(ExportPrometheusTest, DropsTimingMetricsOnRequest) {
  MetricsRegistry registry;
  registry.GetCounter("stable")->Add(1);
  registry.GetGauge("wall_ns", /*timing=*/true)->Set(123456);
  const std::string with = ExportPrometheus(registry);
  EXPECT_NE(with.find("firehose_wall_ns"), std::string::npos);
  const std::string without =
      ExportPrometheus(registry, ExportOptions{/*include_timing=*/false});
  EXPECT_EQ(without.find("firehose_wall_ns"), std::string::npos);
  EXPECT_NE(without.find("firehose_stable 1"), std::string::npos);
}

TEST(ExportPrometheusTest, HelpLineIsEmittedAndEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("posts.in")->Add(1);
  registry.SetHelp("posts.in", "posts accepted\nby the \"ingest\" \\ stage");
  const std::string expected =
      "# HELP firehose_posts_in posts accepted\\nby the \"ingest\" \\\\ "
      "stage\n"
      "# TYPE firehose_posts_in counter\n"
      "firehose_posts_in 1\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(ExportPrometheusTest, NoHelpMeansNoHelpLine) {
  MetricsRegistry registry;
  registry.GetCounter("posts.in")->Add(1);
  EXPECT_EQ(ExportPrometheus(registry),
            "# TYPE firehose_posts_in counter\nfirehose_posts_in 1\n");
}

TEST(PrometheusEscapingTest, HostileLabelValues) {
  // Exposition format: label values escape backslash, double quote, and
  // newline; everything else passes through byte-for-byte.
  EXPECT_EQ(PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(PrometheusEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(PrometheusEscapeLabelValue(""), "");
}

TEST(PrometheusEscapingTest, HostileHelpStrings) {
  // HELP lines escape backslash and newline but NOT double quotes.
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("a\"b"), "a\"b");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeHelp("line one\nline two"),
            "line one\\nline two");
}

// --- JSON snapshot -----------------------------------------------------------

TEST(ExportJsonTest, RoundTripsRecordedValues) {
  MetricsRegistry registry;
  registry.GetCounter("pipeline.posts_in")->Add(100);
  registry.GetGauge("live.queue_depth")->Set(-2);
  LogHistogram* histogram = registry.GetHistogram("cmp");
  for (uint64_t v = 1; v <= 4; ++v) histogram->Record(v);
  const std::string json = ExportJson(registry);

  EXPECT_NE(json.find("\"schema\": \"firehose.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pipeline.posts_in\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"live.queue_depth\": {\"value\": -2, "
                      "\"high_water\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\": 4, \"sum\": 10, \"max\": 4"),
            std::string::npos);
  // Sparse buckets as [index, count] pairs; value 1 lands in bucket 0.
  EXPECT_NE(json.find("\"buckets\": [[0, 1], "), std::string::npos);
}

TEST(ExportJsonTest, EmptyRegistryIsWellFormed) {
  MetricsRegistry registry;
  const std::string json = ExportJson(registry);
  EXPECT_EQ(json,
            "{\n\"schema\": \"firehose.metrics.v1\",\n"
            "\"counters\": {},\n\"gauges\": {},\n\"histograms\": {}\n}\n");
}

TEST(ExportJsonTest, RepeatedExportIsByteStable) {
  MetricsRegistry registry;
  registry.GetCounter("b")->Add(2);
  registry.GetCounter("a")->Add(1);
  registry.GetHistogram("h")->Record(77);
  const std::string first = ExportJson(registry);
  const std::string second = ExportJson(registry);
  EXPECT_EQ(first, second);
}

TEST(ExportJsonTest, RegistrationOrderDoesNotChangeBytes) {
  MetricsRegistry forward, backward;
  forward.GetCounter("alpha")->Add(1);
  forward.GetCounter("beta")->Add(2);
  forward.GetGauge("gamma")->Set(3);
  backward.GetGauge("gamma")->Set(3);
  backward.GetCounter("beta")->Add(2);
  backward.GetCounter("alpha")->Add(1);
  EXPECT_EQ(ExportJson(forward), ExportJson(backward));
  EXPECT_EQ(ExportPrometheus(forward), ExportPrometheus(backward));
}

TEST(ExportJsonTest, DropsTimingMetricsOnRequest) {
  MetricsRegistry registry;
  registry.GetCounter("deterministic")->Add(5);
  registry.GetHistogram("latency_ns", /*timing=*/true)->Record(1000);
  const std::string without =
      ExportJson(registry, ExportOptions{/*include_timing=*/false});
  EXPECT_EQ(without.find("latency_ns"), std::string::npos);
  EXPECT_NE(without.find("\"deterministic\": 5"), std::string::npos);
  // Dropping a histogram leaves the histograms section empty but valid.
  EXPECT_NE(without.find("\"histograms\": {}"), std::string::npos);
}

TEST(ExportJsonTest, MergedShardRegistriesExportIdenticalToDirect) {
  // The sharded runtime's contract: per-shard registries merged in shard
  // order must export the same bytes as recording into one registry.
  MetricsRegistry shard0, shard1, merged, direct;
  shard0.GetCounter("sharded.posts_in")->Add(10);
  shard1.GetCounter("sharded.posts_in")->Add(20);
  shard0.GetHistogram("sharded.cmp")->Record(3);
  shard1.GetHistogram("sharded.cmp")->Record(9);
  merged.MergeFrom(shard0);
  merged.MergeFrom(shard1);
  direct.GetCounter("sharded.posts_in")->Add(30);
  direct.GetHistogram("sharded.cmp")->Record(3);
  direct.GetHistogram("sharded.cmp")->Record(9);
  EXPECT_EQ(ExportJson(merged), ExportJson(direct));
}

}  // namespace
}  // namespace obs
}  // namespace firehose
