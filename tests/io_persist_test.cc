#include "src/io/persist.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/clique_bin.h"
#include "src/gen/social_graph_gen.h"
#include "src/gen/stream_gen.h"
#include "src/io/binary.h"

namespace firehose {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

class PersistFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SocialGraphOptions options;
    options.num_authors = 150;
    options.num_communities = 5;
    options.avg_followees = 15.0;
    options.seed = 8;
    social_ = GenerateSocialGraph(options);
    for (AuthorId a = 0; a < social_.num_authors(); ++a) authors_.push_back(a);
    similarities_ = AllPairsSimilarity(social_, authors_, 0.1);
    graph_ = AuthorGraph::FromSimilarities(authors_, similarities_, 0.8);
    cover_ = CliqueCover::Greedy(graph_);

    StreamGenOptions stream_options;
    stream_options.duration_ms = 600 * 1000;
    stream_options.posts_per_author = 3.0;
    stream_options.seed = 9;
    const SimHasher hasher;
    stream_ = GenerateStream(graph_, hasher, stream_options);
  }

  FollowGraph social_;
  std::vector<AuthorId> authors_;
  std::vector<AuthorPairSimilarity> similarities_;
  AuthorGraph graph_;
  CliqueCover cover_;
  PostStream stream_;
};

TEST_F(PersistFixture, FollowGraphRoundTrip) {
  const std::string path = TempPath("follow.bin");
  ASSERT_TRUE(SaveFollowGraph(social_, path));
  FollowGraph loaded;
  ASSERT_TRUE(LoadFollowGraph(path, &loaded));
  ASSERT_EQ(loaded.num_authors(), social_.num_authors());
  EXPECT_EQ(loaded.num_edges(), social_.num_edges());
  for (AuthorId a = 0; a < social_.num_authors(); ++a) {
    EXPECT_EQ(loaded.Followees(a), social_.Followees(a));
    EXPECT_EQ(loaded.Followers(a), social_.Followers(a));
  }
  std::remove(path.c_str());
}

TEST_F(PersistFixture, SimilaritiesRoundTrip) {
  const std::string path = TempPath("sims.bin");
  ASSERT_TRUE(SaveSimilarities(similarities_, path));
  std::vector<AuthorPairSimilarity> loaded;
  ASSERT_TRUE(LoadSimilarities(path, &loaded));
  ASSERT_EQ(loaded.size(), similarities_.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].a, similarities_[i].a);
    EXPECT_EQ(loaded[i].b, similarities_[i].b);
    EXPECT_NEAR(loaded[i].similarity, similarities_[i].similarity, 1e-8);
  }
  std::remove(path.c_str());
}

TEST_F(PersistFixture, AuthorGraphRoundTrip) {
  const std::string path = TempPath("author_graph.bin");
  ASSERT_TRUE(SaveAuthorGraph(graph_, path));
  AuthorGraph loaded;
  ASSERT_TRUE(LoadAuthorGraph(path, &loaded));
  EXPECT_EQ(loaded.vertices(), graph_.vertices());
  EXPECT_EQ(loaded.num_edges(), graph_.num_edges());
  for (AuthorId a : graph_.vertices()) {
    EXPECT_EQ(loaded.Neighbors(a), graph_.Neighbors(a));
  }
  std::remove(path.c_str());
}

TEST_F(PersistFixture, CliqueCoverRoundTrip) {
  const std::string path = TempPath("cover.bin");
  ASSERT_TRUE(SaveCliqueCover(cover_, graph_.num_vertices(), path));
  CliqueCover loaded;
  ASSERT_TRUE(LoadCliqueCover(path, &loaded));
  EXPECT_EQ(loaded.cliques(), cover_.cliques());
  EXPECT_DOUBLE_EQ(loaded.AvgCliquesPerAuthor(), cover_.AvgCliquesPerAuthor());
  EXPECT_TRUE(loaded.IsValidFor(graph_));
  std::remove(path.c_str());
}

TEST_F(PersistFixture, PostStreamBinaryRoundTrip) {
  const std::string path = TempPath("stream.bin");
  ASSERT_TRUE(SavePostStream(stream_, path));
  PostStream loaded;
  ASSERT_TRUE(LoadPostStream(path, &loaded));
  ASSERT_EQ(loaded.size(), stream_.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].id, stream_[i].id);
    EXPECT_EQ(loaded[i].author, stream_[i].author);
    EXPECT_EQ(loaded[i].time_ms, stream_[i].time_ms);
    EXPECT_EQ(loaded[i].simhash, stream_[i].simhash);
    EXPECT_EQ(loaded[i].text, stream_[i].text);
  }
  std::remove(path.c_str());
}

TEST_F(PersistFixture, PostStreamTsvRoundTrip) {
  const std::string path = TempPath("stream.tsv");
  ASSERT_TRUE(SavePostStreamTsv(stream_, path));
  PostStream loaded;
  ASSERT_TRUE(LoadPostStreamTsv(path, &loaded));
  ASSERT_EQ(loaded.size(), stream_.size());
  for (size_t i = 0; i < loaded.size(); i += 11) {
    EXPECT_EQ(loaded[i].id, stream_[i].id);
    EXPECT_EQ(loaded[i].author, stream_[i].author);
    EXPECT_EQ(loaded[i].time_ms, stream_[i].time_ms);
    EXPECT_EQ(loaded[i].simhash, stream_[i].simhash);
    EXPECT_EQ(loaded[i].text, stream_[i].text);
  }
  std::remove(path.c_str());
}

TEST_F(PersistFixture, TsvSanitizesTabsAndNewlines) {
  PostStream stream;
  Post post;
  post.id = 0;
  post.author = 1;
  post.time_ms = 5;
  post.simhash = 0xABC;
  post.text = "tab\there\nnewline";
  stream.push_back(post);
  const std::string path = TempPath("dirty.tsv");
  ASSERT_TRUE(SavePostStreamTsv(stream, path));
  PostStream loaded;
  ASSERT_TRUE(LoadPostStreamTsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].text, "tab here newline");
  std::remove(path.c_str());
}

TEST_F(PersistFixture, TsvSkipsMalformedLines) {
  const std::string path = TempPath("mixed.tsv");
  ASSERT_TRUE(WriteFileAtomic(
      path,
      "id\tauthor\ttime_ms\tsimhash\ttext\n"
      "0\t1\t100\tdeadbeef\tvalid post\n"
      "garbage line without tabs\n"
      "x\ty\tz\tw\tbroken numbers\n"
      "1\t2\t200\tcafe\tanother valid\n"));
  PostStream loaded;
  ASSERT_TRUE(LoadPostStreamTsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].text, "valid post");
  EXPECT_EQ(loaded[1].simhash, 0xcafeu);
  std::remove(path.c_str());
}

TEST_F(PersistFixture, LoadRejectsWrongMagic) {
  const std::string path = TempPath("wrong_magic.bin");
  ASSERT_TRUE(SaveFollowGraph(social_, path));
  AuthorGraph graph;
  EXPECT_FALSE(LoadAuthorGraph(path, &graph));  // follow-graph magic
  CliqueCover cover;
  EXPECT_FALSE(LoadCliqueCover(path, &cover));
  std::remove(path.c_str());
}

TEST_F(PersistFixture, LoadRejectsTruncation) {
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SavePostStream(stream_, path));
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data));
  data.resize(data.size() / 2);
  ASSERT_TRUE(WriteFileAtomic(path, data));
  PostStream loaded;
  EXPECT_FALSE(LoadPostStream(path, &loaded));
  EXPECT_TRUE(loaded.empty());  // output untouched
  std::remove(path.c_str());
}

TEST_F(PersistFixture, LoadRejectsTrailingGarbage) {
  const std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(SaveAuthorGraph(graph_, path));
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data));
  data += "extra";
  ASSERT_TRUE(WriteFileAtomic(path, data));
  AuthorGraph loaded;
  EXPECT_FALSE(LoadAuthorGraph(path, &loaded));
  std::remove(path.c_str());
}

TEST_F(PersistFixture, MissingFilesFail) {
  FollowGraph follow;
  AuthorGraph graph;
  CliqueCover cover;
  PostStream stream;
  std::vector<AuthorPairSimilarity> sims;
  EXPECT_FALSE(LoadFollowGraph("/no/such/file", &follow));
  EXPECT_FALSE(LoadAuthorGraph("/no/such/file", &graph));
  EXPECT_FALSE(LoadCliqueCover("/no/such/file", &cover));
  EXPECT_FALSE(LoadPostStream("/no/such/file", &stream));
  EXPECT_FALSE(LoadPostStreamTsv("/no/such/file", &stream));
  EXPECT_FALSE(LoadSimilarities("/no/such/file", &sims));
}

TEST_F(PersistFixture, EndToEndReloadedPipelineMatches) {
  // Diversify with in-memory structures, then with reloaded ones: the
  // outputs must be identical.
  const std::string graph_path = TempPath("e2e_graph.bin");
  const std::string cover_path = TempPath("e2e_cover.bin");
  const std::string stream_path = TempPath("e2e_stream.bin");
  ASSERT_TRUE(SaveAuthorGraph(graph_, graph_path));
  ASSERT_TRUE(SaveCliqueCover(cover_, graph_.num_vertices(), cover_path));
  ASSERT_TRUE(SavePostStream(stream_, stream_path));

  AuthorGraph graph2;
  CliqueCover cover2;
  PostStream stream2;
  ASSERT_TRUE(LoadAuthorGraph(graph_path, &graph2));
  ASSERT_TRUE(LoadCliqueCover(cover_path, &cover2));
  ASSERT_TRUE(LoadPostStream(stream_path, &stream2));

  DiversityThresholds t;
  t.lambda_c = 18;
  t.lambda_t_ms = 5 * 60 * 1000;
  CliqueBinDiversifier original(t, &cover_);
  CliqueBinDiversifier reloaded(t, &cover2);
  std::vector<PostId> out_original;
  std::vector<PostId> out_reloaded;
  for (const Post& post : stream_) {
    if (original.Offer(post)) out_original.push_back(post.id);
  }
  for (const Post& post : stream2) {
    if (reloaded.Offer(post)) out_reloaded.push_back(post.id);
  }
  EXPECT_EQ(out_original, out_reloaded);

  std::remove(graph_path.c_str());
  std::remove(cover_path.c_str());
  std::remove(stream_path.c_str());
}

}  // namespace
}  // namespace firehose
