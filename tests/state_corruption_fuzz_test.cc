// Corruption fuzz for diversifier snapshots: SaveState bytes damaged by
// a bit flip at every byte offset, or truncated at every byte offset,
// must make LoadState return false — never crash, never silently accept —
// and must leave the engine usable (it can still Offer posts and produce
// a fresh valid snapshot afterwards). Runs under ASan in the sanitizer
// presets, so out-of-bounds reads on damaged input become hard failures.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cosine_unibin.h"
#include "src/core/engine.h"
#include "src/util/binary.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

struct Target {
  std::string name;
  std::unique_ptr<Diversifier> engine;   // snapshot source
  std::unique_ptr<Diversifier> victim;   // corrupted loads go here
  std::function<std::unique_ptr<Diversifier>()> make;  // fresh instance
};

class StateCorruptionFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20260801);
    graph_ = testing_util::RandomAuthorGraph(10, 0.35, rng);
    cover_ = CliqueCover::Greedy(graph_);
    stream_ = testing_util::RandomStream(150, 10, 30, rng);
    thresholds_.lambda_c = 6;
    thresholds_.lambda_t_ms = 700;
  }

  /// All four snapshot-capable diversifiers, each warmed on the stream.
  std::vector<Target> MakeTargets() {
    std::vector<Target> targets;
    for (const Algorithm algorithm : kAllAlgorithms) {
      Target t;
      t.name = std::string(AlgorithmName(algorithm));
      t.make = [this, algorithm] {
        return MakeDiversifier(algorithm, thresholds_, &graph_, &cover_);
      };
      t.engine = t.make();
      t.victim = t.make();
      targets.push_back(std::move(t));
    }
    Target cosine;
    cosine.name = "CosineUniBin";
    cosine.make = [this]() -> std::unique_ptr<Diversifier> {
      return std::make_unique<CosineUniBinDiversifier>(thresholds_, 0.7,
                                                       &graph_);
    };
    cosine.engine = cosine.make();
    cosine.victim = cosine.make();
    targets.push_back(std::move(cosine));
    for (Target& t : targets) {
      for (const Post& post : stream_) t.engine->Offer(post);
    }
    return targets;
  }

  /// After a rejected load the victim must be fully usable: it accepts
  /// offers and a pristine snapshot still loads.
  void ExpectUsable(Diversifier* victim, const std::string& pristine,
                    const std::string& context) {
    Post probe = stream_.front();
    probe.time_ms = stream_.back().time_ms + 1;
    victim->Offer(probe);  // must not crash
    BinaryReader reader(pristine);
    EXPECT_TRUE(victim->LoadState(reader)) << context;
  }

  AuthorGraph graph_;
  CliqueCover cover_;
  PostStream stream_;
  DiversityThresholds thresholds_;
};

TEST_F(StateCorruptionFuzzTest, BitFlipAtEveryByteIsRejected) {
  for (Target& t : MakeTargets()) {
    BinaryWriter writer;
    t.engine->SaveState(&writer);
    const std::string pristine(writer.buffer());
    ASSERT_GT(pristine.size(), 16u) << t.name;

    for (size_t at = 0; at < pristine.size(); ++at) {
      std::string damaged = pristine;
      damaged[at] ^= static_cast<char>(1 << (at % 8));
      BinaryReader reader(damaged);
      EXPECT_FALSE(t.victim->LoadState(reader))
          << t.name << ": flip at byte " << at << " accepted";
    }
    ExpectUsable(t.victim.get(), pristine, t.name + " after flips");
  }
}

TEST_F(StateCorruptionFuzzTest, TruncationAtEveryByteIsRejected) {
  for (Target& t : MakeTargets()) {
    BinaryWriter writer;
    t.engine->SaveState(&writer);
    const std::string pristine(writer.buffer());

    for (size_t cut = 0; cut < pristine.size(); ++cut) {
      BinaryReader reader(std::string_view(pristine).substr(0, cut));
      EXPECT_FALSE(t.victim->LoadState(reader))
          << t.name << ": truncation to " << cut << " bytes accepted";
    }
    ExpectUsable(t.victim.get(), pristine, t.name + " after truncations");
  }
}

TEST_F(StateCorruptionFuzzTest, TrailingGarbageIsRejected) {
  for (Target& t : MakeTargets()) {
    BinaryWriter writer;
    t.engine->SaveState(&writer);
    // The CRC envelope is length-prefixed, so extra bytes after it are
    // someone else's data; LoadState itself must not consume or trip on
    // them — but a flipped length that *claims* them must fail the CRC.
    std::string padded(writer.buffer());
    padded += "garbage";
    BinaryReader reader(padded);
    EXPECT_TRUE(t.victim->LoadState(reader)) << t.name;
    EXPECT_EQ(reader.remaining(), 7u) << t.name;
  }
}

TEST_F(StateCorruptionFuzzTest, RejectedLoadResetsToEmpty) {
  // A failed load may not leave half-loaded bins behind: the victim's
  // decisions afterwards must match a brand-new instance, not a hybrid.
  for (Target& t : MakeTargets()) {
    BinaryWriter writer;
    t.engine->SaveState(&writer);
    std::string damaged(writer.buffer());
    damaged[damaged.size() / 2] ^= 0x10;
    BinaryReader reader(damaged);
    ASSERT_FALSE(t.victim->LoadState(reader)) << t.name;

    auto fresh = t.make();
    for (const Post& post : stream_) {
      EXPECT_EQ(t.victim->Offer(post), fresh->Offer(post)) << t.name;
    }
  }
}

}  // namespace
}  // namespace firehose
