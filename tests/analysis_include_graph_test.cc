// Include-graph, layer-config and layering/cycle-pass tests over
// synthetic file sets — including the acceptance case: a deliberate
// util -> core include must be rejected by the layering pass.

#include "src/analysis/include_graph.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"

namespace firehose {
namespace analysis {
namespace {

// The production DAG prefix, small enough to reason about in tests.
constexpr const char* kLayers =
    "# test DAG\n"
    "util:\n"
    "obs:\n"
    "text: util\n"
    "core: text util obs\n"
    "tools: *\n";

AnalysisResult RunAnalysis(const std::vector<SourceFile>& files,
                   const std::string& layers,
                   const std::set<std::string>& checks = {}) {
  AnalysisOptions options;
  options.layers_text = layers;
  options.checks = checks;
  return Analyze(files, options);
}

TEST(ModuleOfTest, AssignsModules) {
  EXPECT_EQ(ModuleOf("src/core/engine.h"), "core");
  EXPECT_EQ(ModuleOf("src/util/random.cc"), "util");
  EXPECT_EQ(ModuleOf("src/firehose.h"), "api");
  EXPECT_EQ(ModuleOf("tools/firehose_analyze.cc"), "tools");
  EXPECT_EQ(ModuleOf("tests/foo_test.cc"), "tests");
  EXPECT_EQ(ModuleOf("bench/micro.cc"), "bench");
}

TEST(IncludeGraphTest, ResolvesInternalIncludesOnly) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", "#ifndef A\n#define A\n#endif\n"},
      {"src/text/b.h",
       "#ifndef B\n#define B\n#include <vector>\n#include \"src/util/a.h\"\n"
       "#include \"src/missing.h\"\n#endif\n"},
  };
  const IncludeGraph graph = BuildIncludeGraph(files);
  ASSERT_EQ(graph.files.size(), 2u);
  const int b = graph.Find("src/text/b.h");
  ASSERT_GE(b, 0);
  const FileNode& node = graph.files[b];
  ASSERT_EQ(node.includes.size(), 3u);
  EXPECT_TRUE(node.includes[0].system);
  EXPECT_EQ(node.includes[0].resolved, -1);
  EXPECT_FALSE(node.includes[1].system);
  EXPECT_EQ(node.includes[1].target, "src/util/a.h");
  ASSERT_GE(node.includes[1].resolved, 0);
  EXPECT_EQ(graph.files[node.includes[1].resolved].path, "src/util/a.h");
  EXPECT_EQ(node.includes[2].resolved, -1);  // not part of the analyzed set
  EXPECT_EQ(graph.Find("src/nope.h"), -1);
}

TEST(IncludeGraphTest, ModuleEdgesSkipSelf) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", ""},
      {"src/util/b.h", "#include \"src/util/a.h\"\n"},
      {"src/text/c.h", "#include \"src/util/a.h\"\n"},
  };
  const IncludeGraph graph = BuildIncludeGraph(files);
  EXPECT_EQ(graph.module_edges.count("util"), 0u);  // self-edge omitted
  ASSERT_EQ(graph.module_edges.count("text"), 1u);
  EXPECT_EQ(graph.module_edges.at("text"), std::set<std::string>{"util"});
}

TEST(LayerConfigTest, ParsesDagAndWildcard) {
  LayerConfig config;
  std::string error;
  ASSERT_TRUE(ParseLayerConfig(kLayers, &config, &error)) << error;
  EXPECT_EQ(config.order,
            (std::vector<std::string>{"util", "obs", "text", "core", "tools"}));
  EXPECT_TRUE(config.rules.at("util").allowed.empty());
  EXPECT_FALSE(config.rules.at("util").any);
  EXPECT_EQ(config.rules.at("core").allowed,
            (std::set<std::string>{"text", "util", "obs"}));
  EXPECT_TRUE(config.rules.at("tools").any);
}

TEST(LayerConfigTest, RejectsDuplicateModule) {
  LayerConfig config;
  std::string error;
  EXPECT_FALSE(ParseLayerConfig("util:\nutil:\n", &config, &error));
  EXPECT_NE(error.find("util"), std::string::npos);
}

TEST(LayerConfigTest, RejectsUndeclaredDep) {
  LayerConfig config;
  std::string error;
  EXPECT_FALSE(ParseLayerConfig("text: util\n", &config, &error));
  EXPECT_NE(error.find("util"), std::string::npos);
}

TEST(LayerConfigTest, RejectsForwardDepSoDeclaredGraphStaysADag) {
  // `util: text` before text is declared would let the file express a
  // cycle (util -> text -> util); the earlier-lines-only rule forbids it.
  LayerConfig config;
  std::string error;
  EXPECT_FALSE(ParseLayerConfig("util: text\ntext: util\n", &config, &error));
}

// --- the acceptance case -----------------------------------------------------

TEST(LayeringPassTest, RejectsDeliberateUtilToCoreInclude) {
  const std::vector<SourceFile> files = {
      {"src/core/engine.h", "#ifndef E\n#define E\nint Engine();\n#endif\n"},
      {"src/util/bad.h",
       "#ifndef B\n#define B\n#include \"src/core/engine.h\"\n#endif\n"},
  };
  const AnalysisResult result = RunAnalysis(files, kLayers, {"layering"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings[0];
  EXPECT_EQ(finding.check, "layering");
  EXPECT_EQ(finding.path, "src/util/bad.h");
  EXPECT_EQ(finding.line, 3);
  EXPECT_NE(finding.message.find("util -> core"), std::string::npos);
}

TEST(LayeringPassTest, AllowsDeclaredEdgesAndWildcard) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", ""},
      {"src/core/engine.h", "#include \"src/util/a.h\"\n"},
      {"tools/tool.cc", "#include \"src/core/engine.h\"\n"},
  };
  const AnalysisResult result = RunAnalysis(files, kLayers, {"layering"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(LayeringPassTest, FlagsModuleMissingFromLayersFile) {
  const std::vector<SourceFile> files = {
      {"src/mystery/x.h", ""},
  };
  const AnalysisResult result = RunAnalysis(files, kLayers, {"layering"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "layering");
  EXPECT_NE(result.findings[0].message.find("mystery"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("no entry"), std::string::npos);
}

TEST(LayeringPassTest, EmptyLayersTextDisablesPass) {
  const std::vector<SourceFile> files = {
      {"src/core/engine.h", ""},
      {"src/util/bad.h", "#include \"src/core/engine.h\"\n"},
  };
  const AnalysisResult result = RunAnalysis(files, "", {"layering"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(LayeringPassTest, BadLayersFileIsConfigurationError) {
  const std::vector<SourceFile> files = {{"src/util/a.h", ""}};
  const AnalysisResult result = RunAnalysis(files, "util: nope\n", {"layering"});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

// --- include cycles ----------------------------------------------------------

TEST(IncludeCycleTest, ReportsTwoFileCycleOnce) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", "#include \"src/util/b.h\"\n"},
      {"src/util/b.h", "#include \"src/util/a.h\"\n"},
  };
  const AnalysisResult result = RunAnalysis(files, "", {"include-cycle"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "include-cycle");
  EXPECT_NE(result.findings[0].message.find("src/util/a.h"),
            std::string::npos);
  EXPECT_NE(result.findings[0].message.find("src/util/b.h"),
            std::string::npos);
}

TEST(IncludeCycleTest, ReportsTransitiveCycle) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", "#include \"src/util/b.h\"\n"},
      {"src/util/b.h", "#include \"src/util/c.h\"\n"},
      {"src/util/c.h", "#include \"src/util/a.h\"\n"},
  };
  const AnalysisResult result = RunAnalysis(files, "", {"include-cycle"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("src/util/c.h"),
            std::string::npos);
}

TEST(IncludeCycleTest, AcyclicChainIsClean) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", ""},
      {"src/util/b.h", "#include \"src/util/a.h\"\n"},
      {"src/util/c.h", "#include \"src/util/a.h\"\n#include \"src/util/b.h\"\n"},
  };
  const AnalysisResult result = RunAnalysis(files, "", {"include-cycle"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
