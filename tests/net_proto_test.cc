// Wire-protocol hardening tests (src/net/proto): every message type
// round-trips; truncating a valid frame at EVERY byte boundary reads as
// kNeedMore (a prefix, never a spurious message); flipping ANY bit is
// caught by the CRC or the header validation; oversized lengths,
// foreign versions, unknown types and trailing body bytes are all
// rejected with no partial credit — the same no-partial-credit contract
// persist.cc enforces for state files, applied to the socket.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/firehose.h"

namespace firehose {
namespace net {
namespace {

Post MakePost(PostId id) {
  Post post;
  post.id = id;
  post.author = static_cast<AuthorId>(id % 17);
  post.time_ms = static_cast<int64_t>(id) * 1000;
  post.simhash = 0x0123456789abcdefull ^ id;
  post.text = "post #" + std::to_string(id);
  return post;
}

/// One representative message per MsgType, exercising every field.
std::vector<NetMessage> AllMessageTypes() {
  std::vector<NetMessage> all;

  NetMessage hello;
  hello.type = MsgType::kHello;
  hello.magic = kHelloMagic;
  hello.min_version = 1;
  hello.max_version = 3;
  hello.client_name = "proto-test";
  all.push_back(hello);

  NetMessage assign;
  assign.type = MsgType::kAssign;
  assign.version = kWireVersion;
  assign.num_shards = 7;
  assign.sealed = true;
  assign.posts_ingested = 123456789ull;
  all.push_back(assign);

  NetMessage follow;
  follow.type = MsgType::kFollow;
  follow.user = 42;
  follow.author = 99;
  all.push_back(follow);

  NetMessage seal;
  seal.type = MsgType::kSeal;
  seal.num_users = 298;
  all.push_back(seal);

  NetMessage post;
  post.type = MsgType::kPost;
  post.post = MakePost(31337);
  all.push_back(post);

  NetMessage poll;
  poll.type = MsgType::kPoll;
  poll.user = 17;
  poll.since = 256;
  all.push_back(poll);

  NetMessage timeline;
  timeline.type = MsgType::kTimeline;
  timeline.user = 17;
  timeline.post_ids = {3, 1 << 20, 0xffffffffull, 7};
  all.push_back(timeline);

  NetMessage flush;
  flush.type = MsgType::kFlush;
  all.push_back(flush);

  NetMessage flush_ack;
  flush_ack.type = MsgType::kFlushAck;
  flush_ack.ingested = 4242;
  flush_ack.duplicates = 17;
  all.push_back(flush_ack);

  NetMessage shutdown;
  shutdown.type = MsgType::kShutdown;
  all.push_back(shutdown);

  NetMessage error;
  error.type = MsgType::kError;
  error.error = "something went wrong";
  all.push_back(error);

  return all;
}

void ExpectEqual(const NetMessage& want, const NetMessage& got) {
  ASSERT_EQ(want.type, got.type);
  EXPECT_EQ(want.magic, got.magic);
  EXPECT_EQ(want.min_version, got.min_version);
  EXPECT_EQ(want.max_version, got.max_version);
  EXPECT_EQ(want.client_name, got.client_name);
  EXPECT_EQ(want.version, got.version);
  EXPECT_EQ(want.num_shards, got.num_shards);
  EXPECT_EQ(want.sealed, got.sealed);
  EXPECT_EQ(want.posts_ingested, got.posts_ingested);
  EXPECT_EQ(want.user, got.user);
  EXPECT_EQ(want.author, got.author);
  EXPECT_EQ(want.since, got.since);
  EXPECT_EQ(want.post_ids, got.post_ids);
  EXPECT_EQ(want.num_users, got.num_users);
  EXPECT_EQ(want.post.id, got.post.id);
  EXPECT_EQ(want.post.author, got.post.author);
  EXPECT_EQ(want.post.time_ms, got.post.time_ms);
  EXPECT_EQ(want.post.simhash, got.post.simhash);
  EXPECT_EQ(want.post.text, got.post.text);
  EXPECT_EQ(want.ingested, got.ingested);
  EXPECT_EQ(want.duplicates, got.duplicates);
  EXPECT_EQ(want.error, got.error);
}

TEST(NetProtoTest, EveryMessageTypeRoundTrips) {
  for (const NetMessage& message : AllMessageTypes()) {
    std::string wire;
    AppendMessage(message, &wire);
    ASSERT_GE(wire.size(), dur::kFrameHeaderBytes + 2)
        << "type " << static_cast<int>(message.type);

    NetMessage decoded;
    size_t next = 0;
    ASSERT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kOk)
        << "type " << static_cast<int>(message.type);
    EXPECT_EQ(next, wire.size());
    ExpectEqual(message, decoded);
  }
}

TEST(NetProtoTest, BackToBackMessagesDecodeInSequence) {
  const std::vector<NetMessage> all = AllMessageTypes();
  std::string wire;
  for (const NetMessage& message : all) AppendMessage(message, &wire);

  size_t offset = 0;
  for (const NetMessage& want : all) {
    NetMessage got;
    size_t next = 0;
    ASSERT_EQ(DecodeMessage(wire, offset, &got, &next), DecodeStatus::kOk);
    ExpectEqual(want, got);
    offset = next;
  }
  EXPECT_EQ(offset, wire.size());
}

TEST(NetProtoTest, TruncationAtEveryByteIsNeedMoreNeverAMessage) {
  for (const NetMessage& message : AllMessageTypes()) {
    std::string wire;
    AppendMessage(message, &wire);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      NetMessage decoded;
      size_t next = 0;
      EXPECT_EQ(DecodeMessage(std::string_view(wire).substr(0, cut), 0,
                              &decoded, &next),
                DecodeStatus::kNeedMore)
          << "type " << static_cast<int>(message.type) << " cut at " << cut;
    }
  }
}

TEST(NetProtoTest, EveryBitFlipIsRejected) {
  // kPost carries the richest body; a single flipped bit anywhere in the
  // frame must yield kMalformed or (for length-field bits that enlarge
  // the frame) kNeedMore — never a successfully decoded message.
  NetMessage message;
  message.type = MsgType::kPost;
  message.post = MakePost(777);
  std::string wire;
  AppendMessage(message, &wire);

  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      NetMessage decoded;
      size_t next = 0;
      const DecodeStatus status = DecodeMessage(flipped, 0, &decoded, &next);
      EXPECT_NE(status, DecodeStatus::kOk)
          << "flip bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(NetProtoTest, OversizedLengthHeaderIsMalformedImmediately) {
  // A hostile 512 MiB length passes the WAL's 1 GiB cap but not the
  // network cap — and it must be rejected from the 4 header bytes alone,
  // not after buffering half a gigabyte.
  std::string wire;
  dur::PutU32Le(&wire, 512u * 1024 * 1024);
  NetMessage decoded;
  size_t next = 0;
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kMalformed);

  // Just past the cap: also malformed.
  wire.clear();
  dur::PutU32Le(&wire, kMaxNetFrameBytes + 1);
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kMalformed);

  // At the cap the header alone is merely incomplete.
  wire.clear();
  dur::PutU32Le(&wire, kMaxNetFrameBytes);
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kNeedMore);
}

TEST(NetProtoTest, ForeignWireVersionIsMalformed) {
  NetMessage message;
  message.type = MsgType::kFlush;
  std::string wire;
  AppendMessage(message, &wire);

  // Rewrite the version byte (first payload byte) and re-frame so the
  // CRC matches: the rejection must come from version validation.
  std::string payload(wire.substr(dur::kFrameHeaderBytes));
  payload[0] = static_cast<char>(kWireVersion + 1);
  std::string reframed;
  dur::AppendFrame(&reframed, payload);

  NetMessage decoded;
  size_t next = 0;
  EXPECT_EQ(DecodeMessage(reframed, 0, &decoded, &next),
            DecodeStatus::kMalformed);
}

TEST(NetProtoTest, UnknownMessageTypeIsMalformed) {
  for (const uint8_t type : {uint8_t{0}, uint8_t{12}, uint8_t{255}}) {
    std::string payload;
    payload.push_back(static_cast<char>(kWireVersion));
    payload.push_back(static_cast<char>(type));
    std::string wire;
    dur::AppendFrame(&wire, payload);

    NetMessage decoded;
    size_t next = 0;
    EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next),
              DecodeStatus::kMalformed)
        << "type byte " << static_cast<int>(type);
  }
}

TEST(NetProtoTest, TrailingBodyBytesAreMalformed) {
  // A valid kFlush body plus one stray byte, correctly framed: the body
  // decoder must insist on full consumption (AtEnd), like persist.cc.
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(MsgType::kFlush));
  payload.push_back('\x00');
  std::string wire;
  dur::AppendFrame(&wire, payload);

  NetMessage decoded;
  size_t next = 0;
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kMalformed);
}

TEST(NetProtoTest, EmptyPayloadFrameIsMalformed) {
  std::string wire;
  dur::AppendFrame(&wire, "");
  NetMessage decoded;
  size_t next = 0;
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kMalformed);
}

TEST(NetProtoTest, HostileBodiesDoNotOverallocate) {
  // A kTimeline body claiming 2^31 post ids in a tiny frame must fail
  // fast on the element cap, not attempt a 16 GiB reserve.
  BinaryWriter body;
  body.PutVarint(5);                       // user
  body.PutVarint(0x80000000ull);           // claimed id count
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(MsgType::kTimeline));
  payload.append(body.buffer());
  std::string wire;
  dur::AppendFrame(&wire, payload);

  NetMessage decoded;
  size_t next = 0;
  EXPECT_EQ(DecodeMessage(wire, 0, &decoded, &next), DecodeStatus::kMalformed);
}

TEST(NetProtoTest, DecodeAtNonZeroOffsetSkipsPrecedingGarbage) {
  // The reader always decodes at an exact frame boundary; bytes before
  // `offset` are already-consumed frames. Verify offset bookkeeping.
  NetMessage first;
  first.type = MsgType::kSeal;
  first.num_users = 9;
  NetMessage second;
  second.type = MsgType::kFollow;
  second.user = 1;
  second.author = 2;

  std::string wire;
  AppendMessage(first, &wire);
  const size_t boundary = wire.size();
  AppendMessage(second, &wire);

  NetMessage decoded;
  size_t next = 0;
  ASSERT_EQ(DecodeMessage(wire, boundary, &decoded, &next), DecodeStatus::kOk);
  EXPECT_EQ(decoded.type, MsgType::kFollow);
  EXPECT_EQ(next, wire.size());
}

}  // namespace
}  // namespace net
}  // namespace firehose
