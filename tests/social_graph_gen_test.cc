#include "src/gen/social_graph_gen.h"

#include <gtest/gtest.h>

#include "src/author/similarity.h"

namespace firehose {
namespace {

SocialGraphOptions SmallOptions(uint64_t seed = 1) {
  SocialGraphOptions options;
  options.num_authors = 400;
  options.num_communities = 8;
  options.avg_followees = 15.0;
  options.seed = seed;
  return options;
}

TEST(SocialGraphGenTest, DeterministicGivenSeed) {
  const FollowGraph a = GenerateSocialGraph(SmallOptions(7));
  const FollowGraph b = GenerateSocialGraph(SmallOptions(7));
  ASSERT_EQ(a.num_authors(), b.num_authors());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (AuthorId id = 0; id < a.num_authors(); ++id) {
    EXPECT_EQ(a.Followees(id), b.Followees(id));
  }
}

TEST(SocialGraphGenTest, DifferentSeedsDiffer) {
  const FollowGraph a = GenerateSocialGraph(SmallOptions(1));
  const FollowGraph b = GenerateSocialGraph(SmallOptions(2));
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(SocialGraphGenTest, EveryAuthorFollowsSomeone) {
  const FollowGraph g = GenerateSocialGraph(SmallOptions());
  for (AuthorId a = 0; a < g.num_authors(); ++a) {
    EXPECT_FALSE(g.Followees(a).empty()) << a;
  }
}

TEST(SocialGraphGenTest, MeanOutDegreeNearTarget) {
  const FollowGraph g = GenerateSocialGraph(SmallOptions());
  const double mean =
      static_cast<double>(g.num_edges()) / g.num_authors();
  // Dedup of repeated picks pushes the mean below the raw target; allow a
  // generous band.
  EXPECT_GT(mean, 15.0 * 0.4);
  EXPECT_LT(mean, 15.0 * 1.5);
}

TEST(SocialGraphGenTest, PopularAuthorsAttractMoreFollowers) {
  const FollowGraph g = GenerateSocialGraph(SmallOptions());
  // Author 0 is both a global hub and a community celebrity.
  uint64_t head = 0;
  uint64_t tail = 0;
  for (AuthorId a = 0; a < 20; ++a) head += g.Followers(a).size();
  for (AuthorId a = g.num_authors() - 20; a < g.num_authors(); ++a) {
    tail += g.Followers(a).size();
  }
  EXPECT_GT(head, tail * 2);
}

TEST(SocialGraphGenTest, IntraCommunitySimilarityExceedsInter) {
  const FollowGraph g = GenerateSocialGraph(SmallOptions());
  const SocialGraphOptions options = SmallOptions();
  double intra = 0.0;
  double inter = 0.0;
  int intra_count = 0;
  int inter_count = 0;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const AuthorId a = static_cast<AuthorId>(rng.UniformInt(g.num_authors()));
    const AuthorId b = static_cast<AuthorId>(rng.UniformInt(g.num_authors()));
    if (a == b) continue;
    const double sim = AuthorCosineSimilarity(g, a, b);
    if (CommunityOf(a, options) == CommunityOf(b, options)) {
      intra += sim;
      ++intra_count;
    } else {
      inter += sim;
      ++inter_count;
    }
  }
  ASSERT_GT(intra_count, 0);
  ASSERT_GT(inter_count, 0);
  EXPECT_GT(intra / intra_count, 2.0 * inter / inter_count);
}

TEST(SocialGraphGenTest, DegenerateSizes) {
  SocialGraphOptions options;
  options.num_authors = 0;
  EXPECT_EQ(GenerateSocialGraph(options).num_authors(), 0u);
  options.num_authors = 1;
  const FollowGraph one = GenerateSocialGraph(options);
  EXPECT_EQ(one.num_authors(), 1u);
  EXPECT_EQ(one.num_edges(), 0u);
}

TEST(SocialGraphGenTest, CommunityAssignmentIsStable) {
  const SocialGraphOptions options = SmallOptions();
  EXPECT_EQ(CommunityOf(17, options), CommunityOf(17, options));
  EXPECT_LT(CommunityOf(17, options), options.num_communities);
}

}  // namespace
}  // namespace firehose
