// Differential oracle for the batched coverage kernel: a deliberately
// naive reference diversifier (linear scan over every retained post, the
// scalar three-way cover predicate, no eviction, no pruning) is run next
// to the optimized bin algorithms on seeded gen/ streams across the
// λc/λt/λa grid. The optimized post-ID sequences must be byte-identical
// to the reference, and the kernel's comparisons-minus-pruned accounting
// must reconcile with the reference's pair-test ledger.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/author/similarity.h"
#include "src/core/cosine_unibin.h"
#include "src/core/coverage_kernel.h"
#include "src/core/engine.h"
#include "src/core/unibin.h"
#include "src/gen/social_graph_gen.h"
#include "src/gen/stream_gen.h"
#include "src/simhash/simhash.h"
#include "src/text/normalize.h"
#include "src/text/tf_vector.h"
#include "src/util/bitops.h"

namespace firehose {
namespace {

// ---------------------------------------------------------------------------
// Naive reference.

/// Ledger of the reference run. `pair_tests` counts every (new post,
/// retained post) pair the naive scan visits; `time_rejects` counts the
/// pairs dismissed on the time dimension alone. The optimized bins evict
/// expired entries instead of testing them, so for the flat-bin
/// algorithms `pair_tests - time_rejects` is exactly the kernel's
/// `comparisons` (see the accounting assertions below).
struct ReferenceResult {
  std::vector<PostId> admitted;
  uint64_t pair_tests = 0;
  uint64_t time_rejects = 0;
};

/// The naive diversifier: retains every admitted post forever and scans
/// them newest-first with the scalar predicate. `content_covers(post,
/// prior)` supplies the content dimension so the same skeleton oracles
/// both the SimHash bins and the cosine baseline.
template <typename ContentCoversFn>
ReferenceResult NaiveDiversify(const PostStream& stream,
                               const DiversityThresholds& t,
                               const AuthorGraph& graph,
                               ContentCoversFn&& content_covers) {
  std::vector<const Post*> z;
  ReferenceResult result;
  for (const Post& post : stream) {
    bool covered = false;
    for (auto it = z.rbegin(); it != z.rend(); ++it) {
      const Post* prior = *it;
      ++result.pair_tests;
      if (post.time_ms - prior->time_ms > t.lambda_t_ms) {
        ++result.time_rejects;
        continue;
      }
      if (t.use_content && !content_covers(post, *prior)) continue;
      if (t.use_author && prior->author != post.author &&
          !graph.IsNeighbor(post.author, prior->author)) {
        continue;
      }
      covered = true;
      break;
    }
    if (!covered) {
      z.push_back(&post);
      result.admitted.push_back(post.id);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Seeded gen/ workloads.

struct OracleCase {
  uint64_t seed;
  int lambda_c;
  int64_t lambda_t_ms;
  double lambda_a;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  std::ostringstream name;
  name << "s" << info.param.seed << "_c" << info.param.lambda_c << "_t"
       << info.param.lambda_t_ms / 1000 << "s_a"
       << static_cast<int>(info.param.lambda_a * 100);
  return name.str();
}

/// 60-author community graph thresholded at the case's λa: sweeping λa
/// changes which author pairs are similar, exercising the author
/// dimension of the predicate, exactly as the paper's Figure 16 sweep.
AuthorGraph OracleGraph(uint64_t seed, double lambda_a) {
  SocialGraphOptions options;
  options.num_authors = 60;
  options.num_communities = 4;
  options.avg_followees = 12.0;
  options.seed = seed;
  const FollowGraph social = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto pairs = AllPairsSimilarity(social, authors, 0.1);
  return AuthorGraph::FromSimilarities(authors, pairs, lambda_a);
}

PostStream OracleStream(const AuthorGraph& graph, uint64_t seed) {
  StreamGenOptions options;
  options.duration_ms = 10 * 60 * 1000;  // ten minutes keeps the grid fast
  options.posts_per_author = 10.0;
  options.cross_author_dup_prob = 0.15;  // dup-heavy: coverage must fire
  options.self_dup_prob = 0.05;
  options.seed = seed;
  const SimHasher hasher;
  return GenerateStream(graph, hasher, options);
}

std::vector<PostId> RunOptimized(Diversifier& diversifier,
                                 const PostStream& stream) {
  std::vector<PostId> admitted;
  for (const Post& post : stream) {
    if (diversifier.Offer(post)) admitted.push_back(post.id);
  }
  return admitted;
}

class CoverageOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(CoverageOracleTest, AllBinAlgorithmsMatchNaiveReference) {
  const OracleCase& c = GetParam();
  DiversityThresholds t;
  t.lambda_c = c.lambda_c;
  t.lambda_t_ms = c.lambda_t_ms;
  t.lambda_a = c.lambda_a;
  const AuthorGraph graph = OracleGraph(c.seed, c.lambda_a);
  const PostStream stream = OracleStream(graph, c.seed);
  ASSERT_GT(stream.size(), 100u);

  const ReferenceResult reference =
      NaiveDiversify(stream, t, graph, [&](const Post& post, const Post& prior) {
        return HammingDistance64(post.simhash, prior.simhash) <= t.lambda_c;
      });
  const uint64_t effective_tests = reference.pair_tests - reference.time_rejects;

  for (Algorithm algorithm : kAllAlgorithms) {
    auto diversifier = MakeDiversifier(algorithm, t, &graph);
    const std::vector<PostId> admitted = RunOptimized(*diversifier, stream);
    // Byte-identical output post-ID sequence.
    ASSERT_EQ(admitted, reference.admitted) << AlgorithmName(algorithm);
    const IngestStats& stats = diversifier->stats();
    EXPECT_EQ(stats.posts_out, reference.admitted.size())
        << AlgorithmName(algorithm);
    // Scalar kernel against eagerly-evicted bins: nothing is pruned.
    EXPECT_EQ(stats.pruned, 0u) << AlgorithmName(algorithm);
    switch (algorithm) {
      case Algorithm::kUniBin:
        // UniBin's bin is the reference's retained list minus expired
        // entries, scanned in the same newest-first order — its pairwise
        // test count is exactly the reference's minus the time rejects.
        EXPECT_EQ(stats.comparisons, effective_tests);
        break;
      case Algorithm::kNeighborBin:
        // Per-author bins pre-filter the author dimension, so NeighborBin
        // can only test fewer pairs than the flat reference.
        EXPECT_LE(stats.comparisons, effective_tests);
        break;
      case Algorithm::kCliqueBin:
        // A post stored in several clique bins is re-tested once per bin,
        // so no bound against the flat ledger holds in either direction;
        // output identity above is the full contract.
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverageOracleTest,
    ::testing::ValuesIn([] {
      std::vector<OracleCase> cases;
      for (uint64_t seed : {7u, 71u}) {
        for (int lambda_c : {0, 3, 10, 18}) {
          for (int64_t lambda_t_ms : {2LL * 60 * 1000, 30LL * 60 * 1000}) {
            for (double lambda_a : {0.5, 0.7, 0.9}) {
              cases.push_back(OracleCase{seed, lambda_c, lambda_t_ms, lambda_a});
            }
          }
        }
      }
      return cases;
    }()),
    CaseName);

// ---------------------------------------------------------------------------
// Cosine baseline against a cosine-predicate reference.

TEST(CoverageOracleCosineTest, CosineUniBinMatchesNaiveReference) {
  for (uint64_t seed : {5u, 55u}) {
    for (double min_cos : {0.5, 0.7}) {
      DiversityThresholds t;
      t.lambda_t_ms = 5 * 60 * 1000;
      const AuthorGraph graph = OracleGraph(seed, 0.7);
      PostStream stream = OracleStream(graph, seed);
      stream.resize(stream.size() / 2);  // dot products are pricey

      // Vectorize exactly as CosineUniBin does and retain vectors of
      // admitted posts alongside the naive z-list.
      std::vector<TfVector> vectors;
      vectors.reserve(stream.size());
      for (const Post& post : stream) {
        vectors.push_back(TfVector::FromText(Normalize(post.text)));
      }
      const ReferenceResult reference = NaiveDiversify(
          stream, t, graph, [&](const Post& post, const Post& prior) {
            return vectors[post.id].CosineSimilarity(vectors[prior.id]) >=
                   min_cos;
          });

      CosineUniBinDiversifier cosine(t, min_cos, &graph);
      const std::vector<PostId> admitted = RunOptimized(cosine, stream);
      ASSERT_EQ(admitted, reference.admitted)
          << "seed=" << seed << " min_cos=" << min_cos;
      EXPECT_EQ(cosine.stats().pruned, 0u);
      EXPECT_EQ(cosine.stats().comparisons,
                reference.pair_tests - reference.time_rejects);
    }
  }
}

// ---------------------------------------------------------------------------
// Index-routed kernel: decisions must not change, only the accounting.

TEST(CoverageOracleIndexTest, IndexedUniBinMatchesScalarDecisions) {
  DiversityThresholds t;
  t.lambda_c = 3;
  t.lambda_t_ms = 30 * 60 * 1000;  // wide window: the bin grows large
  const AuthorGraph graph = OracleGraph(9, 0.7);
  const PostStream stream = OracleStream(graph, 9);

  UniBinDiversifier scalar(t, &graph);
  const std::vector<PostId> scalar_ids = RunOptimized(scalar, stream);

  UniBinDiversifier indexed(t, &graph);
  CoverageKernelOptions options;
  options.index_min_bin_size = 64;
  indexed.set_kernel_options(options);
  const std::vector<PostId> indexed_ids = RunOptimized(indexed, stream);

  // The index is exact: identical admitted sequence, identical outputs.
  EXPECT_EQ(indexed_ids, scalar_ids);
  EXPECT_EQ(indexed.stats().posts_out, scalar.stats().posts_out);
  EXPECT_EQ(indexed.stats().insertions, scalar.stats().insertions);
  EXPECT_EQ(indexed.stats().evictions, scalar.stats().evictions);
  // Only the work split differs: the index disposes of in-window
  // candidates without pairwise tests.
  EXPECT_GT(indexed.stats().pruned, 0u);
  EXPECT_LT(indexed.stats().comparisons, scalar.stats().comparisons);
  EXPECT_EQ(scalar.stats().pruned, 0u);
}

TEST(CoverageOracleIndexTest, PaperLambda18IsInfeasibleAndFallsBackToScalar) {
  DiversityThresholds t;
  t.lambda_c = 18;  // the paper's production λc: tables explode (§3)
  t.lambda_t_ms = 30 * 60 * 1000;
  const AuthorGraph graph = OracleGraph(13, 0.7);
  const PostStream stream = OracleStream(graph, 13);

  UniBinDiversifier scalar(t, &graph);
  const std::vector<PostId> scalar_ids = RunOptimized(scalar, stream);

  UniBinDiversifier indexed(t, &graph);
  CoverageKernelOptions options;
  options.index_min_bin_size = 64;
  indexed.set_kernel_options(options);
  const std::vector<PostId> indexed_ids = RunOptimized(indexed, stream);

  // λc = 18 is rejected at build time, so the run is scalar end to end:
  // byte-identical decisions AND byte-identical accounting.
  EXPECT_EQ(indexed_ids, scalar_ids);
  EXPECT_EQ(indexed.stats().comparisons, scalar.stats().comparisons);
  EXPECT_EQ(indexed.stats().pruned, 0u);
}

}  // namespace
}  // namespace firehose
