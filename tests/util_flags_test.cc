#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesKeyValue) {
  const Flags flags = Make({"--name=value", "--count=42"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 42);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags flags = Make({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, MissingFlagsFallBack) {
  const Flags flags = Make({});
  EXPECT_FALSE(flags.Has("anything"));
  EXPECT_EQ(flags.GetString("s", "fb"), "fb");
  EXPECT_EQ(flags.GetInt("i", -7), -7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 2.5), 2.5);
  EXPECT_TRUE(flags.GetBool("b", true));
}

TEST(FlagsTest, ParsesDoubles) {
  const Flags flags = Make({"--ratio=0.25", "--neg=-1.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("neg", 0), -1.5);
}

TEST(FlagsTest, MalformedNumbersFallBack) {
  const Flags flags = Make({"--count=abc"});
  EXPECT_EQ(flags.GetInt("count", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("count", 1.5), 1.5);
}

TEST(FlagsTest, BoolVariants) {
  const Flags flags = Make({"--a=true", "--b=1", "--c=yes", "--d=false",
                            "--e=0", "--f=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
  EXPECT_FALSE(flags.GetBool("f", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags flags = Make({"input.txt", "--opt=1", "output.txt"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, UnknownFlagDetection) {
  const Flags flags = Make({"--good=1", "--typo=2"});
  const auto unknown = flags.UnknownFlags({"good", "other"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  const Flags flags = Make({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0), 2);
}

TEST(FlagsTest, EmptyValue) {
  const Flags flags = Make({"--x="});
  EXPECT_TRUE(flags.Has("x"));
  EXPECT_EQ(flags.GetString("x", "fb"), "");
}

}  // namespace
}  // namespace firehose
