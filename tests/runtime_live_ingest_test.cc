#include "src/runtime/live_ingest.h"

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

PostStream TimedStream(int num_posts, int64_t spacing_ms) {
  Rng rng(3);
  PostStream stream;
  for (int i = 0; i < num_posts; ++i) {
    Post post;
    post.id = static_cast<PostId>(i);
    post.author = static_cast<AuthorId>(i % 4);
    post.time_ms = static_cast<int64_t>(i) * spacing_ms;
    post.simhash = rng.Next();
    stream.push_back(post);
  }
  return stream;
}

TEST(LiveIngestTest, ProcessesEveryPostExactlyOnce) {
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto diversifier = MakeDiversifier(
      Algorithm::kUniBin, testing_util::PaperExampleThresholds(), &graph);
  const PostStream stream = TimedStream(2000, 100);
  LiveIngestOptions options;
  options.speedup = 1e6;  // compress instantly
  const LiveIngestReport report =
      RunLiveIngest(*diversifier, stream, options);
  EXPECT_EQ(report.posts_in, 2000u);
  EXPECT_EQ(report.posts_in, diversifier->stats().posts_in);
  EXPECT_EQ(report.posts_out, diversifier->stats().posts_out);
  EXPECT_EQ(report.queueing_latency.count, 2000u);
}

TEST(LiveIngestTest, MatchesOfflineDecisions) {
  // The threaded runtime must make the identical decisions as a plain
  // sequential pass (same posts, same order).
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  const DiversityThresholds t = testing_util::PaperExampleThresholds();
  const PostStream stream = TimedStream(3000, 10);

  auto offline = MakeDiversifier(Algorithm::kCliqueBin, t, &graph);
  for (const Post& post : stream) offline->Offer(post);

  auto live = MakeDiversifier(Algorithm::kCliqueBin, t, &graph);
  LiveIngestOptions options;
  options.speedup = 1e6;
  const LiveIngestReport report = RunLiveIngest(*live, stream, options);

  EXPECT_EQ(report.posts_out, offline->stats().posts_out);
  EXPECT_EQ(live->stats().comparisons, offline->stats().comparisons);
}

TEST(LiveIngestTest, EmptyStream) {
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto diversifier = MakeDiversifier(
      Algorithm::kUniBin, testing_util::PaperExampleThresholds(), &graph);
  const LiveIngestReport report =
      RunLiveIngest(*diversifier, {}, LiveIngestOptions{});
  EXPECT_EQ(report.posts_in, 0u);
}

TEST(LiveIngestTest, RealTimePacingRoughlyHonorsSpeedup) {
  // 50 posts spaced 100ms apart = 5s of stream; at 100x it should take
  // roughly 50ms of wall time (generously bounded for CI noise).
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto diversifier = MakeDiversifier(
      Algorithm::kUniBin, testing_util::PaperExampleThresholds(), &graph);
  const PostStream stream = TimedStream(50, 100);
  LiveIngestOptions options;
  options.speedup = 100.0;
  const LiveIngestReport report =
      RunLiveIngest(*diversifier, stream, options);
  EXPECT_GE(report.wall_ms, 30.0);
  EXPECT_LE(report.wall_ms, 2000.0);
  EXPECT_EQ(report.posts_in, 50u);
}

TEST(LiveIngestTest, TinyQueueForcesBackpressureNotLoss) {
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto diversifier = MakeDiversifier(
      Algorithm::kUniBin, testing_util::PaperExampleThresholds(), &graph);
  const PostStream stream = TimedStream(5000, 0);  // burst arrival
  LiveIngestOptions options;
  options.speedup = 1e9;
  options.queue_capacity = 2;
  const LiveIngestReport report =
      RunLiveIngest(*diversifier, stream, options);
  EXPECT_EQ(report.posts_in, 5000u);  // nothing dropped
  EXPECT_LE(report.queue_high_water, 2u + 1u);
}

}  // namespace
}  // namespace firehose
