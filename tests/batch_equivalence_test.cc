// Batch-vs-single equivalence property tests: OfferBatch must be an
// exact semantic alias for per-post Offer — identical admitted
// timelines, identical counters, byte-identical SaveState snapshots —
// for every diversifier and both multi-user engines, across random
// burst sizes that straddle λt eviction boundaries. This is the
// contract that lets the runtime layers (pipeline, live ingest, shard
// workers) batch opportunistically without changing results.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cosine_unibin.h"
#include "src/core/engine.h"
#include "src/core/multi_user.h"
#include "src/util/binary.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::RandomAuthorGraph;
using testing_util::RandomStream;

// Random burst partition of [0, n): mostly small bursts, with occasional
// jumps up to 4096 so large bursts cross many eviction boundaries.
std::vector<size_t> RandomBurstSizes(size_t n, Rng& rng) {
  std::vector<size_t> sizes;
  size_t remaining = n;
  while (remaining > 0) {
    size_t burst;
    switch (rng.UniformInt(4)) {
      case 0:
        burst = 1;
        break;
      case 1:
        burst = 1 + static_cast<size_t>(rng.UniformInt(8));
        break;
      case 2:
        burst = 1 + static_cast<size_t>(rng.UniformInt(128));
        break;
      default:
        burst = 1 + static_cast<size_t>(rng.UniformInt(4096));
    }
    burst = std::min(burst, remaining);
    sizes.push_back(burst);
    remaining -= burst;
  }
  return sizes;
}

void ExpectStatsEqual(const IngestStats& a, const IngestStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.posts_in, b.posts_in) << label;
  EXPECT_EQ(a.posts_out, b.posts_out) << label;
  EXPECT_EQ(a.comparisons, b.comparisons) << label;
  EXPECT_EQ(a.insertions, b.insertions) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.pruned, b.pruned) << label;
}

std::string Snapshot(const Diversifier& diversifier) {
  BinaryWriter out;
  diversifier.SaveState(&out);
  return out.buffer();
}

// Drives `single` per post and `batched` in random bursts over the same
// stream, checking the admitted bitmap post-by-post and the final
// stats + snapshot.
void CheckDiversifierPair(Diversifier& single, Diversifier& batched,
                          const PostStream& stream, Rng& rng,
                          const std::string& label) {
  std::vector<uint8_t> admitted_single(stream.size(), 0);
  for (size_t i = 0; i < stream.size(); ++i) {
    admitted_single[i] = single.Offer(stream[i]) ? 1 : 0;
  }

  std::vector<uint8_t> admitted;
  size_t start = 0;
  size_t total_out = 0;
  for (const size_t burst : RandomBurstSizes(stream.size(), rng)) {
    const std::span<const Post> posts(&stream[start], burst);
    const size_t delivered = batched.OfferBatch(posts, &admitted);
    ASSERT_EQ(admitted.size(), burst) << label;
    size_t bitmap_count = 0;
    for (size_t i = 0; i < burst; ++i) {
      EXPECT_EQ(admitted[i], admitted_single[start + i])
          << label << " post=" << start + i << " burst=" << burst;
      bitmap_count += admitted[i];
    }
    EXPECT_EQ(delivered, bitmap_count) << label;  // return matches bitmap
    total_out += delivered;
    start += burst;
  }

  const IngestStats& s = single.stats();
  const IngestStats& b = batched.stats();
  ExpectStatsEqual(s, b, label);
  // Metrics reconciliation: every offered post is admitted or suppressed,
  // and the kernel ledger accounts for every candidate considered.
  EXPECT_EQ(b.posts_in, stream.size()) << label;
  EXPECT_EQ(b.posts_out, total_out) << label;
  EXPECT_LE(b.posts_out, b.posts_in) << label;

  EXPECT_EQ(Snapshot(single), Snapshot(batched))
      << label << ": SaveState bytes diverged";
}

class BatchEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEquivalenceTest, BinDiversifiersMatchPerPostOffer) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    const int num_authors = 6 + static_cast<int>(rng.UniformInt(20));
    const AuthorGraph graph = RandomAuthorGraph(num_authors, 0.3, rng);
    DiversityThresholds t;
    t.lambda_c = 1 + static_cast<int>(rng.UniformInt(12));
    // Small λt relative to the stream span so bursts straddle eviction
    // boundaries (a 4096-post burst covers many full windows).
    t.lambda_t_ms = 50 + static_cast<int64_t>(rng.UniformInt(400));
    const PostStream stream = RandomStream(
        3000 + static_cast<int>(rng.UniformInt(3000)), num_authors, 20, rng);

    for (Algorithm algorithm : kAllAlgorithms) {
      auto single = MakeDiversifier(algorithm, t, &graph);
      auto batched = MakeDiversifier(algorithm, t, &graph);
      CheckDiversifierPair(*single, *batched, stream, rng,
                           std::string(AlgorithmName(algorithm)) +
                               " seed=" + std::to_string(GetParam()) +
                               " round=" + std::to_string(round));
    }
  }
}

TEST_P(BatchEquivalenceTest, CosineUniBinMatchesPerPostOffer) {
  Rng rng(GetParam() ^ 0xC05);
  const int num_authors = 12;
  const AuthorGraph graph = RandomAuthorGraph(num_authors, 0.3, rng);
  DiversityThresholds t;
  t.lambda_t_ms = 200;
  // Small word pool so near-duplicate texts (and so cosine coverage)
  // are common.
  const char* kWords[] = {"election", "result",  "storm",  "warning",
                          "market",   "rally",   "launch", "delay",
                          "outage",   "restored"};
  PostStream stream;
  int64_t now = 0;
  for (int i = 0; i < 1500; ++i) {
    Post post;
    post.id = static_cast<PostId>(i);
    post.author = static_cast<AuthorId>(rng.UniformInt(num_authors));
    now += static_cast<int64_t>(rng.UniformInt(15));
    post.time_ms = now;
    std::string text;
    const int len = 3 + static_cast<int>(rng.UniformInt(6));
    for (int w = 0; w < len; ++w) {
      if (!text.empty()) text.push_back(' ');
      text += kWords[rng.UniformInt(std::size(kWords))];
    }
    post.text = std::move(text);
    stream.push_back(std::move(post));
  }

  CosineUniBinDiversifier single(t, 0.7, &graph);
  CosineUniBinDiversifier batched(t, 0.7, &graph);
  CheckDiversifierPair(single, batched, stream, rng,
                       "CosineUniBin seed=" + std::to_string(GetParam()));
}

// Overlapping-subscription user population (hub copies) so the S engine
// actually shares components.
std::vector<User> OverlappingUsers(int num_users, int num_authors, Rng& rng) {
  std::vector<std::vector<AuthorId>> hubs(3);
  for (auto& hub : hubs) {
    const int hub_size = 2 + static_cast<int>(rng.UniformInt(5));
    for (int i = 0; i < hub_size; ++i) {
      hub.push_back(static_cast<AuthorId>(rng.UniformInt(num_authors)));
    }
    std::sort(hub.begin(), hub.end());
    hub.erase(std::unique(hub.begin(), hub.end()), hub.end());
  }
  std::vector<User> users;
  for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
    std::vector<AuthorId> subs = hubs[rng.UniformInt(hubs.size())];
    const int extra = static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < extra; ++i) {
      subs.push_back(static_cast<AuthorId>(rng.UniformInt(num_authors)));
    }
    std::sort(subs.begin(), subs.end());
    subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
    users.push_back(User{u, std::move(subs), std::nullopt});
  }
  return users;
}

TEST_P(BatchEquivalenceTest, MultiUserEnginesMatchPerPostOffer) {
  Rng rng(GetParam() * 31 + 7);
  const int num_authors = 16;
  const AuthorGraph graph = RandomAuthorGraph(num_authors, 0.25, rng);
  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 300;
  const std::vector<User> users = OverlappingUsers(8, num_authors, rng);
  const PostStream stream = RandomStream(2500, num_authors, 20, rng);

  for (Algorithm algorithm : kAllAlgorithms) {
    for (const bool shared : {false, true}) {
      auto single = shared ? MakeSUserEngine(algorithm, t, graph, users)
                           : MakeMUserEngine(algorithm, t, graph, users);
      auto batched = shared ? MakeSUserEngine(algorithm, t, graph, users)
                            : MakeMUserEngine(algorithm, t, graph, users);
      const std::string label = std::string(AlgorithmName(algorithm)) +
                                (shared ? "/S" : "/M") +
                                " seed=" + std::to_string(GetParam());

      // Per-post twin: deliveries as (post_index, user) pairs.
      std::vector<std::pair<uint32_t, UserId>> single_deliveries;
      std::vector<UserId> delivered;
      for (size_t i = 0; i < stream.size(); ++i) {
        single->Offer(stream[i], &delivered);
        for (UserId user : delivered) {
          single_deliveries.emplace_back(static_cast<uint32_t>(i), user);
        }
      }

      // Batched twin over random bursts.
      std::vector<std::pair<uint32_t, UserId>> batch_deliveries;
      std::vector<MultiUserEngine::BatchDelivery> burst_deliveries;
      size_t start = 0;
      for (const size_t burst : RandomBurstSizes(stream.size(), rng)) {
        const std::span<const Post> posts(&stream[start], burst);
        const size_t count =
            batched->OfferBatch(posts, &burst_deliveries);
        ASSERT_EQ(count, burst_deliveries.size()) << label;
        for (const MultiUserEngine::BatchDelivery& d : burst_deliveries) {
          ASSERT_LT(d.post_index, burst) << label;
          batch_deliveries.emplace_back(
              static_cast<uint32_t>(start + d.post_index), d.user);
        }
        start += burst;
      }

      ASSERT_EQ(single_deliveries, batch_deliveries) << label;
      ExpectStatsEqual(single->AggregateStats(), batched->AggregateStats(),
                       label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalenceTest,
                         ::testing::Values(1u, 42u, 20260808u));

}  // namespace
}  // namespace firehose
