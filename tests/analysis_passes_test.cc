// Pass-level tests on synthetic file sets: unchecked-error statement
// analysis, IWYU-lite unused includes, the token-aware seam/hygiene
// checks (no false positives from strings or comments — the reason the
// regex lint was replaced), and the `firehose-lint: allow(...)` hatch.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"

namespace firehose {
namespace analysis {
namespace {

AnalysisResult RunAnalysis(const std::vector<SourceFile>& files,
                           const std::set<std::string>& checks) {
  AnalysisOptions options;
  options.checks = checks;
  return Analyze(files, options);
}

// A src/dur header declaring one must-check API for the tests below.
const SourceFile kDurApi = {
    "src/dur/api.h",
    "#ifndef FIREHOSE_DUR_API_H_\n"
    "#define FIREHOSE_DUR_API_H_\n"
    "[[nodiscard]] bool Commit(int fd);\n"
    "#endif  // FIREHOSE_DUR_API_H_\n"};

// --- unchecked-error ---------------------------------------------------------

TEST(UncheckedErrorTest, FlagsDiscardedStatementCall) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi, {"src/dur/use.cc", "void F() {\n  Commit(1);\n}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "unchecked-error");
  EXPECT_EQ(result.findings[0].path, "src/dur/use.cc");
  EXPECT_EQ(result.findings[0].line, 2);
  EXPECT_NE(result.findings[0].message.find("Commit"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("src/dur/api.h"),
            std::string::npos);
}

TEST(UncheckedErrorTest, FlagsDiscardedChainedCall) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi,
       {"src/dur/use.cc", "void F(S* s) {\n  s->session.Commit(1);\n}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
}

TEST(UncheckedErrorTest, ConsumedResultsAreClean) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi,
       {"src/dur/use.cc",
        "bool F() {\n"
        "  if (!Commit(1)) return false;\n"
        "  bool ok = Commit(2);\n"
        "  return ok && Commit(3);\n"
        "}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(UncheckedErrorTest, VoidCastIsExplicitDiscard) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi, {"src/dur/use.cc", "void F() {\n  (void)Commit(1);\n}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(UncheckedErrorTest, TernaryArmIsConsumed) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi,
       {"src/dur/use.cc",
        "int F(bool ok) {\n  int r = ok ? 0 : Commit(1);\n  return r;\n}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(UncheckedErrorTest, CaseLabelBodyIsDiscarded) {
  const AnalysisResult result = RunAnalysis(
      {kDurApi,
       {"src/dur/use.cc",
        "void F(int m) {\n"
        "  switch (m) {\n"
        "    case 1: Commit(1); break;\n"
        "  }\n"
        "}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 3);
}

TEST(UncheckedErrorTest, TestsDirectoryIsOutOfScope) {
  // Only src/ and tools/ are held to the discipline; tests assert what
  // they need to and gtest macros consume most results anyway.
  const AnalysisResult result = RunAnalysis(
      {kDurApi, {"tests/use_test.cc", "void F() {\n  Commit(1);\n}\n"}},
      {"unchecked-error"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// --- unused-include ----------------------------------------------------------

const SourceFile kHelper = {
    "src/util/helper.h",
    "#ifndef FIREHOSE_UTIL_HELPER_H_\n"
    "#define FIREHOSE_UTIL_HELPER_H_\n"
    "int Frobnicate(int x);\n"
    "#endif  // FIREHOSE_UTIL_HELPER_H_\n"};

TEST(UnusedIncludeTest, FlagsIncludeWithNoReferencedName) {
  const AnalysisResult result = RunAnalysis(
      {kHelper,
       {"src/text/user.cc",
        "#include \"src/util/helper.h\"\nint Other() { return 1; }\n"}},
      {"unused-include"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "unused-include");
  EXPECT_EQ(result.findings[0].path, "src/text/user.cc");
  EXPECT_EQ(result.findings[0].line, 1);
}

TEST(UnusedIncludeTest, ReferencedIncludeIsClean) {
  const AnalysisResult result = RunAnalysis(
      {kHelper,
       {"src/text/user.cc",
        "#include \"src/util/helper.h\"\n"
        "int Twice(int x) { return Frobnicate(x) * 2; }\n"}},
      {"unused-include"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(UnusedIncludeTest, PrimaryHeaderIsAlwaysKept) {
  const AnalysisResult result = RunAnalysis(
      {{"src/text/user.h",
        "#ifndef U\n#define U\nint Unrelated();\n#endif\n"},
       {"src/text/user.cc",
        "#include \"src/text/user.h\"\nint Other() { return 1; }\n"}},
      {"unused-include"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// --- token-aware hygiene: strings and comments cannot trip checks ------------

TEST(BannedNondeterminismTest, FlagsRealCallsOnly) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/r.cc",
        "// rand() in a comment\n"
        "const char* kDoc = \"call rand() for chaos\";\n"
        "int F() { return rand(); }\n"
        "std::random_device MakeSeed();\n"}},
      {"banned-nondeterminism"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].line, 3);  // the real rand() call
  EXPECT_EQ(result.findings[1].line, 4);  // std::random_device
}

TEST(BannedNondeterminismTest, UtilRandomIsExempt) {
  const AnalysisResult result = RunAnalysis(
      {{"src/util/random.cc", "int F() { return rand(); }\n"}},
      {"banned-nondeterminism"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(DurSeamTest, FlagsFileMutationOutsideIoAndDur) {
  const std::string body =
      "// fopen(path) is fine here\n"
      "const char* kMsg = \"fopen(\";\n"
      "void F(const char* p) { std::fopen(p, \"w\"); }\n";
  const AnalysisResult bad =
      RunAnalysis({{"src/core/x.cc", body}}, {"dur-seam"});
  ASSERT_TRUE(bad.ok) << bad.error;
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].check, "dur-seam");
  EXPECT_EQ(bad.findings[0].line, 3);

  // The same bytes are sanctioned inside the two file-owning modules,
  // and in the logger's stderr sink (a terminal stream, not durable
  // state).
  EXPECT_TRUE(RunAnalysis({{"src/io/x.cc", body}}, {"dur-seam"}).findings.empty());
  EXPECT_TRUE(RunAnalysis({{"src/dur/x.cc", body}}, {"dur-seam"}).findings.empty());
  EXPECT_TRUE(
      RunAnalysis({{"src/obs/log.cc", body}}, {"dur-seam"}).findings.empty());
}

TEST(ObsSeamTest, FlagsTimeOutsideClockSeam) {
  const std::string body = "uint64_t Now() { return std::chrono::foo(); }\n";
  const AnalysisResult bad =
      RunAnalysis({{"src/obs/metrics_extra.cc", body}}, {"obs-seam"});
  ASSERT_TRUE(bad.ok) << bad.error;
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].check, "obs-seam");
  // obs/clock.* is the sanctioned wrapper; other modules are out of scope.
  EXPECT_TRUE(RunAnalysis({{"src/obs/clock.cc", body}}, {"obs-seam"}).findings.empty());
  EXPECT_TRUE(RunAnalysis({{"src/core/x.cc", body}}, {"obs-seam"}).findings.empty());
}

TEST(ObsSeamTest, LogSinkOwnsTheStderrSeam) {
  // The default log sink is the one sanctioned fwrite in src/obs; any
  // other obs file doing stdio is still a violation.
  const std::string body =
      "void Sink(const char* p, size_t n) { std::fwrite(p, 1, n, stderr); }\n";
  EXPECT_TRUE(
      RunAnalysis({{"src/obs/log.cc", body}}, {"obs-seam"}).findings.empty());
  const AnalysisResult bad =
      RunAnalysis({{"src/obs/metrics_extra.cc", body}}, {"obs-seam"});
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].check, "obs-seam");
}

TEST(IncludeGuardTest, EnforcesIfndefGuards) {
  const AnalysisResult pragma = RunAnalysis(
      {{"src/util/g.h", "#pragma once\nint F();\n"}}, {"include-guard"});
  ASSERT_EQ(pragma.findings.size(), 1u);
  EXPECT_NE(pragma.findings[0].message.find("pragma"), std::string::npos);

  const AnalysisResult missing =
      RunAnalysis({{"src/util/g.h", "int F();\n"}}, {"include-guard"});
  ASSERT_EQ(missing.findings.size(), 1u);

  const AnalysisResult good = RunAnalysis(
      {{"src/util/g.h",
        "#ifndef FIREHOSE_UTIL_G_H_\n#define FIREHOSE_UTIL_G_H_\n"
        "int F();\n#endif  // FIREHOSE_UTIL_G_H_\n"}},
      {"include-guard"});
  EXPECT_TRUE(good.findings.empty());
}

TEST(RawNewDeleteTest, FlagsRawButNotDeletedFunctions) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/n.cc",
        "struct S {\n"
        "  S(const S&) = delete;\n"
        "};\n"
        "int* Make() { return new int(3); }\n"}},
      {"raw-new-delete"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_NE(result.findings[0].message.find("new"), std::string::npos);
}

TEST(UnorderedIterationTest, FlagsOutputFeedingLoop) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/u.cc",
        "std::unordered_map<int, int> counts_;\n"
        "void Dump(std::vector<int>* out) {\n"
        "  for (const auto& kv : counts_) {\n"
        "    out->push_back(kv.first);\n"
        "  }\n"
        "}\n"}},
      {"unordered-iteration"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "unordered-iteration");
  EXPECT_EQ(result.findings[0].line, 3);
}

TEST(UnorderedIterationTest, NonOutputLoopIsClean) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/u.cc",
        "std::unordered_map<int, int> counts_;\n"
        "int Sum() {\n"
        "  int total = 0;\n"
        "  for (const auto& kv : counts_) total += kv.second;\n"
        "  return total;\n"
        "}\n"}},
      {"unordered-iteration"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// --- suppressions ------------------------------------------------------------

TEST(SuppressionTest, TrailingAllowCommentSuppresses) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/n.cc",
        "int* Make() { return new int; }  "
        "// firehose-lint: allow(raw-new-delete)\n"}},
      {"raw-new-delete"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(SuppressionTest, PrecedingLineAllowCommentSuppresses) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/n.cc",
        "// firehose-lint: allow(raw-new-delete)\n"
        "int* Make() { return new int; }\n"}},
      {"raw-new-delete"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(SuppressionTest, WrongCheckNameDoesNotSuppress) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/n.cc",
        "// firehose-lint: allow(dur-seam)\n"
        "int* Make() { return new int; }\n"}},
      {"raw-new-delete"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.findings.size(), 1u);
}

// --- driver plumbing ---------------------------------------------------------

TEST(AnalyzeTest, UnknownCheckNameIsConfigurationError) {
  const AnalysisResult result =
      RunAnalysis({{"src/core/x.cc", "int a;\n"}}, {"no-such-check"});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no-such-check"), std::string::npos);
}

TEST(AnalyzeTest, FindingsAreSortedByPathLineCheck) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/b.cc", "int* A() { return new int; }\n"},
       {"src/core/a.cc",
        "int* B() { return new int; }\nint* C() { return new int; }\n"}},
      {"raw-new-delete"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.findings[0].path, "src/core/a.cc");
  EXPECT_EQ(result.findings[0].line, 1);
  EXPECT_EQ(result.findings[1].path, "src/core/a.cc");
  EXPECT_EQ(result.findings[1].line, 2);
  EXPECT_EQ(result.findings[2].path, "src/core/b.cc");
}

TEST(AnalyzeTest, AllChecksHaveUniqueNamesAndDescriptions) {
  std::set<std::string> names;
  for (const CheckInfo& check : AllChecks()) {
    EXPECT_TRUE(names.insert(check.name).second) << check.name;
    EXPECT_FALSE(check.description.empty()) << check.name;
  }
  // The behavior-compatible names the old firehose_lint shipped with.
  for (const char* legacy :
       {"banned-nondeterminism", "unordered-iteration", "include-guard",
        "raw-new-delete", "obs-seam", "dur-seam"}) {
    EXPECT_EQ(names.count(legacy), 1u) << legacy;
  }
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
