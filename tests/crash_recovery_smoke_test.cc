// End-to-end crash-recovery smoke: drives the real firehose_diversify
// binary (path injected by CMake as FIREHOSE_DIVERSIFY_BIN) in durable
// mode and SIGKILLs it mid-run — repeatedly — via the FIREHOSE_CRASH_AFTER
// hook, until an incarnation finally runs to completion. The surviving
// output TSV and metrics snapshot must be byte-identical to those of an
// uninterrupted run, and the durable output must match the plain batch
// path. Also covers `--version` and the hard error for resuming with a
// mismatched engine.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/firehose.h"

#ifndef FIREHOSE_DIVERSIFY_BIN
#error "FIREHOSE_DIVERSIFY_BIN must point at the firehose_diversify binary"
#endif

namespace firehose {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CrashRecoverySmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CleanArtifacts();

    // Small but non-trivial workload: enough posts that a kill-loop takes
    // many incarnations, small enough that each incarnation is cheap.
    SocialGraphOptions social_options;
    social_options.num_authors = 150;
    social_options.num_communities = 6;
    social_options.avg_followees = 15.0;
    social_options.seed = 20260806;
    const FollowGraph social = GenerateSocialGraph(social_options);
    std::vector<AuthorId> authors;
    for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
    const auto similarities = AllPairsSimilarity(social, authors, 0.05);
    AuthorGraph graph =
        AuthorGraph::FromSimilarities(authors, similarities, 0.7);

    StreamGenOptions stream_options;
    stream_options.posts_per_author = 8.0;
    stream_options.seed = 7;
    const SimHasher hasher;
    const PostStream stream = GenerateStream(graph, hasher, stream_options);
    ASSERT_GT(stream.size(), 400u);
    stream_size_ = stream.size();

    ASSERT_TRUE(SaveAuthorGraph(graph, kGraphPath));
    ASSERT_TRUE(SavePostStream(stream, kStreamPath));
  }

  void TearDown() override { CleanArtifacts(); }

  void CleanArtifacts() {
    for (const char* dir : {"crash_smoke_wal_ref", "crash_smoke_wal_kill",
                            "crash_smoke_wal_mismatch"}) {
      std::filesystem::remove_all(dir);
    }
    for (const char* path :
         {kGraphPath, kStreamPath, "crash_smoke_ref.tsv",
          "crash_smoke_kill.tsv", "crash_smoke_plain.tsv",
          "crash_smoke_ref_metrics.json", "crash_smoke_kill_metrics.json",
          "crash_smoke_stdout.txt"}) {
      std::remove(path);
    }
  }

  /// Runs the binary; `env` is a `NAME=value` prefix (or "") interpreted
  /// by the shell, so the crash hook reaches only the child process.
  int Run(const std::string& env, const std::string& extra_flags,
          const std::string& capture = "> /dev/null 2>&1") {
    const std::string command = env + (env.empty() ? "" : " ") + "\"" +
                                FIREHOSE_DIVERSIFY_BIN +
                                "\" --graph=" + kGraphPath +
                                " --stream=" + kStreamPath + " " +
                                extra_flags + " " + capture;
    return std::system(command.c_str());
  }

  /// SIGKILLs the binary after `crash_after` posts per incarnation until
  /// one incarnation survives to exit 0. Returns the incarnation count.
  int KillLoop(const std::string& durable_flags, uint64_t crash_after,
               uint64_t min_progress_per_run) {
    const std::string env =
        "FIREHOSE_CRASH_AFTER=" + std::to_string(crash_after);
    const int limit =
        static_cast<int>(stream_size_ / min_progress_per_run) + 10;
    for (int runs = 1; runs <= limit; ++runs) {
      const int exit_code = Run(env, durable_flags);
      if (exit_code == 0) return runs;
    }
    ADD_FAILURE() << "kill-loop made no durable progress in " << limit
                  << " incarnations (crash_after=" << crash_after << ")";
    return -1;
  }

  static constexpr const char* kGraphPath = "crash_smoke_graph.bin";
  static constexpr const char* kStreamPath = "crash_smoke_stream.bin";
  size_t stream_size_ = 0;
};

TEST_F(CrashRecoverySmokeTest, UninterruptedDurableRunMatchesPlainBatch) {
  ASSERT_EQ(Run("", "--algorithm=neighborbin --out=crash_smoke_plain.tsv"), 0);
  ASSERT_EQ(Run("", "--algorithm=neighborbin --wal_dir=crash_smoke_wal_ref "
                    "--checkpoint_every=50 --out=crash_smoke_ref.tsv"),
            0);
  const std::string plain = Slurp("crash_smoke_plain.tsv");
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(Slurp("crash_smoke_ref.tsv"), plain)
      << "incremental durable output diverged from the batch writer";
}

TEST_F(CrashRecoverySmokeTest, KillLoopConvergesToUninterruptedBytes) {
  ASSERT_EQ(Run("", "--algorithm=neighborbin --wal_dir=crash_smoke_wal_ref "
                    "--checkpoint_every=50 --out=crash_smoke_ref.tsv "
                    "--metrics_out=crash_smoke_ref_metrics.json"),
            0);
  const std::string ref_tsv = Slurp("crash_smoke_ref.tsv");
  const std::string ref_metrics = Slurp("crash_smoke_ref_metrics.json");
  ASSERT_FALSE(ref_tsv.empty());
  ASSERT_FALSE(ref_metrics.empty());

  // crash_after=73 with checkpoint_every=50 and the default (buffered)
  // sync policy: each incarnation reaches one checkpoint before dying, so
  // the only durable progress is checkpoint-carried — the harshest case
  // for output repositioning.
  const int runs = KillLoop(
      "--algorithm=neighborbin --wal_dir=crash_smoke_wal_kill "
      "--checkpoint_every=50 --out=crash_smoke_kill.tsv "
      "--metrics_out=crash_smoke_kill_metrics.json",
      /*crash_after=*/73, /*min_progress_per_run=*/50);
  ASSERT_GT(runs, 1) << "crash hook never fired: workload too small?";

  EXPECT_EQ(Slurp("crash_smoke_kill.tsv"), ref_tsv)
      << "recovered output stream is not byte-identical";
  EXPECT_EQ(Slurp("crash_smoke_kill_metrics.json"), ref_metrics)
      << "recovered metrics snapshot is not byte-identical";
}

TEST_F(CrashRecoverySmokeTest, SyncedWalCarriesProgressBetweenCheckpoints) {
  ASSERT_EQ(Run("", "--algorithm=unibin --wal_dir=crash_smoke_wal_ref "
                    "--checkpoint_every=200 --out=crash_smoke_ref.tsv"),
            0);
  const std::string ref_tsv = Slurp("crash_smoke_ref.tsv");
  ASSERT_FALSE(ref_tsv.empty());

  // crash_after=37 never reaches checkpoint_every=200, so recovery leans
  // entirely on WAL replay — which only makes progress because
  // --wal_sync=always pushes every record to disk before the decision.
  const int runs = KillLoop(
      "--algorithm=unibin --wal_dir=crash_smoke_wal_kill "
      "--checkpoint_every=200 --wal_sync=always --out=crash_smoke_kill.tsv",
      /*crash_after=*/37, /*min_progress_per_run=*/37);
  ASSERT_GT(runs, 1);

  EXPECT_EQ(Slurp("crash_smoke_kill.tsv"), ref_tsv)
      << "WAL-replayed output stream is not byte-identical";
}

TEST_F(CrashRecoverySmokeTest, VersionFlagPrintsBuildAndStateFormat) {
  const std::string command = std::string("\"") + FIREHOSE_DIVERSIFY_BIN +
                              "\" --version > crash_smoke_stdout.txt 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  const std::string out = Slurp("crash_smoke_stdout.txt");
  EXPECT_NE(out.find("firehose"), std::string::npos) << out;
  EXPECT_NE(out.find("state format"), std::string::npos) << out;
}

TEST_F(CrashRecoverySmokeTest, ResumingWithDifferentEngineIsAHardError) {
  ASSERT_EQ(Run("", "--algorithm=unibin --wal_dir=crash_smoke_wal_mismatch "
                    "--checkpoint_every=50"),
            0);
  const int exit_code =
      Run("", "--algorithm=cliquebin --wal_dir=crash_smoke_wal_mismatch "
              "--checkpoint_every=50",
          "> crash_smoke_stdout.txt 2>&1");
  EXPECT_NE(exit_code, 0);
  const std::string out = Slurp("crash_smoke_stdout.txt");
  EXPECT_NE(out.find("UniBin"), std::string::npos) << out;
  EXPECT_NE(out.find("CliqueBin"), std::string::npos) << out;
}

}  // namespace
}  // namespace firehose
