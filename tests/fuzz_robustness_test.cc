// Failure-injection tests: every decoder in the library must reject (not
// crash on, not loop on, not leak from) arbitrary malformed input —
// random bytes, bit-flipped snapshots, and truncations at every length.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/io/binary.h"
#include "src/util/binary.h"
#include "src/io/persist.h"
#include "src/stream/post_bin.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

std::string RandomBytes(Rng& rng, size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) c = static_cast<char>(rng.Next() & 0xFF);
  return bytes;
}

TEST(FuzzTest, BinaryReaderSurvivesRandomBytes) {
  Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    const std::string data = RandomBytes(rng, rng.UniformInt(64));
    BinaryReader reader(data);
    // Drain with a random mix of getters; must terminate and never read
    // out of bounds (ASAN-clean by construction of BinaryReader).
    for (int i = 0; i < 32 && reader.ok(); ++i) {
      switch (rng.UniformInt(5)) {
        case 0: {
          uint8_t v;
          reader.GetU8(&v);
          break;
        }
        case 1: {
          uint64_t v;
          reader.GetVarint(&v);
          break;
        }
        case 2: {
          int64_t v;
          reader.GetSignedVarint(&v);
          break;
        }
        case 3: {
          std::string v;
          reader.GetString(&v);
          break;
        }
        default: {
          uint64_t v;
          reader.GetFixed64(&v);
          break;
        }
      }
    }
    SUCCEED();
  }
}

TEST(FuzzTest, PostBinLoadSurvivesRandomBytes) {
  Rng rng(2);
  for (int round = 0; round < 200; ++round) {
    const std::string data = RandomBytes(rng, rng.UniformInt(128));
    BinaryReader reader(data);
    PostBin bin;
    bin.Load(reader);  // any result is fine; must not crash
  }
  SUCCEED();
}

TEST(FuzzTest, PersistLoadersSurviveRandomFiles) {
  Rng rng(3);
  const std::string path = ::testing::TempDir() + "/fuzz_input.bin";
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(WriteFileAtomic(path, RandomBytes(rng, rng.UniformInt(256))));
    FollowGraph follow;
    AuthorGraph graph;
    CliqueCover cover;
    PostStream stream;
    std::vector<AuthorPairSimilarity> sims;
    EXPECT_FALSE(LoadFollowGraph(path, &follow));
    EXPECT_FALSE(LoadAuthorGraph(path, &graph));
    EXPECT_FALSE(LoadCliqueCover(path, &cover));
    EXPECT_FALSE(LoadPostStream(path, &stream));
    EXPECT_FALSE(LoadSimilarities(path, &sims));
  }
  std::remove(path.c_str());
}

TEST(FuzzTest, SnapshotsRejectEveryTruncationLength) {
  Rng rng(4);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(8, 0.4, rng);
  auto diversifier = MakeDiversifier(
      Algorithm::kNeighborBin, testing_util::PaperExampleThresholds(), &graph);
  const PostStream stream = testing_util::RandomStream(80, 8, 10, rng);
  for (const Post& post : stream) diversifier->Offer(post);
  BinaryWriter snapshot;
  diversifier->SaveState(&snapshot);

  for (size_t cut = 0; cut < snapshot.size(); cut += 7) {
    auto fresh = MakeDiversifier(Algorithm::kNeighborBin,
                                 testing_util::PaperExampleThresholds(),
                                 &graph);
    BinaryReader reader(
        std::string_view(snapshot.buffer()).substr(0, cut));
    // Truncations must be rejected — except degenerate prefixes that
    // happen to decode as a complete empty state, which cannot occur
    // here because the stats header alone is >= 5 bytes and the run was
    // non-empty.
    EXPECT_FALSE(fresh->LoadState(reader)) << "cut=" << cut;
  }
}

TEST(FuzzTest, SnapshotsSurviveBitFlips) {
  Rng rng(5);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(8, 0.4, rng);
  const CliqueCover cover = CliqueCover::Greedy(graph);
  auto diversifier = MakeDiversifier(
      Algorithm::kCliqueBin, testing_util::PaperExampleThresholds(), &graph,
      &cover);
  const PostStream stream = testing_util::RandomStream(80, 8, 10, rng);
  for (const Post& post : stream) diversifier->Offer(post);
  BinaryWriter snapshot;
  diversifier->SaveState(&snapshot);

  for (int round = 0; round < 100; ++round) {
    std::string corrupted = snapshot.buffer();
    const size_t byte = rng.UniformInt(corrupted.size());
    corrupted[byte] =
        static_cast<char>(corrupted[byte] ^ (1 << rng.UniformInt(8)));
    auto fresh = MakeDiversifier(Algorithm::kCliqueBin,
                                 testing_util::PaperExampleThresholds(),
                                 &graph, &cover);
    BinaryReader reader(corrupted);
    // A flip may still parse (the format carries no checksum) — the
    // contract is merely: no crash, no hang, defined result.
    fresh->LoadState(reader);
  }
  SUCCEED();
}

TEST(FuzzTest, TsvLoaderSurvivesGarbage) {
  Rng rng(6);
  const std::string path = ::testing::TempDir() + "/fuzz_stream.tsv";
  for (int round = 0; round < 30; ++round) {
    std::string data = RandomBytes(rng, rng.UniformInt(512));
    // Sprinkle in newlines and tabs so the line parser gets exercised.
    for (char& c : data) {
      if (rng.Bernoulli(0.1)) c = '\n';
      if (rng.Bernoulli(0.1)) c = '\t';
    }
    ASSERT_TRUE(WriteFileAtomic(path, data));
    PostStream stream;
    (void)LoadPostStreamTsv(path, &stream);  // must not crash; result moot
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace firehose
