#include "src/core/lagged.h"

#include <gtest/gtest.h>

#include "src/core/unibin.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExamplePosts;
using testing_util::PaperExampleThresholds;

Post MakePost(PostId id, AuthorId author, int64_t time_ms, uint64_t simhash) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.simhash = simhash;
  return post;
}

std::vector<PostId> RunLagged(const PostStream& stream,
                              const DiversityThresholds& t, int64_t lag_ms,
                              const AuthorGraph* graph) {
  LaggedDiversifier diversifier(t, lag_ms, graph);
  std::vector<Post> emitted;
  for (const Post& post : stream) diversifier.Offer(post, &emitted);
  diversifier.Finish(&emitted);
  std::vector<PostId> ids;
  for (const Post& post : emitted) ids.push_back(post.id);
  return ids;
}

TEST(LaggedTest, ZeroLagMatchesUniBin) {
  const AuthorGraph graph = PaperExampleGraph();
  const DiversityThresholds t = PaperExampleThresholds();
  Rng rng(3);
  const PostStream stream = testing_util::RandomStream(500, 4, 30, rng);

  UniBinDiversifier unibin(t, &graph);
  std::vector<PostId> immediate;
  for (const Post& post : stream) {
    if (unibin.Offer(post)) immediate.push_back(post.id);
  }
  EXPECT_EQ(RunLagged(stream, t, 0, &graph), immediate);
}

TEST(LaggedTest, PaperExampleWithZeroLag) {
  const AuthorGraph graph = PaperExampleGraph();
  EXPECT_EQ(RunLagged(PaperExamplePosts(), PaperExampleThresholds(), 0, &graph),
            (std::vector<PostId>{0, 1, 3}));
}

TEST(LaggedTest, ChainExampleShrinksOutput) {
  // P1 at t=0, P2 at t=1 covering both P1 and P3, P3 at t=2 not covered
  // by P1. Immediate decision emits {P1, P3}; a lag >= 1 lets P2
  // represent both: output {P2}.
  DiversityThresholds t;
  t.lambda_c = 2;
  t.lambda_t_ms = 1000;
  t.use_author = false;
  const PostStream stream = {
      MakePost(0, 0, 0, 0b00000),   // P1
      MakePost(1, 0, 1, 0b00011),   // P2: d(P1)=2 ok, d(P3)=2 ok
      MakePost(2, 0, 2, 0b01111),   // P3: d(P1)=4 too far
  };
  EXPECT_EQ(RunLagged(stream, t, 0, nullptr),
            (std::vector<PostId>{0, 2}));
  EXPECT_EQ(RunLagged(stream, t, 5, nullptr), (std::vector<PostId>{1}));
}

TEST(LaggedTest, CoverageInvariantHoldsUnderLag) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  Rng rng(11);
  const PostStream stream = testing_util::RandomStream(600, 4, 20, rng);
  for (int64_t lag : {0LL, 10LL, 100LL, 1000LL}) {
    LaggedDiversifier diversifier(t, lag, &graph);
    std::vector<Post> emitted;
    for (const Post& post : stream) diversifier.Offer(post, &emitted);
    diversifier.Finish(&emitted);

    for (const Post& post : stream) {
      bool covered = false;
      for (const Post& z : emitted) {
        if (std::abs(post.time_ms - z.time_ms) > t.lambda_t_ms) continue;
        if (HammingDistance64(post.simhash, z.simhash) > t.lambda_c) continue;
        if (z.author != post.author &&
            !graph.IsNeighbor(post.author, z.author)) {
          continue;
        }
        covered = true;
        break;
      }
      EXPECT_TRUE(covered) << "post " << post.id << " uncovered at lag "
                           << lag;
    }
  }
}

TEST(LaggedTest, LagNeverGrowsOutputOnRandomStreams) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    const PostStream stream = testing_util::RandomStream(500, 4, 20, rng);
    const size_t immediate = RunLagged(stream, t, 0, &graph).size();
    const size_t lagged = RunLagged(stream, t, 200, &graph).size();
    EXPECT_LE(lagged, immediate) << "seed " << seed;
  }
}

TEST(LaggedTest, EmissionsComeOutInArrivalOrder) {
  const AuthorGraph graph = PaperExampleGraph();
  Rng rng(7);
  const PostStream stream = testing_util::RandomStream(400, 4, 15, rng);
  const auto ids = RunLagged(stream, PaperExampleThresholds(), 77, &graph);
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST(LaggedTest, FinishFlushesEverything) {
  LaggedDiversifier diversifier(PaperExampleThresholds(), 1000000, nullptr);
  std::vector<Post> emitted;
  diversifier.Offer(MakePost(0, 0, 0, 1), &emitted);
  diversifier.Offer(MakePost(1, 1, 5, ~0ULL), &emitted);
  EXPECT_TRUE(emitted.empty());  // deadlines far in the future
  diversifier.Finish(&emitted);
  EXPECT_EQ(emitted.size(), 2u);
  EXPECT_EQ(diversifier.stats().posts_in, 2u);
  EXPECT_EQ(diversifier.stats().posts_out, 2u);
}

TEST(LaggedTest, StatsAccumulate) {
  const AuthorGraph graph = PaperExampleGraph();
  LaggedDiversifier diversifier(PaperExampleThresholds(), 2, &graph);
  std::vector<Post> emitted;
  for (const Post& post : PaperExamplePosts()) {
    diversifier.Offer(post, &emitted);
  }
  diversifier.Finish(&emitted);
  EXPECT_EQ(diversifier.stats().posts_in, 5u);
  EXPECT_GT(diversifier.stats().comparisons, 0u);
  EXPECT_EQ(diversifier.stats().posts_out, emitted.size());
}

}  // namespace
}  // namespace firehose
