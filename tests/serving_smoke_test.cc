// End-to-end serving smoke: drives the REAL firehose_serve and
// firehose_loadgen binaries (paths injected by CMake) over a loopback
// socket. The clean path must verify byte-identical against the
// in-process S_* engine, and the kill-loop path SIGKILLs the server
// mid-stream — twice, at different points, via FIREHOSE_CRASH_AFTER —
// restarts it over the same data_dir, resends the stream from the
// start, and requires the recovered timelines to be byte-identical
// (loadgen --verify) with the resent prefix deduped, not re-ingested.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/firehose.h"

#ifndef FIREHOSE_SERVE_BIN
#error "FIREHOSE_SERVE_BIN must point at the firehose_serve binary"
#endif
#ifndef FIREHOSE_LOADGEN_BIN
#error "FIREHOSE_LOADGEN_BIN must point at the firehose_loadgen binary"
#endif

namespace firehose {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ServingSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CleanArtifacts();

    SocialGraphOptions social_options;
    social_options.num_authors = 120;
    social_options.num_communities = 5;
    social_options.avg_followees = 12.0;
    social_options.seed = 20260808;
    const FollowGraph social = GenerateSocialGraph(social_options);
    std::vector<AuthorId> authors;
    for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
    const auto similarities = AllPairsSimilarity(social, authors, 0.05);
    const AuthorGraph graph =
        AuthorGraph::FromSimilarities(authors, similarities, 0.7);

    StreamGenOptions stream_options;
    stream_options.posts_per_author = 6.0;
    stream_options.seed = 13;
    const SimHasher hasher;
    const PostStream stream = GenerateStream(graph, hasher, stream_options);
    ASSERT_GT(stream.size(), 400u);
    stream_size_ = stream.size();

    ASSERT_TRUE(SaveFollowGraph(social, kSocialPath));
    ASSERT_TRUE(SaveAuthorGraph(graph, kGraphPath));
    ASSERT_TRUE(SavePostStream(stream, kStreamPath));
  }

  void TearDown() override {
    KillServerIfRunning();
    CleanArtifacts();
  }

  void CleanArtifacts() {
    std::filesystem::remove_all(kDataDir);
    for (const char* path :
         {kSocialPath, kGraphPath, kStreamPath, kPortFile, kPidFile,
          "serving_smoke_serve.log", "serving_smoke_loadgen.log",
          "serving_smoke_bench.json"}) {
      std::remove(path);
    }
  }

  /// Spawns the server in the background (shell `&`), recording its pid.
  /// `env` is a NAME=value prefix reaching only the server process.
  void StartServer(const std::string& env, const std::string& extra_flags) {
    std::remove(kPortFile);
    const std::string command =
        env + (env.empty() ? "" : " ") + "\"" + FIREHOSE_SERVE_BIN +
        "\" --graph=" + kGraphPath + " --port=0 --port_file=" + kPortFile +
        " " + extra_flags + " >> serving_smoke_serve.log 2>&1 & echo $! > " +
        kPidFile;
    ASSERT_EQ(std::system(command.c_str()), 0);
    // --port_file is written after a successful bind, so its appearance
    // doubles as the readiness signal.
    for (int i = 0; i < 500; ++i) {
      if (std::filesystem::exists(kPortFile)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "server never wrote " << kPortFile << ":\n"
           << Slurp("serving_smoke_serve.log");
  }

  /// True while the background server process is alive.
  bool ServerAlive() {
    const std::string probe =
        "kill -0 $(cat " + std::string(kPidFile) + ") 2> /dev/null";
    return std::system(probe.c_str()) == 0;
  }

  void KillServerIfRunning() {
    if (!std::filesystem::exists(kPidFile)) return;
    const std::string kill_cmd =
        "kill -9 $(cat " + std::string(kPidFile) + ") 2> /dev/null";
    (void)std::system(kill_cmd.c_str());
  }

  /// Blocks until the server process exits (SIGKILLed itself or was
  /// shut down by the loadgen).
  void AwaitServerExit() {
    for (int i = 0; i < 500; ++i) {
      if (!ServerAlive()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "server did not exit";
  }

  int RunLoadgen(const std::string& extra_flags) {
    const std::string command =
        std::string("\"") + FIREHOSE_LOADGEN_BIN + "\" --port_file=" +
        kPortFile + " --social=" + kSocialPath + " --stream=" + kStreamPath +
        " " + extra_flags + " > serving_smoke_loadgen.log 2>&1";
    return std::system(command.c_str());
  }

  static constexpr const char* kSocialPath = "serving_smoke_social.bin";
  static constexpr const char* kGraphPath = "serving_smoke_graph.bin";
  static constexpr const char* kStreamPath = "serving_smoke_stream.bin";
  static constexpr const char* kPortFile = "serving_smoke_port";
  static constexpr const char* kPidFile = "serving_smoke_pid";
  static constexpr const char* kDataDir = "serving_smoke_data";
  size_t stream_size_ = 0;
};

TEST_F(ServingSmokeTest, CleanServeVerifiesAgainstInProcessEngine) {
  StartServer("", "--shards=2");
  const int exit_code = RunLoadgen(
      "--graph=" + std::string(kGraphPath) +
      " --verify --bench_out=serving_smoke_bench.json --shutdown");
  ASSERT_EQ(exit_code, 0) << Slurp("serving_smoke_loadgen.log");
  AwaitServerExit();

  const std::string log = Slurp("serving_smoke_loadgen.log");
  EXPECT_NE(log.find("verify: PASS"), std::string::npos) << log;

  // The bench artifact carries the serving metrics the CI job uploads.
  const std::string bench = Slurp("serving_smoke_bench.json");
  EXPECT_NE(bench.find("serve.posts_sent"), std::string::npos) << bench;
  EXPECT_NE(bench.find("serve.timeline_hash"), std::string::npos) << bench;
  EXPECT_NE(bench.find("serve.verify_ok"), std::string::npos) << bench;
}

TEST_F(ServingSmokeTest, KillLoopRecoversToByteIdenticalTimelines) {
  // Incarnation 1: dies a third of the way into the stream. The loadgen
  // sees the socket drop and fails; --flush_every=50 guarantees durable
  // progress before the kill.
  StartServer("FIREHOSE_CRASH_AFTER=" + std::to_string(stream_size_ / 3),
              "--shards=2 --data_dir=" + std::string(kDataDir) +
                  " --wal_sync=always");
  EXPECT_NE(RunLoadgen("--flush_every=50"), 0)
      << "loadgen survived an incarnation that SIGKILLed itself";
  AwaitServerExit();

  // Incarnation 2: recovers, then dies again — two thirds in, counted
  // across the full resend (duplicates included), so the kill lands at
  // a different stream position than the first.
  StartServer("FIREHOSE_CRASH_AFTER=" + std::to_string(2 * stream_size_ / 3),
              "--shards=2 --data_dir=" + std::string(kDataDir) +
                  " --wal_sync=always");
  EXPECT_NE(RunLoadgen("--flush_every=50"), 0);
  AwaitServerExit();

  // Final incarnation: recovers everything durable, takes the full
  // resend (dedupes the durable prefix), and must verify byte-identical
  // against the in-process engine.
  StartServer("", "--shards=2 --data_dir=" + std::string(kDataDir) +
                      " --wal_sync=always");
  const int exit_code = RunLoadgen("--graph=" + std::string(kGraphPath) +
                                   " --verify --shutdown");
  ASSERT_EQ(exit_code, 0) << Slurp("serving_smoke_loadgen.log");
  AwaitServerExit();

  const std::string log = Slurp("serving_smoke_loadgen.log");
  EXPECT_NE(log.find("verify: PASS"), std::string::npos) << log;
  // The final connect must have found durable posts from the first two
  // incarnations (printed as "N durable" by the loadgen) and the final
  // replay must have deduped them.
  EXPECT_EQ(log.find(" 0 durable"), std::string::npos)
      << "no durable progress survived the kills:\n"
      << log;
  EXPECT_EQ(log.find(" 0 duplicates"), std::string::npos)
      << "the durable prefix was not deduped on resend:\n"
      << log;
}

TEST_F(ServingSmokeTest, ServeVersionFlagPrintsBuildInfo) {
  const std::string command = std::string("\"") + FIREHOSE_SERVE_BIN +
                              "\" --version > serving_smoke_serve.log 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  EXPECT_NE(Slurp("serving_smoke_serve.log").find("firehose"),
            std::string::npos);
}

}  // namespace
}  // namespace firehose
