#include "src/simhash/minhash.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/gen/text_gen.h"

namespace firehose {
namespace {

TEST(MinHashTest, DeterministicSignatures) {
  const MinHasher hasher(16);
  const MinHashSignature a = hasher.Sign("the quick brown fox jumps");
  const MinHashSignature b = hasher.Sign("the quick brown fox jumps");
  EXPECT_EQ(a.mins, b.mins);
}

TEST(MinHashTest, SignatureSizeMatchesNumHashes) {
  const MinHasher hasher(32);
  EXPECT_EQ(hasher.Sign("one two three").size(), 32u);
  EXPECT_EQ(hasher.num_hashes(), 32);
}

TEST(MinHashTest, EmptyTextYieldsEmptySignature) {
  const MinHasher hasher(16);
  EXPECT_TRUE(hasher.Sign("").empty());
  EXPECT_TRUE(hasher.Sign("   ").empty());
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  const MinHasher hasher(16);
  const MinHashSignature a = hasher.Sign("alpha beta gamma delta");
  const MinHashSignature b = hasher.Sign("delta gamma beta alpha");  // set-equal
  EXPECT_DOUBLE_EQ(EstimateJaccard(a, b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  const MinHasher hasher(64);
  const MinHashSignature a = hasher.Sign("alpha beta gamma delta epsilon");
  const MinHashSignature b = hasher.Sign("one two three four five");
  EXPECT_LT(EstimateJaccard(a, b), 0.1);
}

TEST(MinHashTest, MismatchedOrEmptySignaturesEstimateZero) {
  const MinHasher h16(16);
  const MinHasher h32(32);
  const MinHashSignature a = h16.Sign("some words here");
  const MinHashSignature b = h32.Sign("some words here");
  EXPECT_DOUBLE_EQ(EstimateJaccard(a, b), 0.0);
  EXPECT_DOUBLE_EQ(EstimateJaccard(a, MinHashSignature{}), 0.0);
}

TEST(MinHashTest, SeedChangesSignatures) {
  const MinHasher a(16, true, 1);
  const MinHasher b(16, true, 2);
  EXPECT_NE(a.Sign("hello world foo").mins, b.Sign("hello world foo").mins);
}

TEST(ExactJaccardTest, KnownValues) {
  // {a,b,c} vs {b,c,d}: |∩|=2, |∪|=4 -> 0.5.
  EXPECT_DOUBLE_EQ(ExactJaccard("a b c", "b c d"), 0.5);
  EXPECT_DOUBLE_EQ(ExactJaccard("a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(ExactJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(ExactJaccard("", ""), 0.0);
}

TEST(ExactJaccardTest, NormalizationApplied) {
  EXPECT_DOUBLE_EQ(ExactJaccard("Hello World!", "hello world"), 1.0);
  EXPECT_LT(ExactJaccard("Hello World!", "hello world", /*normalize=*/false),
            1.0);
}

TEST(ExactJaccardTest, DuplicateTokensCollapse) {
  EXPECT_DOUBLE_EQ(ExactJaccard("a a a b", "a b b b"), 1.0);
}

class MinHashEstimatorTest : public ::testing::TestWithParam<int> {};

TEST_P(MinHashEstimatorTest, EstimateTracksExactJaccard) {
  const int k = GetParam();
  const MinHasher hasher(k);
  TextGenerator text_gen(33);
  double total_error = 0.0;
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string a = text_gen.MakePost();
    const std::string b =
        text_gen.Perturb(a, static_cast<PerturbLevel>(i % 6));
    const double exact = ExactJaccard(a, b);
    const double estimate =
        EstimateJaccard(hasher.Sign(a), hasher.Sign(b));
    total_error += std::fabs(exact - estimate);
    ++count;
  }
  // Mean absolute error shrinks with k; bounds are loose multiples of
  // the 1/sqrt(k) standard error.
  const double mae = total_error / count;
  EXPECT_LT(mae, 1.5 / std::sqrt(static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(SignatureSizes, MinHashEstimatorTest,
                         ::testing::Values(16, 64, 256));

}  // namespace
}  // namespace firehose
