// Tests for the semantic model (function/type/annotation extraction
// over the include graph) and for the four sema passes, driven on
// synthetic in-memory file sets through the regular Analyze() entry
// point — firing AND clean variants for each pass.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/sema/functions.h"

namespace firehose {
namespace analysis {
namespace {

using sema::BuildSemaModel;
using sema::FunctionDef;
using sema::SemaModel;
using sema::TypeInfo;

AnalysisResult RunAnalysis(const std::vector<SourceFile>& files,
                           const std::set<std::string>& checks) {
  AnalysisOptions options;
  options.checks = checks;
  return Analyze(files, options);
}

const FunctionDef* FindFunction(const SemaModel& model,
                                const std::string& name) {
  auto it = model.functions_by_name.find(name);
  if (it == model.functions_by_name.end() || it->second.empty()) {
    return nullptr;
  }
  const auto& [file, index] = it->second.front();
  return &model.files[file].functions[index];
}

// --- BuildSemaModel ----------------------------------------------------------

TEST(SemaModelTest, ExtractsFreeFunctionsAndTheirCalls) {
  const IncludeGraph graph = BuildIncludeGraph(
      {{"src/core/x.cc",
        "int Helper(int v) { return v + 1; }\n"
        "int Decide(int v) {\n"
        "  if (v < 0) return 0;\n"
        "  return Helper(v) * 2;\n"
        "}\n"}});
  const SemaModel model = BuildSemaModel(graph);
  const FunctionDef* decide = FindFunction(model, "Decide");
  ASSERT_NE(decide, nullptr);
  EXPECT_TRUE(decide->class_name.empty());
  EXPECT_EQ(decide->calls.count("Helper"), 1u);
  // Control keywords are not calls.
  EXPECT_EQ(decide->calls.count("if"), 0u);
  EXPECT_EQ(decide->calls.count("return"), 0u);
  ASSERT_NE(FindFunction(model, "Helper"), nullptr);
}

TEST(SemaModelTest, MergesMethodConstnessAcrossHeaderAndSource) {
  const IncludeGraph graph = BuildIncludeGraph(
      {{"src/stream/ring.h",
        "class Ring {\n"
        " public:\n"
        "  size_t size() const;\n"
        "  void Push(int v);\n"
        "};\n"},
       {"src/stream/ring.cc",
        "#include \"src/stream/ring.h\"\n"
        "size_t Ring::size() const { return n_; }\n"
        "void Ring::Push(int v) { ++n_; }\n"}});
  const SemaModel model = BuildSemaModel(graph);
  const TypeInfo* ring = model.FindType("Ring");
  ASSERT_NE(ring, nullptr);
  ASSERT_EQ(ring->method_is_const.count("size"), 1u);
  EXPECT_TRUE(ring->method_is_const.at("size"));
  ASSERT_EQ(ring->method_is_const.count("Push"), 1u);
  EXPECT_FALSE(ring->method_is_const.at("Push"));
}

TEST(SemaModelTest, ReadsGuardedByAndRequiresAnnotations) {
  const IncludeGraph graph = BuildIncludeGraph(
      {{"src/obs/log.h",
        "class Log {\n"
        "  void AppendLocked(int v) FIREHOSE_REQUIRES(mu_);\n"
        "  std::mutex mu_;\n"
        "  int total_ FIREHOSE_GUARDED_BY(mu_) = 0;\n"
        "};\n"}});
  const SemaModel model = BuildSemaModel(graph);
  const TypeInfo* log = model.FindType("Log");
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->guarded_members.count("total_"), 1u);
  EXPECT_EQ(log->guarded_members.at("total_"), "mu_");
  ASSERT_EQ(log->method_requires.count("AppendLocked"), 1u);
  EXPECT_EQ(log->method_requires.at("AppendLocked"),
            (std::vector<std::string>{"mu_"}));
}

TEST(SemaModelTest, IncludeClosureIsTransitiveAndReflexive) {
  const IncludeGraph graph = BuildIncludeGraph(
      {{"src/util/c.h", "inline int C() { return 3; }\n"},
       {"src/util/b.h", "#include \"src/util/c.h\"\n"},
       {"src/util/a.cc", "#include \"src/util/b.h\"\n"}});
  const SemaModel model = BuildSemaModel(graph);
  const int a = graph.Find("src/util/a.cc");
  ASSERT_GE(a, 0);
  const std::set<int>& closure = model.reachable_includes[a];
  EXPECT_EQ(closure.count(a), 1u);
  EXPECT_EQ(closure.count(graph.Find("src/util/b.h")), 1u);
  EXPECT_EQ(closure.count(graph.Find("src/util/c.h")), 1u);
}

// --- view-invalidation -------------------------------------------------------

TEST(ViewInvalidationTest, FlagsReadAfterMutatingCall) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/v.cc",
        "int F(PostBin& bin, const Post& post) {\n"
        "  PostBin::LaneSpan segments[2];\n"
        "  size_t n = bin.Segments(segments);\n"
        "  bin.Push(post);\n"
        "  return segments[0].size + n;\n"
        "}\n"}},
      {"view-invalidation"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "view-invalidation");
  EXPECT_EQ(result.findings[0].line, 5);
  EXPECT_NE(result.findings[0].message.find("bin.Push()"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("re-acquire"), std::string::npos);
}

TEST(ViewInvalidationTest, ReacquireRevalidates) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/v.cc",
        "int F(PostBin& bin, const Post& post) {\n"
        "  PostBin::LaneSpan segments[2];\n"
        "  size_t n = bin.Segments(segments);\n"
        "  bin.Push(post);\n"
        "  n = bin.Segments(segments);\n"
        "  return segments[0].size + n;\n"
        "}\n"}},
      {"view-invalidation"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(ViewInvalidationTest, InvalidOnAnyPathWinsAtTheMerge) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/v.cc",
        "int F(PostBin& bin, const Post& post, bool flush) {\n"
        "  PostBin::LaneSpan segments[2];\n"
        "  size_t n = bin.Segments(segments);\n"
        "  if (flush) { bin.EvictOlderThan(10); }\n"
        "  return segments[0].size + n;\n"
        "}\n"}},
      {"view-invalidation"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("bin.EvictOlderThan()"),
            std::string::npos);
}

TEST(ViewInvalidationTest, MutationOfADifferentBinIsHarmless) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/v.cc",
        "int F(PostBin& bin, PostBin& other, const Post& post) {\n"
        "  PostBin::LaneSpan segments[2];\n"
        "  size_t n = bin.Segments(segments);\n"
        "  other.Push(post);\n"
        "  return segments[0].size + n;\n"
        "}\n"}},
      {"view-invalidation"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// --- lock-discipline ---------------------------------------------------------

const char kLockedClassHeader[] =
    "class EventLog {\n"
    " public:\n"
    "  void Add(int v);\n"
    "  void Reset();\n"
    " private:\n"
    "  void AppendLocked(int v) FIREHOSE_REQUIRES(mu_) { total_ += v; }\n"
    "  std::mutex mu_;\n"
    "  int total_ FIREHOSE_GUARDED_BY(mu_) = 0;\n"
    "};\n";

TEST(LockDisciplineTest, FlagsUnlockedAccessAndCall) {
  const AnalysisResult result = RunAnalysis(
      {{"src/obs/log.h", kLockedClassHeader},
       {"src/obs/log.cc",
        "#include \"src/obs/log.h\"\n"
        "void EventLog::Add(int v) {\n"
        "  total_ += v;\n"
        "  AppendLocked(v);\n"
        "}\n"}},
      {"lock-discipline"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_NE(result.findings[0].message.find("FIREHOSE_GUARDED_BY(mu_)"),
            std::string::npos);
  EXPECT_NE(result.findings[1].message.find("FIREHOSE_REQUIRES(mu_)"),
            std::string::npos);
}

TEST(LockDisciplineTest, LockGuardScopeSatisfiesBoth) {
  const AnalysisResult result = RunAnalysis(
      {{"src/obs/log.h", kLockedClassHeader},
       {"src/obs/log.cc",
        "#include \"src/obs/log.h\"\n"
        "void EventLog::Add(int v) {\n"
        "  const std::lock_guard<std::mutex> lock(mu_);\n"
        "  total_ += v;\n"
        "  AppendLocked(v);\n"
        "}\n"}},
      {"lock-discipline"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(LockDisciplineTest, GuardScopeEndsAtTheClosingBrace) {
  const AnalysisResult result = RunAnalysis(
      {{"src/obs/log.h", kLockedClassHeader},
       {"src/obs/log.cc",
        "#include \"src/obs/log.h\"\n"
        "void EventLog::Add(int v) {\n"
        "  { const std::lock_guard<std::mutex> lock(mu_); total_ += v; }\n"
        "  total_ += v;\n"
        "}\n"}},
      {"lock-discipline"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 4);
}

TEST(LockDisciplineTest, RequiresMethodHoldsTheCapabilityAtEntry) {
  // AppendLocked touches total_ under FIREHOSE_REQUIRES(mu_): clean.
  const AnalysisResult result = RunAnalysis(
      {{"src/obs/log.h", kLockedClassHeader}}, {"lock-discipline"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(LockDisciplineTest, ManualUnlockDropsTheCapability) {
  const AnalysisResult result = RunAnalysis(
      {{"src/obs/log.h", kLockedClassHeader},
       {"src/obs/log.cc",
        "#include \"src/obs/log.h\"\n"
        "void EventLog::Add(int v) {\n"
        "  std::unique_lock<std::mutex> lock(mu_);\n"
        "  total_ += v;\n"
        "  lock.unlock();\n"
        "  total_ += v;\n"
        "}\n"}},
      {"lock-discipline"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 6);
}

// --- atomic-ordering ---------------------------------------------------------

TEST(AtomicOrderingTest, FlagsDefaultsAndOffSeamRelaxed) {
  const AnalysisResult result = RunAnalysis(
      {{"src/eval/count.cc",
        "std::atomic<int> hits{0};\n"
        "void Record() {\n"
        "  hits.fetch_add(1);\n"
        "  ++hits;\n"
        "  int v = hits.load(std::memory_order_relaxed);\n"
        "}\n"}},
      {"atomic-ordering"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 3u);
  EXPECT_NE(result.findings[0].message.find("seq_cst-default"),
            std::string::npos);
  EXPECT_NE(result.findings[2].message.find("memory_order_relaxed"),
            std::string::npos);
}

TEST(AtomicOrderingTest, ExplicitNonRelaxedOrdersAreClean) {
  const AnalysisResult result = RunAnalysis(
      {{"src/eval/count.cc",
        "std::atomic<int> hits{0};\n"
        "void Record() {\n"
        "  hits.fetch_add(1, std::memory_order_acq_rel);\n"
        "  int v = hits.load(std::memory_order_acquire);\n"
        "  hits.store(0, std::memory_order_release);\n"
        "}\n"}},
      {"atomic-ordering"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(AtomicOrderingTest, RelaxedIsLegalOnTheAllowlistedSeams) {
  const std::string body =
      "std::atomic<size_t> head{0};\n"
      "size_t Peek() { return head.load(std::memory_order_relaxed); }\n";
  // SPSC queue plus the observability seams that carry reviewed
  // protocols: seqlock slots, GCRA limiter, watchdog progress slots.
  for (const char* path :
       {"src/runtime/spsc_queue.h", "src/obs/flight_recorder.cc",
        "src/obs/log.cc", "src/obs/watchdog.cc"}) {
    const AnalysisResult result =
        RunAnalysis({{path, body}}, {"atomic-ordering"});
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.findings.empty()) << path;
  }
}

TEST(AtomicOrderingTest, HeaderAtomicsAreKnownInTheIncludingSource) {
  const AnalysisResult result = RunAnalysis(
      {{"src/eval/count.h", "struct C { std::atomic<int> hits{0}; };\n"},
       {"src/eval/count.cc",
        "#include \"src/eval/count.h\"\n"
        "void Record(C& c) { c.hits.fetch_add(1); }\n"}},
      {"atomic-ordering"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].path, "src/eval/count.cc");
}

// --- blocking-in-hot-path ----------------------------------------------------

TEST(BlockingInHotPathTest, FlagsTransitiveBlockingCallFromOffer) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/d.cc",
        "void Pace() { std::this_thread::sleep_for(kTick); }\n"
        "bool Offer(const Post& post) {\n"
        "  Pace();\n"
        "  return true;\n"
        "}\n"}},
      {"blocking-in-hot-path"});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].line, 1);
  EXPECT_NE(result.findings[0].message.find("sleep_for"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("Offer -> Pace"),
            std::string::npos);
}

TEST(BlockingInHotPathTest, UnreachableBlockingCallIsClean) {
  const AnalysisResult result = RunAnalysis(
      {{"src/core/d.cc",
        "bool Offer(const Post& post) { return true; }\n"
        "void DumpDebug() { printf(\"state\\n\"); }\n"}},
      {"blocking-in-hot-path"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(BlockingInHotPathTest, OfferOutsideCoreIsNotARoot) {
  const AnalysisResult result = RunAnalysis(
      {{"src/eval/harness.cc",
        "bool Offer(const Post& post) {\n"
        "  printf(\"measuring\\n\");\n"
        "  return true;\n"
        "}\n"}},
      {"blocking-in-hot-path"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

TEST(BlockingInHotPathTest, IncludeGateBlocksUnrelatedOverloads) {
  // A same-named function in a file the root cannot reach through its
  // includes must not enter the walk.
  const AnalysisResult result = RunAnalysis(
      {{"src/core/d.cc",
        "bool Offer(const Post& post) { return Score(post) > 0; }\n"},
       {"src/eval/score.cc",
        "int Score(const Post& post) {\n"
        "  printf(\"eval\\n\");\n"
        "  return 1;\n"
        "}\n"}},
      {"blocking-in-hot-path"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
