// Tests for the interprocedural layer: the include-gated name-based
// call graph, BFS reachability with chain reconstruction, the
// decide-path fixpoint, and the taint summary table — all driven on
// synthetic in-memory trees through BuildIncludeGraph/BuildSemaModel.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/include_graph.h"
#include "src/analysis/sema/functions.h"
#include "src/analysis/sema/summaries.h"

namespace firehose {
namespace analysis {
namespace {

using sema::BuildCallGraph;
using sema::BuildSemaModel;
using sema::BuildSummaries;
using sema::CallGraph;
using sema::ChainOf;
using sema::DefId;
using sema::DecidingDefs;
using sema::FunctionSummary;
using sema::QualifiedName;
using sema::ReachableFrom;
using sema::SemaModel;
using sema::SummaryTable;

// First definition registered under `name`; test trees keep names
// unique so this is unambiguous.
DefId FindDef(const SemaModel& model, const std::string& name) {
  const auto it = model.functions_by_name.find(name);
  EXPECT_TRUE(it != model.functions_by_name.end() && !it->second.empty())
      << "no definition of " << name;
  if (it == model.functions_by_name.end() || it->second.empty()) {
    return {-1, -1};
  }
  return it->second.front();
}

bool HasEdge(const CallGraph& graph, const DefId& from, const DefId& to) {
  const std::vector<DefId>* out = graph.EdgesOf(from);
  if (out == nullptr) return false;
  for (const DefId& target : *out) {
    if (target == to) return true;
  }
  return false;
}

// --- call graph --------------------------------------------------------------

TEST(CallGraphTest, EdgesAreGatedByIncludeClosure) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/core/helper.h",
       "#ifndef H_\n#define H_\nint Helper(int v);\n#endif\n"},
      {"src/core/helper.cc",
       "#include \"src/core/helper.h\"\n"
       "int Helper(int v) { return v + 1; }\n"},
      {"src/core/caller.cc",
       "#include \"src/core/helper.h\"\n"
       "int Caller(int v) { return Helper(v); }\n"},
      {"src/gen/stranger.cc",
       "int Stranger(int v) { return Helper(v); }\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  const CallGraph calls = BuildCallGraph(model);

  const DefId helper = FindDef(model, "Helper");
  // caller.cc includes helper.h — helper.cc's primary header — so the
  // edge to the out-of-line definition exists.
  EXPECT_TRUE(HasEdge(calls, FindDef(model, "Caller"), helper));
  // stranger.cc includes nothing; the same-named call resolves to no
  // definition it can see.
  EXPECT_FALSE(HasEdge(calls, FindDef(model, "Stranger"), helper));
}

TEST(CallGraphTest, QualifiedNamesCarryTheClass) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/net/worker.cc",
       "class Worker {\n"
       " public:\n"
       "  void Loop() { Drain(); }\n"
       "  void Drain() {}\n"
       "};\n"
       "void Free() {}\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  EXPECT_EQ(QualifiedName(model, FindDef(model, "Loop")), "Worker::Loop");
  EXPECT_EQ(QualifiedName(model, FindDef(model, "Free")), "Free");
}

// --- reachability + chains ---------------------------------------------------

TEST(ReachabilityTest, BfsRecordsShortestChains) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/net/chain.cc",
       "class Worker {\n"
       " public:\n"
       "  void Dispatch() { Mid(); Leaf(); }\n"
       "  void Mid() { Leaf(); }\n"
       "  void Leaf() {}\n"
       "};\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  const CallGraph calls = BuildCallGraph(model);

  const DefId root = FindDef(model, "Dispatch");
  std::map<DefId, DefId> parent;
  const std::set<DefId> reached =
      ReachableFrom(calls, {root}, nullptr, &parent);
  EXPECT_EQ(reached.size(), 3u);
  // Leaf is reachable both directly and through Mid; BFS keeps the
  // one-hop parent, so the chain is the short one.
  EXPECT_EQ(ChainOf(model, parent, FindDef(model, "Leaf")),
            "Worker::Dispatch -> Worker::Leaf");
  EXPECT_EQ(ChainOf(model, parent, FindDef(model, "Mid")),
            "Worker::Dispatch -> Worker::Mid");
  EXPECT_EQ(ChainOf(model, parent, root), "Worker::Dispatch");
}

TEST(ReachabilityTest, EnterGateCutsTheWalk) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/net/gate.cc",
       "void Leaf() {}\n"
       "void Mid() { Leaf(); }\n"
       "void Root() { Mid(); }\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  const CallGraph calls = BuildCallGraph(model);

  const DefId mid = FindDef(model, "Mid");
  const std::set<DefId> reached = ReachableFrom(
      calls, {FindDef(model, "Root")},
      [&](const DefId& id) { return !(id == mid); }, nullptr);
  // Refusing entry into Mid keeps Leaf unreachable too.
  EXPECT_EQ(reached.count(mid), 0u);
  EXPECT_EQ(reached.count(FindDef(model, "Leaf")), 0u);
  EXPECT_EQ(reached.size(), 1u);
}

// --- decide-path fixpoint ----------------------------------------------------

TEST(DecidingDefsTest, PropagatesBackwardsOverCallers) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/net/session.cc",
       "class Session {\n"
       " public:\n"
       "  bool Process(int post) { return Offer(post); }\n"
       "  bool Handle(int post) { return Process(post); }\n"
       "  void Idle() {}\n"
       "  bool Offer(int post) { return post > 0; }\n"
       "};\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  const std::set<DefId> deciding = DecidingDefs(model, BuildCallGraph(model));

  EXPECT_EQ(deciding.count(FindDef(model, "Process")), 1u);
  EXPECT_EQ(deciding.count(FindDef(model, "Handle")), 1u);
  EXPECT_EQ(deciding.count(FindDef(model, "Idle")), 0u);
}

// --- taint summaries ---------------------------------------------------------

constexpr const char* kTaintTree =
    "#include <vector>\n"
    "struct Msg { unsigned long count; };\n"
    "long ReadWire(int fd, Msg* out) FIREHOSE_TAINT_SOURCE;\n"
    "void Apply(std::vector<int>* sink, unsigned long n) {\n"
    "  sink->resize(n);\n"
    "}\n"
    "void Handle(int fd, std::vector<int>* v) {\n"
    "  Msg m;\n"
    "  ReadWire(fd, &m);\n"
    "  v->resize(m.count);\n"
    "  Apply(v, m.count);\n"
    "}\n"
    "void HandleChecked(int fd, std::vector<int>* v) {\n"
    "  Msg m;\n"
    "  ReadWire(fd, &m);\n"
    "  if (m.count > 64) return;\n"
    "  v->resize(m.count);\n"
    "}\n";

TEST(SummariesTest, SinkParamsAndOriginHitsAreRecorded) {
  const IncludeGraph graph =
      BuildIncludeGraph({{"src/net/taint.cc", kTaintTree}});
  const SemaModel model = BuildSemaModel(graph);

  // The annotated declaration registers the source at its arity.
  ASSERT_EQ(model.taint_sources.count("ReadWire"), 1u);
  EXPECT_EQ(model.taint_sources.at("ReadWire").count(2), 1u);

  const SummaryTable table = BuildSummaries(model, BuildCallGraph(model));

  // Apply pipes parameter 1 into resize unsanitized.
  const FunctionSummary* apply = table.Find(FindDef(model, "Apply"));
  ASSERT_NE(apply, nullptr);
  EXPECT_EQ(apply->sink_params, std::set<int>{1});
  EXPECT_TRUE(apply->hits.empty());

  // Handle: the direct resize and the interprocedural flow through
  // Apply both land as hits with the source's name attached.
  const FunctionSummary* handle = table.Find(FindDef(model, "Handle"));
  ASSERT_NE(handle, nullptr);
  ASSERT_EQ(handle->hits.size(), 2u);
  for (const sema::TaintHit& hit : handle->hits) {
    EXPECT_EQ(hit.origins, std::set<std::string>{"ReadWire"});
  }

  // The bound check sanitizes: no hits in HandleChecked.
  const FunctionSummary* checked = table.Find(FindDef(model, "HandleChecked"));
  ASSERT_NE(checked, nullptr);
  EXPECT_TRUE(checked->hits.empty());
}

TEST(SummariesTest, ArityMismatchedCallsAreNotSources) {
  // Rng::Next() — arity 0 — must not light up just because a two-arg
  // FrameReader-style Next is a taint source somewhere else.
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/net/reader.h",
       "#ifndef R_\n#define R_\n"
       "struct Frame { unsigned long size; };\n"
       "long Next(int fd, Frame* out) FIREHOSE_TAINT_SOURCE;\n"
       "#endif\n"},
      {"src/gen/rng.cc",
       "#include <vector>\n"
       "#include \"src/net/reader.h\"\n"
       "unsigned long Next();\n"
       "void Shuffle(std::vector<int>* v) {\n"
       "  v->resize(Next());\n"
       "}\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  ASSERT_EQ(model.taint_sources.count("Next"), 1u);
  EXPECT_EQ(model.taint_sources.at("Next").count(2), 1u);
  EXPECT_EQ(model.taint_sources.at("Next").count(0), 0u);

  const SummaryTable table = BuildSummaries(model, BuildCallGraph(model));
  const FunctionSummary* shuffle = table.Find(FindDef(model, "Shuffle"));
  ASSERT_NE(shuffle, nullptr);
  EXPECT_TRUE(shuffle->hits.empty());
}

TEST(SummariesTest, DefaultedParametersWidenTheArityRange) {
  const IncludeGraph graph = BuildIncludeGraph({
      {"src/io/read.cc",
       "long ReadSome(char* buf, int len, int timeout_ms = -1)"
       " FIREHOSE_TAINT_SOURCE;\n"},
  });
  const SemaModel model = BuildSemaModel(graph);
  ASSERT_EQ(model.taint_sources.count("ReadSome"), 1u);
  const std::set<size_t>& arities = model.taint_sources.at("ReadSome");
  EXPECT_EQ(arities, (std::set<size_t>{2, 3}));
}

}  // namespace
}  // namespace analysis
}  // namespace firehose
