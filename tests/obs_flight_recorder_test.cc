#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/clock.h"

namespace firehose {
namespace obs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FlightRecorderTest, RecordsAndDumpsCompleteSpans) {
  ManualClock clock(1000);
  FlightRecorder recorder(&clock);
  recorder.RecordComplete(0, "decide", "pipeline", 1000, 4000);
  recorder.RecordComplete(1, "release", "live", 2000, 2500);
  EXPECT_EQ(recorder.TotalRecorded(), 2u);

  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"release\""), std::string::npos);
  // Timestamps rebase to the earliest retained event, in microseconds:
  // decide starts at 0us (dur 3us), release at 1us (dur 0us -> rounds
  // into the span arithmetic at microsecond granularity).
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(FlightRecorderTest, InstantEventsUseInstantPhase) {
  ManualClock clock(5000);
  FlightRecorder recorder(&clock);
  recorder.RecordInstant(0, "trip", "watchdog");
  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trip\""), std::string::npos);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsNewest) {
  ManualClock clock(0);
  FlightRecorder recorder(&clock);
  const int total = FlightRecorder::kSlotsPerThread + 100;
  for (int i = 0; i < total; ++i) {
    const uint64_t t = static_cast<uint64_t>(i) * 1000;
    recorder.RecordComplete(0, i % 2 == 0 ? "even" : "odd", "wrap", t,
                            t + 10);
  }
  EXPECT_EQ(recorder.TotalRecorded(), static_cast<uint64_t>(total));
  const std::string json = recorder.DumpJson();
  // Only the ring capacity is retained.
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"wrap\""),
            static_cast<size_t>(FlightRecorder::kSlotsPerThread));
  // The earliest retained events are the ones just past the overwrite
  // point, so after rebasing the first dumped timestamp is 0.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
}

TEST(FlightRecorderTest, WindowKeepsOnlyRecentEvents) {
  ManualClock clock(0);
  FlightRecorder recorder(&clock);
  recorder.RecordComplete(0, "old", "w", 1'000'000'000, 1'000'001'000);
  recorder.RecordComplete(0, "recent", "w", 9'000'000'000, 9'000'001'000);
  recorder.RecordComplete(0, "newest", "w", 10'000'000'000,
                          10'000'001'000);
  // 2s window anchored at the newest end: "old" (9s earlier) drops out.
  const std::string json = recorder.DumpJson(2'000'000'000);
  EXPECT_EQ(json.find("\"name\":\"old\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"recent\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"newest\""), std::string::npos);
}

TEST(FlightRecorderTest, EventsAboveMaxThreadsAreDropped) {
  ManualClock clock(0);
  FlightRecorder recorder(&clock);
  recorder.RecordComplete(FlightRecorder::kMaxThreads, "dropped", "x", 0, 1);
  EXPECT_EQ(recorder.TotalRecorded(), 0u);
  EXPECT_EQ(recorder.DumpJson().find("dropped"), std::string::npos);
}

TEST(FlightRecorderTest, DumpIsWellFormedWhileWritersKeepRecording) {
  FlightRecorder recorder;  // real clock: writers race the dumper
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (uint32_t tid = 0; tid < 4; ++tid) {
    writers.emplace_back([&recorder, &stop, tid] {
      uint64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.RecordComplete(tid, "spin", "stress", t, t + 5);
        t += 10;
      }
    });
  }
  // Make sure the writers are actually running before racing them.
  while (recorder.TotalRecorded() < 10000) {
  }
  for (int i = 0; i < 50; ++i) {
    const std::string json = recorder.DumpJson();
    // Structural sanity under concurrency: balanced object braces, the
    // trailer present, no torn half-written names.
    ASSERT_NE(json.find("\"traceEvents\":["), std::string::npos);
    ASSERT_EQ(json.substr(json.size() - 3), "]}\n");
    ASSERT_EQ(CountOccurrences(json, "{\"name\""),
              CountOccurrences(json, "\"ph\""));
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  EXPECT_GT(recorder.TotalRecorded(), 0u);
}

TEST(FlightRecorderTest, DumpToFdWritesParsableTrace) {
  ManualClock clock(0);
  FlightRecorder recorder(&clock);
  recorder.RecordComplete(2, "offer", "shard", 5000, 8000);
  const std::string path = ::testing::TempDir() + "flight_fd_dump.json";
  FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  recorder.DumpToFd(fileno(file));
  std::fclose(file);
  const std::string dump = Slurp(path);
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"offer\""), std::string::npos);
  EXPECT_NE(dump.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(dump.substr(dump.size() - 3), "]}\n");
  std::remove(path.c_str());
}

/// Forks, crashes the child with `sig` after installing the crash
/// handler, and returns the dump the handler left behind.
std::string CrashAndCollect(int sig, const std::string& path) {
  std::remove(path.c_str());
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: record some history, install the handler, die.
    static FlightRecorder recorder;
    SetGlobalFlightRecorder(&recorder);
    recorder.RecordComplete(0, "decide", "pipeline", 100, 200);
    recorder.RecordComplete(1, "release", "live", 150, 160);
    InstallCrashDumpHandler(path.c_str());
    ::raise(sig);
    _exit(0);  // unreachable
  }
  int status = 0;
  waitpid(pid, &status, 0);
  // The handler re-raises with default disposition, so the child dies
  // of the original signal, not exit(0).
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), sig);
  return Slurp(path);
}

TEST(CrashDumpTest, SigabrtLeavesWellFormedTraceFile) {
  const std::string path = ::testing::TempDir() + "flight_crash_abrt.json";
  const std::string dump = CrashAndCollect(SIGABRT, path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"release\""), std::string::npos);
  EXPECT_EQ(dump.substr(dump.size() - 3), "]}\n");
  std::remove(path.c_str());
}

TEST(CrashDumpTest, SigsegvLeavesWellFormedTraceFile) {
  const std::string path = ::testing::TempDir() + "flight_crash_segv.json";
  const std::string dump = CrashAndCollect(SIGSEGV, path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_EQ(dump.substr(dump.size() - 3), "]}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace firehose
