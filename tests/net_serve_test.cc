// In-process serving-layer tests (src/net/server + src/net/client): a
// real Server on an ephemeral loopback port, driven by ServeClient.
// The core property is exactness — for any shard count, the timelines
// served over the socket equal the sequential S_* engine's per-user
// deliveries byte for byte — plus durability (graceful stop, restart,
// resend, dedupe) and protocol error handling.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/firehose.h"

namespace firehose {
namespace net {
namespace {

struct Workload {
  AuthorGraph graph;
  PostStream stream;
  std::vector<User> users;
};

/// Small but structurally rich workload: community-clustered authors so
/// components are shared, §6.3 user population (every author with a
/// nonempty followee set subscribes to it).
Workload MakeWorkload() {
  Workload w;
  SocialGraphOptions social_options;
  social_options.num_authors = 120;
  social_options.num_communities = 5;
  social_options.avg_followees = 12.0;
  social_options.seed = 20260808;
  const FollowGraph social = GenerateSocialGraph(social_options);

  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto similarities = AllPairsSimilarity(social, authors, 0.05);
  w.graph = AuthorGraph::FromSimilarities(authors, similarities, 0.7);

  StreamGenOptions stream_options;
  stream_options.posts_per_author = 6.0;
  stream_options.seed = 11;
  const SimHasher hasher;
  w.stream = GenerateStream(w.graph, hasher, stream_options);

  for (AuthorId a = 0; a < social.num_authors(); ++a) {
    const auto& followees = social.Followees(a);
    if (followees.empty()) continue;
    w.users.emplace_back(static_cast<UserId>(w.users.size()), followees);
  }
  return w;
}

/// Per-user expected timelines from the sequential S_* engine.
std::vector<std::vector<PostId>> ExpectedTimelines(const Workload& w,
                                                   Algorithm algorithm,
                                                   DiversityThresholds t) {
  auto engine = MakeSUserEngine(algorithm, t, w.graph, w.users);
  std::vector<std::pair<PostId, UserId>> deliveries;
  (void)RunMultiUser(*engine, w.stream, &deliveries);
  std::vector<std::vector<PostId>> timelines(w.users.size());
  for (const auto& [post, user] : deliveries) timelines[user].push_back(post);
  return timelines;
}

class NetServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = MakeWorkload();
    ASSERT_GT(workload_.users.size(), 50u);
    ASSERT_GT(workload_.stream.size(), 300u);
    std::filesystem::remove_all(kDataDir);
  }

  void TearDown() override { std::filesystem::remove_all(kDataDir); }

  /// Follows + seals the §6.3 population through `client`.
  void SealUsers(ServeClient& client) {
    for (const User& user : workload_.users) {
      for (const AuthorId author : user.subscriptions) {
        ASSERT_TRUE(client.Follow(user.id, author)) << client.last_error();
      }
    }
    ASSERT_TRUE(client.Seal(workload_.users.size())) << client.last_error();
  }

  void SendStream(ServeClient& client) {
    for (const Post& post : workload_.stream) {
      ASSERT_TRUE(client.SendPost(post)) << client.last_error();
    }
    ASSERT_TRUE(client.Flush()) << client.last_error();
  }

  void ExpectServedTimelinesMatch(ServeClient& client,
                                  const std::vector<std::vector<PostId>>&
                                      expected) {
    for (const User& user : workload_.users) {
      std::vector<PostId> served;
      ASSERT_TRUE(client.Poll(user.id, 0, &served)) << client.last_error();
      EXPECT_EQ(served, expected[user.id]) << "user " << user.id;
    }
  }

  ServeOptions Options(uint32_t num_shards, const std::string& data_dir = "") {
    ServeOptions options;
    options.num_shards = num_shards;
    options.algorithm = Algorithm::kCliqueBin;
    options.data_dir = data_dir;
    options.wal_sync = "none";  // graceful Stop closes cleanly regardless
    return options;
  }

  static constexpr const char* kDataDir = "net_serve_test_data";
  Workload workload_;
};

TEST_F(NetServeTest, ServedTimelinesEqualSequentialEngineOneShard) {
  Server server(Options(1), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ServeClient client;
  ServeClient::ConnectInfo info;
  ASSERT_TRUE(client.Connect(server.port(), &info)) << client.last_error();
  EXPECT_EQ(info.num_shards, 1u);
  EXPECT_FALSE(info.sealed);

  SealUsers(client);
  SendStream(client);
  const auto expected =
      ExpectedTimelines(workload_, Algorithm::kCliqueBin, DiversityThresholds{});
  ExpectServedTimelinesMatch(client, expected);
  client.Disconnect();
  server.Stop();
}

TEST_F(NetServeTest, ServedTimelinesEqualSequentialEngineThreeShards) {
  Server server(Options(3), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ServeClient client;
  ServeClient::ConnectInfo info;
  ASSERT_TRUE(client.Connect(server.port(), &info)) << client.last_error();
  EXPECT_EQ(info.num_shards, 3u);

  SealUsers(client);
  SendStream(client);
  const auto expected =
      ExpectedTimelines(workload_, Algorithm::kCliqueBin, DiversityThresholds{});
  ExpectServedTimelinesMatch(client, expected);
  client.Disconnect();
  server.Stop();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.posts_received, workload_.stream.size());
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_GT(stats.deliveries, 0u);
}

TEST_F(NetServeTest, GracefulRestartRecoversAndResendDedupes) {
  uint64_t first_ingested = 0;
  {
    Server server(Options(2, kDataDir), &workload_.graph);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.Connect(server.port())) << client.last_error();
    SealUsers(client);
    SendStream(client);
    uint64_t duplicates = 0;
    ASSERT_TRUE(client.Flush(&first_ingested, &duplicates))
        << client.last_error();
    EXPECT_GT(first_ingested, 0u);
    EXPECT_EQ(duplicates, 0u);
    client.Disconnect();
    server.Stop();
  }

  // Second incarnation over the same data_dir: recovers the sealed
  // subscription state and every durable post, so the full resend is
  // entirely duplicates and the timelines don't change.
  Server server(Options(2, kDataDir), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_TRUE(server.sealed()) << "seal record not recovered";

  ServeClient client;
  ServeClient::ConnectInfo info;
  ASSERT_TRUE(client.Connect(server.port(), &info)) << client.last_error();
  EXPECT_TRUE(info.sealed);
  EXPECT_EQ(info.posts_ingested, first_ingested);

  for (const Post& post : workload_.stream) {
    ASSERT_TRUE(client.SendPost(post)) << client.last_error();
  }
  uint64_t ingested = 0;
  uint64_t duplicates = 0;
  ASSERT_TRUE(client.Flush(&ingested, &duplicates)) << client.last_error();
  EXPECT_EQ(ingested, first_ingested) << "resend ingested new posts";
  EXPECT_EQ(duplicates, first_ingested);

  const auto expected =
      ExpectedTimelines(workload_, Algorithm::kCliqueBin, DiversityThresholds{});
  ExpectServedTimelinesMatch(client, expected);
  client.Disconnect();
  server.Stop();
}

TEST_F(NetServeTest, PollSinceReturnsTheSuffix) {
  Server server(Options(2), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ServeClient client;
  ASSERT_TRUE(client.Connect(server.port())) << client.last_error();
  SealUsers(client);
  SendStream(client);

  // Find a user with a few deliveries and page through their timeline.
  const auto expected =
      ExpectedTimelines(workload_, Algorithm::kCliqueBin, DiversityThresholds{});
  for (const User& user : workload_.users) {
    if (expected[user.id].size() < 3) continue;
    const auto& want = expected[user.id];
    std::vector<PostId> suffix;
    ASSERT_TRUE(client.Poll(user.id, 2, &suffix)) << client.last_error();
    EXPECT_EQ(suffix, std::vector<PostId>(want.begin() + 2, want.end()));

    std::vector<PostId> past_end;
    ASSERT_TRUE(client.Poll(user.id,
                            static_cast<uint32_t>(want.size()) + 10,
                            &past_end));
    EXPECT_TRUE(past_end.empty());
    break;
  }
  client.Disconnect();
  server.Stop();
}

TEST_F(NetServeTest, ProtocolErrorsAreReportedNotFatalToTheServer) {
  Server server(Options(1), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    // Posting before seal is a protocol error that poisons only this
    // connection.
    ServeClient early;
    ASSERT_TRUE(early.Connect(server.port())) << early.last_error();
    ASSERT_TRUE(early.SendPost(workload_.stream.front()));
    EXPECT_FALSE(early.Flush());
    EXPECT_NE(early.last_error().find("server error"), std::string::npos)
        << early.last_error();
  }

  // The dispatcher serves one connection at a time, so each client
  // below closes before the next connects.
  {
    ServeClient client;
    ASSERT_TRUE(client.Connect(server.port())) << client.last_error();
    SealUsers(client);
    client.Disconnect();
  }

  {
    // Follow after seal on a fresh connection: rejected.
    ServeClient late;
    ASSERT_TRUE(late.Connect(server.port())) << late.last_error();
    ASSERT_TRUE(late.Follow(0, 0));
    EXPECT_FALSE(late.Flush());
  }

  // Unknown user: the error names the bound.
  std::vector<PostId> timeline;
  ServeClient poller;
  ASSERT_TRUE(poller.Connect(server.port())) << poller.last_error();
  EXPECT_FALSE(poller.Poll(static_cast<UserId>(workload_.users.size() + 5), 0,
                           &timeline));
  EXPECT_NE(poller.last_error().find("server error"), std::string::npos);

  // The server survived all of the above.
  ServeClient fine;
  ASSERT_TRUE(fine.Connect(server.port())) << fine.last_error();
  ASSERT_TRUE(fine.Flush());
  fine.Disconnect();
  server.Stop();
}

TEST_F(NetServeTest, MalformedBytesPoisonTheConnection) {
  Server server(Options(1), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Raw socket client speaking garbage: the server must answer kError
  // (or close), never crash, and keep serving the next connection.
  {
    OwnedFd fd = ConnectLoopback(server.port(), 2000);
    ASSERT_TRUE(fd.valid());
    ASSERT_TRUE(WriteAllFd(fd.get(), "GET / HTTP/1.1\r\n\r\n"));
    FrameReader reader(fd.get());
    NetMessage response;
    const FrameReader::Result result = reader.Next(&response, 2000);
    if (result == FrameReader::Result::kMessage) {
      EXPECT_EQ(response.type, MsgType::kError);
    } else {
      EXPECT_EQ(result, FrameReader::Result::kClosed);
    }
  }

  ServeClient client;
  EXPECT_TRUE(client.Connect(server.port())) << client.last_error();
  EXPECT_GE(server.stats().malformed, 1u);
  client.Disconnect();
  server.Stop();
}

TEST_F(NetServeTest, HelloWithWrongMagicIsRejected) {
  Server server(Options(1), &workload_.graph);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  OwnedFd fd = ConnectLoopback(server.port(), 2000);
  ASSERT_TRUE(fd.valid());
  NetMessage hello;
  hello.type = MsgType::kHello;
  hello.magic = 0x12345678;  // not kHelloMagic
  hello.min_version = kWireVersion;
  hello.max_version = kWireVersion;
  hello.client_name = "imposter";
  ASSERT_TRUE(SendMessage(fd.get(), hello));

  FrameReader reader(fd.get());
  NetMessage response;
  ASSERT_EQ(reader.Next(&response, 2000), FrameReader::Result::kMessage);
  EXPECT_EQ(response.type, MsgType::kError);
  server.Stop();
}

TEST_F(NetServeTest, ControlRecordCodecsRoundTripThroughTheWal) {
  // The control-WAL payloads are tiny; pin their exact shape so a
  // recovery of today's records keeps working after future edits.
  const std::string follow = EncodeFollowRecord(7, 99);
  const std::string seal = EncodeSealRecord(298);
  EXPECT_EQ(follow[0], 1);
  EXPECT_EQ(seal[0], 2);
  BinaryReader follow_reader(std::string_view(follow).substr(1));
  uint64_t user = 0;
  uint64_t author = 0;
  ASSERT_TRUE(follow_reader.GetVarint(&user));
  ASSERT_TRUE(follow_reader.GetVarint(&author));
  EXPECT_EQ(user, 7u);
  EXPECT_EQ(author, 99u);
  EXPECT_TRUE(follow_reader.AtEnd());
  BinaryReader seal_reader(std::string_view(seal).substr(1));
  uint64_t num_users = 0;
  ASSERT_TRUE(seal_reader.GetVarint(&num_users));
  EXPECT_EQ(num_users, 298u);
  EXPECT_TRUE(seal_reader.AtEnd());
}

}  // namespace
}  // namespace net
}  // namespace firehose
