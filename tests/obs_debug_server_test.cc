#include "src/obs/debug_server.h"

#include <gtest/gtest.h>

#include <string>

#include "src/io/http.h"
#include "src/obs/clock.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/watchdog.h"
#include "src/util/build_info.h"

namespace firehose {
namespace obs {
namespace {

std::string Fetch(const DebugServer& server, const std::string& path,
                  int* status) {
  std::string body;
  EXPECT_TRUE(HttpGet(server.port(), path, status, &body)) << path;
  return body;
}

TEST(DebugStateTest, PublishesAndReadsBackSnapshots) {
  DebugState state;
  EXPECT_EQ(state.publish_count(), 0u);
  EXPECT_TRUE(state.metrics_prometheus().empty());

  state.PublishMetrics("prom-bytes", "varz-bytes");
  state.PublishStatus("{\"mode\": \"live\"}");
  EXPECT_EQ(state.metrics_prometheus(), "prom-bytes");
  EXPECT_EQ(state.varz_json(), "varz-bytes");
  EXPECT_EQ(state.status_json(), "{\"mode\": \"live\"}");
  EXPECT_EQ(state.publish_count(), 1u);

  // A later publish fully replaces the previous snapshot.
  state.PublishMetrics("prom-2", "varz-2");
  EXPECT_EQ(state.metrics_prometheus(), "prom-2");
  EXPECT_EQ(state.publish_count(), 2u);
}

TEST(DebugServerTest, HealthzAndUnknownRoute) {
  DebugServer server;
  ASSERT_TRUE(server.Start(0));
  int status = 0;
  EXPECT_EQ(Fetch(server, "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);

  const std::string missing = Fetch(server, "/definitely-not-a-route",
                                    &status);
  EXPECT_EQ(status, 404);
  EXPECT_NE(missing.find("/statusz"), std::string::npos);
  server.Stop();
}

TEST(DebugServerTest, MetricszAndVarzServeLatestPublish) {
  DebugServer server;
  ASSERT_TRUE(server.Start(0));

  int status = 0;
  // Before the first publish: empty exposition, "{}" JSON.
  EXPECT_EQ(Fetch(server, "/metricsz", &status), "");
  EXPECT_EQ(status, 200);
  EXPECT_EQ(Fetch(server, "/varz", &status), "{}\n");

  MetricsRegistry registry;
  registry.GetCounter("live.posts_in")->Add(41);
  server.state()->PublishMetrics(ExportPrometheus(registry),
                                 ExportJson(registry));
  const std::string prom = Fetch(server, "/metricsz", &status);
  EXPECT_NE(prom.find("firehose_live_posts_in 41"), std::string::npos);
  const std::string varz = Fetch(server, "/varz", &status);
  EXPECT_NE(varz.find("\"firehose.metrics.v1\""), std::string::npos);
  EXPECT_NE(varz.find("\"live.posts_in\": 41"), std::string::npos);
  server.Stop();
}

TEST(DebugServerTest, StatuszCarriesBuildUptimeWatchdogAndRuntime) {
  ManualClock clock(0);
  Watchdog watchdog(1'000'000'000, &clock);
  const int task = watchdog.RegisterTask("consumer");
  watchdog.ReportProgress(task, 12);
  watchdog.SetQueueDepth(task, 3);

  DebugServer::Options options;
  options.clock = &clock;
  options.watchdog = &watchdog;
  DebugServer server(options);
  ASSERT_TRUE(server.Start(0));
  server.state()->PublishStatus("{\"mode\": \"live\", \"posts_in\": 7}");
  clock.AdvanceNanos(1'500'000'000);

  int status = 0;
  const std::string body = Fetch(server, "/statusz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"build\": \"" + std::string(kBuildVersion)),
            std::string::npos);
  EXPECT_NE(body.find("\"uptime_ms\": 1500"), std::string::npos);
  EXPECT_NE(body.find("\"watchdog\": {\"trips\": 0"), std::string::npos);
  EXPECT_NE(body.find("{\"name\": \"consumer\", \"progress\": 12, "
                      "\"depth\": 3, \"stalled\": false}"),
            std::string::npos);
  EXPECT_NE(body.find("\"runtime\": {\"mode\": \"live\", \"posts_in\": 7}"),
            std::string::npos);
  server.Stop();
}

TEST(DebugServerTest, TracezIs404WithoutARecorder) {
  SetGlobalFlightRecorder(nullptr);
  DebugServer server;
  ASSERT_TRUE(server.Start(0));
  int status = 0;
  Fetch(server, "/tracez", &status);
  EXPECT_EQ(status, 404);
  server.Stop();
}

TEST(DebugServerTest, TracezDumpsTheConfiguredRecorderWithWindow) {
  ManualClock clock(0);
  FlightRecorder flight(&clock);
  flight.RecordComplete(0, "old", "t", 0, 1000);
  flight.RecordComplete(0, "fresh", "t", 60'000'000'000ull,
                        60'000'001'000ull);

  DebugServer::Options options;
  options.flight = &flight;
  DebugServer server(options);
  ASSERT_TRUE(server.Start(0));

  int status = 0;
  // Default window is 30s anchored at the newest event: "old" drops.
  const std::string recent = Fetch(server, "/tracez", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(recent.find("\"name\":\"fresh\""), std::string::npos);
  EXPECT_EQ(recent.find("\"name\":\"old\""), std::string::npos);

  // window_s=0 asks for everything retained.
  const std::string all = Fetch(server, "/tracez?window_s=0", &status);
  EXPECT_NE(all.find("\"name\":\"old\""), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"fresh\""), std::string::npos);
  server.Stop();
}

TEST(DebugServerTest, ScrapesAreInternallyConsistentAcrossPublishes) {
  DebugServer server;
  ASSERT_TRUE(server.Start(0));
  // Two counters published in lockstep: any scrape must see them equal,
  // never a half-applied update.
  for (int round = 1; round <= 20; ++round) {
    MetricsRegistry registry;
    registry.GetCounter("a")->Add(static_cast<uint64_t>(round));
    registry.GetCounter("b")->Add(static_cast<uint64_t>(round));
    server.state()->PublishMetrics(ExportPrometheus(registry),
                                   ExportJson(registry));
    int status = 0;
    const std::string varz = Fetch(server, "/varz", &status);
    EXPECT_NE(varz.find("\"a\": " + std::to_string(round)),
              std::string::npos)
        << varz;
    EXPECT_NE(varz.find("\"b\": " + std::to_string(round)),
              std::string::npos)
        << varz;
  }
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace firehose
