// Hostile-input hardening for the binary persistence layer: zero-byte
// files, truncation at every byte offset, cross-format magic confusion,
// version bumps and absurd declared counts must all make Load* return
// false — quickly, without oversized allocations (the bounded-reserve
// guards in persist.cc), and without mutating the output object. Runs
// under ASan in the sanitizer presets.

#include "src/io/persist.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/io/binary.h"
#include "src/util/binary.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

// On-disk header constants, mirrored from persist.cc: these pin the file
// format, so the test is allowed to know them.
constexpr uint64_t kFollowGraphMagic = 0x464847;
constexpr uint64_t kSimilarityMagic = 0x464853;
constexpr uint64_t kAuthorGraphMagic = 0x464841;
constexpr uint64_t kCliqueCoverMagic = 0x464843;
constexpr uint64_t kPostStreamMagic = 0x464850;
constexpr uint64_t kHuge = 1ull << 62;

/// One persisted format under test: its valid bytes, a loader targeting a
/// long-lived output object, and a snapshot of that object (via re-save)
/// to prove failed loads left it untouched.
struct Format {
  std::string name;
  uint64_t magic = 0;
  std::string valid;
  std::function<bool(const std::string& path)> load;
  std::function<std::string()> snapshot;
};

class PersistHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string("persist_hardening_tmp_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directory(dir_);

    Rng rng(20260806);
    author_graph_ = testing_util::RandomAuthorGraph(8, 0.4, rng);
    cover_ = CliqueCover::Greedy(author_graph_);
    stream_ = testing_util::RandomStream(12, 8, 50, rng);
    follow_ = FollowGraph(6);
    follow_.AddFollow(0, 1);
    follow_.AddFollow(0, 3);
    follow_.AddFollow(2, 5);
    follow_.AddFollow(4, 1);
    follow_.Finalize();
    pairs_ = {{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 0.875}};
    BuildFormats();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void BuildFormats() {
    const std::string snap = dir_ + "/snap.bin";
    auto slurp = [](const std::string& path) {
      std::string bytes;
      EXPECT_TRUE(ReadFileToString(path, &bytes)) << path;
      return bytes;
    };

    Format follow;
    follow.name = "FollowGraph";
    follow.magic = kFollowGraphMagic;
    ASSERT_TRUE(SaveFollowGraph(follow_, dir_ + "/follow.bin"));
    follow.valid = slurp(dir_ + "/follow.bin");
    follow.load = [this](const std::string& p) {
      return LoadFollowGraph(p, &loaded_follow_);
    };
    follow.snapshot = [this, snap, slurp] {
      EXPECT_TRUE(SaveFollowGraph(loaded_follow_, snap));
      return slurp(snap);
    };
    formats_.push_back(std::move(follow));

    Format sims;
    sims.name = "Similarities";
    sims.magic = kSimilarityMagic;
    ASSERT_TRUE(SaveSimilarities(pairs_, dir_ + "/sims.bin"));
    sims.valid = slurp(dir_ + "/sims.bin");
    sims.load = [this](const std::string& p) {
      return LoadSimilarities(p, &loaded_pairs_);
    };
    sims.snapshot = [this, snap, slurp] {
      EXPECT_TRUE(SaveSimilarities(loaded_pairs_, snap));
      return slurp(snap);
    };
    formats_.push_back(std::move(sims));

    Format author;
    author.name = "AuthorGraph";
    author.magic = kAuthorGraphMagic;
    ASSERT_TRUE(SaveAuthorGraph(author_graph_, dir_ + "/author.bin"));
    author.valid = slurp(dir_ + "/author.bin");
    author.load = [this](const std::string& p) {
      return LoadAuthorGraph(p, &loaded_author_graph_);
    };
    author.snapshot = [this, snap, slurp] {
      EXPECT_TRUE(SaveAuthorGraph(loaded_author_graph_, snap));
      return slurp(snap);
    };
    formats_.push_back(std::move(author));

    Format clique;
    clique.name = "CliqueCover";
    clique.magic = kCliqueCoverMagic;
    ASSERT_TRUE(SaveCliqueCover(cover_, 8, dir_ + "/cover.bin"));
    clique.valid = slurp(dir_ + "/cover.bin");
    clique.load = [this](const std::string& p) {
      return LoadCliqueCover(p, &loaded_cover_);
    };
    clique.snapshot = [this, snap, slurp] {
      EXPECT_TRUE(SaveCliqueCover(loaded_cover_, 8, snap));
      return slurp(snap);
    };
    formats_.push_back(std::move(clique));

    Format posts;
    posts.name = "PostStream";
    posts.magic = kPostStreamMagic;
    ASSERT_TRUE(SavePostStream(stream_, dir_ + "/posts.bin"));
    posts.valid = slurp(dir_ + "/posts.bin");
    posts.load = [this](const std::string& p) {
      return LoadPostStream(p, &loaded_stream_);
    };
    posts.snapshot = [this, snap, slurp] {
      EXPECT_TRUE(SavePostStream(loaded_stream_, snap));
      return slurp(snap);
    };
    formats_.push_back(std::move(posts));
  }

  /// Header + a run of varints: the shape of every crafted attack file.
  static std::string Craft(uint64_t magic,
                           std::initializer_list<uint64_t> varints) {
    BinaryWriter writer;
    writer.PutVarint(magic);
    writer.PutU8(1);  // kVersion
    for (uint64_t v : varints) writer.PutVarint(v);
    return writer.Release();
  }

  static size_t HeaderSize(uint64_t magic) {
    BinaryWriter writer;
    writer.PutVarint(magic);
    writer.PutU8(1);
    return writer.size();
  }

  std::string dir_;
  std::vector<Format> formats_;

  FollowGraph follow_;
  std::vector<AuthorPairSimilarity> pairs_;
  AuthorGraph author_graph_;
  CliqueCover cover_;
  PostStream stream_;

  FollowGraph loaded_follow_;
  std::vector<AuthorPairSimilarity> loaded_pairs_;
  AuthorGraph loaded_author_graph_;
  CliqueCover loaded_cover_;
  PostStream loaded_stream_;
};

TEST_F(PersistHardeningTest, MissingFileIsRejected) {
  for (Format& f : formats_) {
    EXPECT_FALSE(f.load(dir_ + "/does_not_exist.bin")) << f.name;
  }
}

TEST_F(PersistHardeningTest, ZeroByteFileIsRejected) {
  const std::string path = dir_ + "/zero.bin";
  ASSERT_TRUE(WriteFileAtomic(path, ""));
  for (Format& f : formats_) {
    EXPECT_FALSE(f.load(path)) << f.name;
  }
}

TEST_F(PersistHardeningTest, TruncationAtEveryByteIsRejected) {
  const std::string path = dir_ + "/truncated.bin";
  for (Format& f : formats_) {
    ASSERT_TRUE(f.load(dir_ + "/does_not_exist.bin") == false);
    // Start from a known-good loaded state so mutation would be visible.
    const std::string valid_path = dir_ + "/valid.bin";
    ASSERT_TRUE(WriteFileAtomic(valid_path, f.valid));
    ASSERT_TRUE(f.load(valid_path)) << f.name;
    const std::string pristine = f.snapshot();

    for (size_t cut = 0; cut < f.valid.size(); ++cut) {
      ASSERT_TRUE(
          WriteFileAtomic(path, std::string_view(f.valid).substr(0, cut)));
      EXPECT_FALSE(f.load(path))
          << f.name << ": truncation to " << cut << " bytes accepted";
    }
    EXPECT_EQ(f.snapshot(), pristine)
        << f.name << " was mutated by a failed load";
  }
}

TEST_F(PersistHardeningTest, CrossFormatMagicIsRejected) {
  const std::string path = dir_ + "/cross.bin";
  for (Format& source : formats_) {
    ASSERT_TRUE(WriteFileAtomic(path, source.valid));
    for (Format& loader : formats_) {
      if (loader.name == source.name) continue;
      EXPECT_FALSE(loader.load(path))
          << loader.name << " accepted a " << source.name << " file";
    }
  }
}

TEST_F(PersistHardeningTest, WrongVersionIsRejected) {
  const std::string path = dir_ + "/version.bin";
  for (Format& f : formats_) {
    std::string bumped = f.valid;
    const size_t version_at = HeaderSize(f.magic) - 1;
    ASSERT_LT(version_at, bumped.size()) << f.name;
    ASSERT_EQ(bumped[version_at], 1) << f.name;
    bumped[version_at] = 2;
    ASSERT_TRUE(WriteFileAtomic(path, bumped));
    EXPECT_FALSE(f.load(path)) << f.name << " accepted a future version";
  }
}

TEST_F(PersistHardeningTest, OversizedDeclaredCountsAreRejected) {
  // Every crafted file is a handful of bytes that *declares* ~4.6e18
  // elements; the loaders must refuse before reserving for them. (Under
  // a failed guard this test would OOM or time out rather than fail an
  // assertion — either way the regression is loud.)
  struct Case {
    std::string what;
    std::string bytes;
    std::function<bool(const std::string&)> load;
  };
  FollowGraph fg;
  std::vector<AuthorPairSimilarity> sims;
  AuthorGraph ag;
  CliqueCover cc;
  PostStream ps;
  std::vector<Case> cases;
  cases.push_back({"FollowGraph author count",
                   Craft(kFollowGraphMagic, {kHuge}),
                   [&](const std::string& p) { return LoadFollowGraph(p, &fg); }});
  cases.push_back({"FollowGraph followee count",
                   Craft(kFollowGraphMagic, {1, kHuge}),
                   [&](const std::string& p) { return LoadFollowGraph(p, &fg); }});
  cases.push_back({"Similarity pair count",
                   Craft(kSimilarityMagic, {kHuge}),
                   [&](const std::string& p) { return LoadSimilarities(p, &sims); }});
  cases.push_back({"AuthorGraph vertex count",
                   Craft(kAuthorGraphMagic, {kHuge}),
                   [&](const std::string& p) { return LoadAuthorGraph(p, &ag); }});
  cases.push_back({"AuthorGraph edge count",
                   Craft(kAuthorGraphMagic, {0, kHuge}),
                   [&](const std::string& p) { return LoadAuthorGraph(p, &ag); }});
  cases.push_back({"CliqueCover clique count",
                   Craft(kCliqueCoverMagic, {4, kHuge}),
                   [&](const std::string& p) { return LoadCliqueCover(p, &cc); }});
  cases.push_back({"CliqueCover clique size",
                   Craft(kCliqueCoverMagic, {4, 1, kHuge}),
                   [&](const std::string& p) { return LoadCliqueCover(p, &cc); }});
  cases.push_back({"PostStream post count",
                   Craft(kPostStreamMagic, {kHuge}),
                   [&](const std::string& p) { return LoadPostStream(p, &ps); }});
  {
    // A single post whose declared text length exceeds the file.
    BinaryWriter writer;
    writer.PutVarint(kPostStreamMagic);
    writer.PutU8(1);
    writer.PutVarint(1);        // count
    writer.PutVarint(7);        // id
    writer.PutVarint(3);        // author
    writer.PutSignedVarint(1000);
    writer.PutFixed64(0x1234);
    writer.PutVarint(kHuge);    // declared text length
    cases.push_back({"PostStream text length", writer.Release(),
                     [&](const std::string& p) { return LoadPostStream(p, &ps); }});
  }

  const std::string path = dir_ + "/oversized.bin";
  for (Case& c : cases) {
    ASSERT_TRUE(WriteFileAtomic(path, c.bytes)) << c.what;
    EXPECT_FALSE(c.load(path)) << c.what << " was accepted";
  }
}

TEST_F(PersistHardeningTest, TsvTruncationKeepsOnlyCompleteLines) {
  PostStream loaded;
  EXPECT_FALSE(LoadPostStreamTsv(dir_ + "/missing.tsv", &loaded));

  const std::string path = dir_ + "/stream.tsv";
  ASSERT_TRUE(SavePostStreamTsv(stream_, path));
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes));

  // Cut one byte into the last data line: the partial line has no tabs,
  // so the tolerant TSV loader must skip it and keep every earlier post.
  const size_t last_line = bytes.rfind('\n', bytes.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  ASSERT_TRUE(WriteFileAtomic(path, std::string_view(bytes)
                                        .substr(0, last_line + 2)));
  ASSERT_TRUE(LoadPostStreamTsv(path, &loaded));
  ASSERT_EQ(loaded.size(), stream_.size() - 1);
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].id, stream_[i].id);
    EXPECT_EQ(loaded[i].text, stream_[i].text);
  }

  // Zero-byte TSV: tolerated by design (no header, no lines) — the loader
  // only hard-fails on a missing file.
  ASSERT_TRUE(WriteFileAtomic(path, ""));
  EXPECT_TRUE(LoadPostStreamTsv(path, &loaded));
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace firehose
