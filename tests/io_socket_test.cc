// Socket-seam tests (src/io/socket): listener setup, accept and read
// deadlines, echo through WriteAllFd/ReadSomeDeadline, and the
// whole-read deadline of ReadUntilTerminator. Everything runs over a
// loopback pair created in-process, so the tests are hermetic.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "src/firehose.h"

namespace firehose {
namespace {

struct LoopbackPair {
  OwnedFd listener;
  OwnedFd server;  ///< accepted side
  OwnedFd client;  ///< connected side
  int port = 0;
};

LoopbackPair MakePair() {
  LoopbackPair pair;
  pair.listener = ListenLoopback(0, /*backlog=*/4, &pair.port);
  EXPECT_TRUE(pair.listener.valid());
  pair.client = ConnectLoopback(pair.port, /*io_timeout_ms=*/0);
  EXPECT_TRUE(pair.client.valid());
  pair.server = AcceptWithTimeout(pair.listener.get(), /*timeout_ms=*/2000);
  EXPECT_TRUE(pair.server.valid());
  return pair;
}

TEST(IoSocketTest, ListenEphemeralReportsABoundPort) {
  int port = 0;
  const OwnedFd listener = ListenLoopback(0, 4, &port);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(port, 0);
}

TEST(IoSocketTest, ReuseAddrAllowsImmediateRebind) {
  int port = 0;
  {
    const OwnedFd listener = ListenLoopback(0, 4, &port);
    ASSERT_TRUE(listener.valid());
    // Leave a connection in flight so the port would normally linger.
    const OwnedFd client = ConnectLoopback(port, 0);
    const OwnedFd server = AcceptWithTimeout(listener.get(), 2000);
  }
  int rebound_port = 0;
  const OwnedFd again = ListenLoopback(port, 4, &rebound_port);
  EXPECT_TRUE(again.valid()) << "SO_REUSEADDR rebind failed for " << port;
  EXPECT_EQ(rebound_port, port);
}

TEST(IoSocketTest, AcceptTimesOutWithoutAClient) {
  int port = 0;
  const OwnedFd listener = ListenLoopback(0, 4, &port);
  ASSERT_TRUE(listener.valid());
  const OwnedFd none = AcceptWithTimeout(listener.get(), /*timeout_ms=*/50);
  EXPECT_FALSE(none.valid());
}

TEST(IoSocketTest, EchoRoundTrip) {
  LoopbackPair pair = MakePair();
  const std::string payload = "hello across the loopback\n";
  ASSERT_TRUE(WriteAllFd(pair.client.get(), payload));

  std::string received;
  char chunk[64];
  while (received.size() < payload.size()) {
    const long n = ReadSomeDeadline(pair.server.get(), chunk, sizeof(chunk),
                                    /*timeout_ms=*/2000);
    ASSERT_GT(n, 0);
    received.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_EQ(received, payload);
}

TEST(IoSocketTest, LargeWriteSurvivesShortWrites) {
  // 4 MiB through a loopback socket forces many short writes; a reader
  // drains concurrently so WriteAllFd cannot deadlock on a full buffer.
  LoopbackPair pair = MakePair();
  const std::string blob(4 << 20, 'x');

  std::thread reader([&pair, want = blob.size()] {
    size_t total = 0;
    char chunk[65536];
    while (total < want) {
      const long n = ReadSomeDeadline(pair.server.get(), chunk, sizeof(chunk),
                                      /*timeout_ms=*/5000);
      if (n <= 0) break;
      total += static_cast<size_t>(n);
    }
    EXPECT_EQ(total, want);
  });
  EXPECT_TRUE(WriteAllFd(pair.client.get(), blob));
  reader.join();
}

TEST(IoSocketTest, ReadDeadlineFiresOnASilentPeer) {
  LoopbackPair pair = MakePair();
  char chunk[16];
  const long n =
      ReadSomeDeadline(pair.server.get(), chunk, sizeof(chunk), 50);
  EXPECT_EQ(n, -1) << "expected timeout, got " << n;
}

TEST(IoSocketTest, ReadSeesOrderlyClose) {
  LoopbackPair pair = MakePair();
  pair.client.Reset();
  char chunk[16];
  const long n =
      ReadSomeDeadline(pair.server.get(), chunk, sizeof(chunk), 2000);
  EXPECT_EQ(n, 0);
}

TEST(IoSocketTest, ReadUntilTerminatorStopsAtTerminator) {
  LoopbackPair pair = MakePair();
  ASSERT_TRUE(WriteAllFd(pair.client.get(), "GET / HTTP/1.1\r\n\r\ntrailing"));
  std::string request;
  ASSERT_TRUE(ReadUntilTerminator(pair.server.get(), "\r\n\r\n",
                                  /*limit=*/4096, /*deadline_ms=*/2000,
                                  &request));
  EXPECT_NE(request.find("\r\n\r\n"), std::string::npos);
}

TEST(IoSocketTest, ReadUntilTerminatorDeadlineBoundsADribblingPeer) {
  // The peer sends bytes but never the terminator: the WHOLE-read
  // deadline must fire even though individual reads keep succeeding
  // (the slow-loris case a per-recv timeout cannot catch).
  LoopbackPair pair = MakePair();
  std::thread dribbler([fd = pair.client.get()] {
    for (int i = 0; i < 50; ++i) {
      if (!WriteAllFd(fd, "x")) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::string request;
  const bool saw_terminator = ReadUntilTerminator(
      pair.server.get(), "\r\n\r\n", 4096, /*deadline_ms=*/100, &request);
  EXPECT_FALSE(saw_terminator);
  dribbler.join();
}

TEST(IoSocketTest, ConnectToAClosedPortFails) {
  int port = 0;
  {
    const OwnedFd listener = ListenLoopback(0, 4, &port);
    ASSERT_TRUE(listener.valid());
  }
  const OwnedFd fd = ConnectLoopback(port, 0);
  EXPECT_FALSE(fd.valid());
}

}  // namespace
}  // namespace firehose
