#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/log_histogram.h"

namespace firehose {
namespace obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("posts_in");
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(CounterTest, LookupReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("a");
  registry.GetCounter("b");
  registry.GetCounter("c");
  EXPECT_EQ(first, registry.GetCounter("a"));
}

TEST(GaugeTest, HighWaterTracksMaximum) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("queue_depth");
  gauge->Set(5);
  gauge->Set(17);
  gauge->Set(3);
  EXPECT_EQ(gauge->value(), 3);
  EXPECT_EQ(gauge->high_water(), 17);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(gauge->high_water(), 17);
}

TEST(LogHistogramTest, CountSumMaxExact) {
  LogHistogram histogram;
  histogram.Record(100);
  histogram.Record(300);
  histogram.Record(0);  // clamps to first bucket
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 400.0);
  EXPECT_EQ(histogram.max(), 300u);
}

TEST(LogHistogramTest, MergeFromAddsEverything) {
  LogHistogram a, b;
  for (uint64_t v = 1; v <= 500; ++v) a.Record(v);
  for (uint64_t v = 501; v <= 1000; ++v) b.Record(v);
  LogHistogram merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);

  LogHistogram direct;
  for (uint64_t v = 1; v <= 1000; ++v) direct.Record(v);

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_DOUBLE_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_EQ(merged.buckets(), direct.buckets());
  const HistogramSummary summary = merged.Summarize();
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_NEAR(summary.p50, 500.0, 60.0);
}

TEST(LogHistogramTest, BucketEdgesCoverValue) {
  for (uint64_t value : {1ULL, 7ULL, 1000ULL, 123456789ULL}) {
    const int bucket = LogHistogram::BucketFor(value);
    EXPECT_LE(static_cast<double>(value),
              LogHistogram::BucketUpperValue(bucket) * 1.0001);
  }
}

TEST(MetricsRegistryTest, VisitSortedIsLexicographic) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("mid");
  std::vector<std::string> names;
  registry.VisitSorted([&](const MetricsRegistry::MetricView& m) {
    names.push_back(m.name);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(MetricsRegistryTest, TimingFlagSticksFromFirstRegistration) {
  MetricsRegistry registry;
  registry.GetHistogram("latency_ns", /*timing=*/true);
  registry.GetHistogram("latency_ns");  // later lookup without the flag
  bool timing = false;
  registry.VisitSorted([&](const MetricsRegistry::MetricView& m) {
    timing = m.timing;
  });
  EXPECT_TRUE(timing);
}

TEST(MetricsRegistryTest, MergeFromCombinesAllKinds) {
  MetricsRegistry a, b;
  a.GetCounter("c")->Add(10);
  b.GetCounter("c")->Add(32);
  b.GetCounter("only_b")->Add(7);
  a.GetGauge("g")->Set(100);
  b.GetGauge("g")->Set(50);
  a.GetHistogram("h")->Record(1000);
  b.GetHistogram("h")->Record(2000);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("c")->value(), 42u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 7u);
  // Gauges add: merged per-shard residency sums (upper-bound semantics).
  EXPECT_EQ(a.GetGauge("g")->value(), 150);
  EXPECT_EQ(a.GetGauge("g")->high_water(), 150);
  EXPECT_EQ(a.GetHistogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.GetHistogram("h")->sum(), 3000.0);
}

TEST(MetricsRegistryTest, MergeOrderIndependentForCounters) {
  MetricsRegistry left, right, shard1, shard2;
  shard1.GetCounter("n")->Add(3);
  shard2.GetCounter("n")->Add(4);
  left.MergeFrom(shard1);
  left.MergeFrom(shard2);
  right.MergeFrom(shard2);
  right.MergeFrom(shard1);
  EXPECT_EQ(left.GetCounter("n")->value(), right.GetCounter("n")->value());
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(ManualClockTest, FrozenAndAutoAdvance) {
  ManualClock frozen(1000);
  EXPECT_EQ(frozen.NowNanos(), 1000u);
  EXPECT_EQ(frozen.NowNanos(), 1000u);
  frozen.AdvanceNanos(500);
  EXPECT_EQ(frozen.NowNanos(), 1500u);

  ManualClock ticking(0, 10);
  EXPECT_EQ(ticking.NowNanos(), 0u);
  EXPECT_EQ(ticking.NowNanos(), 10u);
  EXPECT_EQ(ticking.NowNanos(), 20u);
}

TEST(ClockTest, RealClockIsMonotonic) {
  const Clock* clock = RealClock();
  const uint64_t a = clock->NowNanos();
  const uint64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace obs
}  // namespace firehose
