#include "src/author/dynamic_cover.h"

#include <algorithm>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "src/author/similarity.h"
#include "src/core/clique_bin.h"
#include "src/gen/social_graph_gen.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;

TEST(DynamicCoverTest, InitialCoverIsValid) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
  EXPECT_EQ(maintainer.num_cliques(), 2u);  // {0,1,2} + {2,3}
  EXPECT_EQ(maintainer.cliques_created(), 0u);  // initial build is free
}

TEST(DynamicCoverTest, AddEdgeAbsorbedByExistingClique) {
  // Graph: triangle {0,1,2} plus vertex 3 adjacent to 1 and 2 (but not 0).
  AuthorGraph graph = AuthorGraph::FromEdges(
      {0, 1, 2, 3}, {{0, 1}, {0, 2}, {1, 2}, {1, 3}});
  DynamicCoverMaintainer maintainer(std::move(graph));
  // Adding {2,3} can extend the {1,3} or {2,*} cliques... whatever the
  // repair does, the result must stay valid and cover the new edge.
  ASSERT_TRUE(maintainer.AddEdge(2, 3));
  const CliqueCover cover = maintainer.Snapshot();
  EXPECT_TRUE(cover.IsValidFor(maintainer.graph()));
  EXPECT_TRUE(maintainer.graph().IsNeighbor(2, 3));
}

TEST(DynamicCoverTest, AddEdgeBetweenIsolatedVertices) {
  AuthorGraph graph = AuthorGraph::FromEdges({0, 1}, {});
  DynamicCoverMaintainer maintainer(std::move(graph));
  EXPECT_EQ(maintainer.num_cliques(), 2u);  // two singletons
  ASSERT_TRUE(maintainer.AddEdge(0, 1));
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
}

TEST(DynamicCoverTest, AddEdgeRejectsInvalid) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  EXPECT_FALSE(maintainer.AddEdge(0, 0));   // self loop
  EXPECT_FALSE(maintainer.AddEdge(0, 1));   // already present
  EXPECT_FALSE(maintainer.AddEdge(0, 99));  // unknown endpoint
}

TEST(DynamicCoverTest, RemoveEdgeDissolvesAndRepairs) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  // Removing {0,1} breaks the triangle clique; edges {0,2} and {1,2}
  // must get re-covered.
  ASSERT_TRUE(maintainer.RemoveEdge(0, 1));
  const CliqueCover cover = maintainer.Snapshot();
  EXPECT_TRUE(cover.IsValidFor(maintainer.graph()));
  EXPECT_FALSE(maintainer.graph().IsNeighbor(0, 1));
  EXPECT_GT(maintainer.cliques_dissolved(), 0u);
}

TEST(DynamicCoverTest, RemoveEdgeLeavingIsolatedVertexKeepsSingleton) {
  AuthorGraph graph = AuthorGraph::FromEdges({0, 1}, {{0, 1}});
  DynamicCoverMaintainer maintainer(std::move(graph));
  ASSERT_TRUE(maintainer.RemoveEdge(0, 1));
  const CliqueCover cover = maintainer.Snapshot();
  EXPECT_TRUE(cover.IsValidFor(maintainer.graph()));
  EXPECT_FALSE(cover.CliquesOf(0).empty());
  EXPECT_FALSE(cover.CliquesOf(1).empty());
}

TEST(DynamicCoverTest, RemoveMissingEdgeFails) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  EXPECT_FALSE(maintainer.RemoveEdge(0, 3));
  EXPECT_FALSE(maintainer.RemoveEdge(0, 99));
}

TEST(DynamicCoverTest, AddAndRemoveAuthor) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  maintainer.AddAuthor(9);
  EXPECT_TRUE(maintainer.graph().HasVertex(9));
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
  ASSERT_TRUE(maintainer.AddEdge(9, 0));
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
  ASSERT_TRUE(maintainer.RemoveAuthor(9));
  EXPECT_FALSE(maintainer.graph().HasVertex(9));
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
  EXPECT_FALSE(maintainer.RemoveAuthor(9));  // already gone
}

TEST(DynamicCoverTest, RemoveHubAuthor) {
  DynamicCoverMaintainer maintainer(PaperExampleGraph());
  ASSERT_TRUE(maintainer.RemoveAuthor(2));  // the bridge vertex
  const CliqueCover cover = maintainer.Snapshot();
  EXPECT_TRUE(cover.IsValidFor(maintainer.graph()));
  EXPECT_EQ(maintainer.graph().num_vertices(), 3u);
  // 3 lost its only neighbor: must still be covered by a singleton.
  EXPECT_FALSE(cover.CliquesOf(3).empty());
}

class DynamicCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicCoverPropertyTest, RandomChurnPreservesValidity) {
  Rng rng(GetParam());
  const int n = 24;
  AuthorGraph graph = testing_util::RandomAuthorGraph(n, 0.2, rng);
  DynamicCoverMaintainer maintainer(std::move(graph));

  // Mirror of the maintained graph's edge set, for cross-checking.
  std::set<std::pair<AuthorId, AuthorId>> edges;
  for (AuthorId u : maintainer.graph().vertices()) {
    for (AuthorId v : maintainer.graph().Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }

  for (int step = 0; step < 300; ++step) {
    const AuthorId a = static_cast<AuthorId>(rng.UniformInt(n));
    const AuthorId b = static_cast<AuthorId>(rng.UniformInt(n));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (rng.Bernoulli(0.5)) {
      if (maintainer.AddEdge(a, b)) {
        edges.insert({key.first, key.second});
      }
    } else {
      if (maintainer.RemoveEdge(a, b)) {
        edges.erase({key.first, key.second});
      }
    }
    if (step % 25 == 0) {
      ASSERT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()))
          << "invalid cover at step " << step;
    }
  }

  // Final cross-checks: edge set matches, cover valid, and the cover's
  // size is in the same ballpark as a from-scratch greedy cover.
  ASSERT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
  uint64_t live_edges = 0;
  for (AuthorId u : maintainer.graph().vertices()) {
    for (AuthorId v : maintainer.graph().Neighbors(u)) {
      if (u < v) {
        ++live_edges;
        EXPECT_TRUE(edges.count({u, v}) > 0);
      }
    }
  }
  EXPECT_EQ(live_edges, edges.size());

  const CliqueCover scratch = CliqueCover::Greedy(maintainer.graph());
  const CliqueCover incremental = maintainer.Snapshot();
  EXPECT_LE(incremental.TotalCliqueSize(),
            scratch.TotalCliqueSize() * 3 + 16)
      << "incremental cover degraded far beyond the greedy baseline";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicCoverPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DynamicCoverTest, FullIncrementalPipelineMatchesRebuild) {
  // The complete offline-maintenance loop: a follow-graph change produces
  // a similarity delta, the delta toggles author-graph edges at λa, and
  // the cover maintainer repairs. The result must match rebuilding the
  // whole pipeline from scratch.
  SocialGraphOptions options;
  options.num_authors = 80;
  options.num_communities = 4;
  options.avg_followees = 10.0;
  options.seed = 55;
  FollowGraph social = GenerateSocialGraph(options);
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const double lambda_a = 0.8;

  const auto pairs = AllPairsSimilarity(social, authors, 0.01);
  DynamicCoverMaintainer maintainer(
      AuthorGraph::FromSimilarities(authors, pairs, lambda_a));

  Rng rng(56);
  for (int round = 0; round < 20; ++round) {
    const AuthorId follower = static_cast<AuthorId>(rng.UniformInt(80));
    const AuthorId followee = static_cast<AuthorId>(rng.UniformInt(80));
    if (follower == followee) continue;
    social.AddFollow(follower, followee);
    social.Finalize();
    // Incremental path: recompute only the affected pairs and apply the
    // resulting edge toggles to the maintained graph.
    for (const AuthorPairSimilarity& pair :
         SimilarityDeltaForFollowChange(social, follower, followee, authors)) {
      const bool should_be_edge = pair.similarity >= 1.0 - lambda_a;
      const bool is_edge = maintainer.graph().IsNeighbor(pair.a, pair.b);
      if (should_be_edge && !is_edge) {
        maintainer.AddEdge(pair.a, pair.b);
      } else if (!should_be_edge && is_edge) {
        maintainer.RemoveEdge(pair.a, pair.b);
      }
    }
  }

  // Scratch path: full recompute from the final follow graph.
  const auto final_pairs = AllPairsSimilarity(social, authors, 0.01);
  const AuthorGraph scratch =
      AuthorGraph::FromSimilarities(authors, final_pairs, lambda_a);
  EXPECT_EQ(maintainer.graph().num_edges(), scratch.num_edges());
  for (AuthorId a : scratch.vertices()) {
    EXPECT_EQ(maintainer.graph().Neighbors(a), scratch.Neighbors(a)) << a;
  }
  EXPECT_TRUE(maintainer.Snapshot().IsValidFor(maintainer.graph()));
}

TEST(DynamicCoverTest, SnapshotFeedsCliqueBin) {
  // End-to-end: maintain, snapshot, diversify — decisions must match a
  // diversifier built on a scratch cover of the same graph.
  Rng rng(77);
  DynamicCoverMaintainer maintainer(testing_util::RandomAuthorGraph(12, 0.3, rng));
  maintainer.AddEdge(0, 1);
  maintainer.RemoveEdge(2, 3);  // may or may not exist; either is fine
  const CliqueCover snapshot = maintainer.Snapshot();
  ASSERT_TRUE(snapshot.IsValidFor(maintainer.graph()));

  const PostStream stream = testing_util::RandomStream(300, 12, 20, rng);
  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 400;
  const auto expected =
      testing_util::ReferenceDiversify(stream, t, maintainer.graph());
  CliqueBinDiversifier diversifier(t, &snapshot);
  std::vector<PostId> admitted;
  for (const Post& post : stream) {
    if (diversifier.Offer(post)) admitted.push_back(post.id);
  }
  EXPECT_EQ(admitted, expected);
}

}  // namespace
}  // namespace firehose
