// Consistent-hash placement tests (src/net/placement): the ring is
// deterministic, covers every shard, spreads keys evenly enough to be
// useful, and moves only a bounded fraction of keys when the shard
// count grows — the property that distinguishes a consistent-hash ring
// from `hash % n`. ComponentKey must depend on the author *set*, not
// on ordering, so placement agrees across rebuilds and recoveries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "src/firehose.h"

namespace firehose {
namespace net {
namespace {

std::vector<uint64_t> TestKeys(size_t count) {
  std::vector<uint64_t> keys;
  keys.reserve(count);
  // Fmix64 over a counter gives well-spread but reproducible keys.
  for (size_t i = 0; i < count; ++i) keys.push_back(Fmix64(i + 1));
  return keys;
}

TEST(PlacementRingTest, DeterministicAcrossInstances) {
  const PlacementRing a(8);
  const PlacementRing b(8);
  for (const uint64_t key : TestKeys(1000)) {
    EXPECT_EQ(a.ShardFor(key), b.ShardFor(key));
  }
}

TEST(PlacementRingTest, AllShardsInRangeAndAllUsed) {
  const uint32_t num_shards = 6;
  const PlacementRing ring(num_shards);
  std::map<uint32_t, size_t> load;
  for (const uint64_t key : TestKeys(6000)) {
    const uint32_t shard = ring.ShardFor(key);
    ASSERT_LT(shard, num_shards);
    ++load[shard];
  }
  EXPECT_EQ(load.size(), num_shards) << "some shard received zero keys";
}

TEST(PlacementRingTest, LoadIsRoughlyBalanced) {
  const uint32_t num_shards = 4;
  const PlacementRing ring(num_shards);
  std::vector<size_t> load(num_shards, 0);
  const size_t total = 20000;
  for (const uint64_t key : TestKeys(total)) ++load[ring.ShardFor(key)];

  const size_t expected = total / num_shards;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    // 64 vnodes/shard keeps per-shard load within a loose 2x band; the
    // bound is intentionally slack — this guards against degenerate
    // placement (all keys on one shard), not statistical perfection.
    EXPECT_GT(load[shard], expected / 2) << "shard " << shard;
    EXPECT_LT(load[shard], expected * 2) << "shard " << shard;
  }
}

TEST(PlacementRingTest, GrowingTheRingMovesABoundedFraction) {
  const std::vector<uint64_t> keys = TestKeys(20000);
  const PlacementRing before(8);
  const PlacementRing after(9);

  size_t moved = 0;
  for (const uint64_t key : keys) {
    const uint32_t old_shard = before.ShardFor(key);
    const uint32_t new_shard = after.ShardFor(key);
    if (old_shard != new_shard) {
      ++moved;
      // Keys only ever move TO the new shard; a key hopping between two
      // pre-existing shards would mean the ring reshuffled.
      EXPECT_EQ(new_shard, 8u);
    }
  }
  // Ideal movement is 1/9 of the keys; allow up to twice that.
  EXPECT_LT(moved, keys.size() * 2 / 9);
  EXPECT_GT(moved, 0u);
}

TEST(PlacementRingTest, SingleShardTakesEverything) {
  const PlacementRing ring(1);
  for (const uint64_t key : TestKeys(100)) EXPECT_EQ(ring.ShardFor(key), 0u);
}

TEST(PlacementRingTest, ZeroShardsClampsToOne) {
  const PlacementRing ring(0);
  EXPECT_EQ(ring.num_shards(), 1u);
  EXPECT_EQ(ring.ShardFor(0xdeadbeefull), 0u);
}

TEST(ComponentKeyTest, OrderIndependent) {
  const std::vector<AuthorId> sorted = {1, 5, 9, 42, 100};
  std::vector<AuthorId> shuffled = {42, 1, 100, 9, 5};
  EXPECT_EQ(ComponentKey(sorted), ComponentKey(shuffled));
}

TEST(ComponentKeyTest, SensitiveToMembershipAndSize) {
  EXPECT_NE(ComponentKey({1, 2, 3}), ComponentKey({1, 2, 4}));
  EXPECT_NE(ComponentKey({1, 2, 3}), ComponentKey({1, 2}));
  EXPECT_NE(ComponentKey({}), ComponentKey({0}));
  // {0} vs {1}: a naive sum/xor of raw ids would collide 0 with empty.
  EXPECT_NE(ComponentKey({0}), ComponentKey({1}));
}

TEST(ComponentKeyTest, DistinctSingletonsSpreadAcrossShards) {
  // Singleton components (isolated authors) are the common case in
  // sparse graphs; their keys must not cluster onto one shard.
  const PlacementRing ring(4);
  std::vector<size_t> load(4, 0);
  for (AuthorId author = 0; author < 4000; ++author) {
    ++load[ring.ShardFor(ComponentKey({author}))];
  }
  for (uint32_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(load[shard], 250u) << "shard " << shard;
  }
}

}  // namespace
}  // namespace net
}  // namespace firehose
