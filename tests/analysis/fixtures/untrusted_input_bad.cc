// Deliberately broken fixture for the untrusted-input taint pass.
// `ReadWire` is annotated FIREHOSE_TAINT_SOURCE, so `m` carries wire
// bytes after the call. Two violations:
//   - `m.count` fed straight into a resize,
//   - `m.count` passed to `Apply`, whose summary says parameter 1
//     reaches a resize unchecked (the interprocedural hop).

#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace firehose {

struct WireMessage {
  unsigned long count = 0;
  std::string body;
};

long ReadWire(int fd, WireMessage* out, int timeout_ms) FIREHOSE_TAINT_SOURCE;

void Apply(std::vector<int>* sink, unsigned long n) {
  sink->resize(n);  // unchecked size parameter: callers must sanitize
}

void HandleBad(int fd) {
  WireMessage m;
  if (ReadWire(fd, &m, 50) <= 0) return;
  std::vector<int> direct;
  direct.resize(m.count);  // BAD: tainted resize, no bound check
  std::vector<int> via;
  Apply(&via, m.count);  // BAD: tainted arg reaches Apply's resize
}

}  // namespace firehose
