// Clean counterpart to atomic_ordering_bad.cc: every atomic operation
// spells a non-relaxed memory order explicitly, so the pass must stay
// silent.

#include <atomic>
#include <cstdint>

namespace firehose {

class HitCounter {
 public:
  void Record() {
    hits_.fetch_add(1, std::memory_order_acq_rel);
  }

  void Reset() { hits_.store(0, std::memory_order_release); }

  uint64_t Peek() const { return hits_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> hits_{0};
};

}  // namespace firehose
