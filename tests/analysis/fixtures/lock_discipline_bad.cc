// Deliberately broken fixture for the lock-discipline pass.
//
// `total_` is FIREHOSE_GUARDED_BY(mu_) and `AppendLocked` is
// FIREHOSE_REQUIRES(mu_); `Add` touches both without acquiring the
// mutex, so the pass must report the member access and the call.

#include <mutex>

#include "src/util/thread_annotations.h"

namespace firehose {

class EventLog {
 public:
  void Add(int value) {
    total_ += value;      // BAD: guarded member without mu_ held
    AppendLocked(value);  // BAD: REQUIRES(mu_) callee without mu_ held
  }

 private:
  void AppendLocked(int value) FIREHOSE_REQUIRES(mu_) { total_ += value; }

  std::mutex mu_;
  int total_ FIREHOSE_GUARDED_BY(mu_) = 0;
};

}  // namespace firehose
