// Deliberately broken fixture for the ordering-discipline pass, wait
// rule: a one-argument condition_variable::wait outside any loop wakes
// spuriously with nothing re-checking the predicate.

#include <condition_variable>
#include <mutex>

namespace firehose {

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  void Await() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock);  // BAD: no predicate loop around the bare wait
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    cv.notify_all();
  }
};

}  // namespace firehose
