// Clean counterpart to blocking_bad.cc: the file DOES contain a
// blocking call, but it is only reachable from DumpDebug, never from
// the Offer root — the reachability gate must keep the pass silent.

#include <cstdio>

namespace firehose {

namespace {

int Score(int post_id) { return post_id % 7; }

}  // namespace

bool Offer(int post_id) {
  if (post_id < 0) return false;
  return Score(post_id) > 2;
}

void DumpDebug(int post_id) {
  std::fprintf(stderr, "post %d scored %d\n", post_id, Score(post_id));
}

}  // namespace firehose
