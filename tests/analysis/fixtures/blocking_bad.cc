// Deliberately broken fixture for the blocking-in-hot-path pass.
// Presented with an src/core/ path so `Offer` is a decide-path root;
// the fprintf sits one call deep to exercise the transitive walk, and
// the finding's chain must read "Offer -> LogDecision".

#include <cstdio>

namespace firehose {

namespace {

void LogDecision(int post_id) {
  std::fprintf(stderr, "post %d admitted\n", post_id);  // BAD: IO in hot path
}

}  // namespace

bool Offer(int post_id) {
  if (post_id < 0) return false;
  LogDecision(post_id);
  return true;
}

}  // namespace firehose
