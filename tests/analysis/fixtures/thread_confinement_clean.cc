// Clean twin of thread_confinement_bad.cc: every annotated member is
// touched only from its owning role, the queue's ends stay on their
// annotated sides, and the setup function asserts the reserved
// `exclusive` role — a single-threaded phase the pass trusts rather
// than re-deriving, so its owned-member writes are not findings.

#include <vector>

#include "src/runtime/spsc_queue.h"
#include "src/util/thread_annotations.h"

namespace firehose {

class Worker {
 public:
  void Build(int capacity) FIREHOSE_RUNS_ON(exclusive) {
    timeline_.reserve(static_cast<size_t>(capacity));
    timeline_.clear();  // fine: exclusive phase, no worker exists yet
  }

  void Dispatch() FIREHOSE_RUNS_ON(dispatcher) { Enqueue(7); }

  void Loop() FIREHOSE_RUNS_ON(shard_worker) { Drain(); }

 private:
  void Enqueue(int v) { queue_.Push(v); }

  void Drain() {
    int v = 0;
    if (queue_.TryPop(&v)) timeline_.push_back(v);
  }

  std::vector<int> timeline_ FIREHOSE_THREAD_OWNED(shard_worker);
  SpscQueue<int> queue_ FIREHOSE_PRODUCER_ONLY(dispatcher)
      FIREHOSE_CONSUMER_ONLY(shard_worker);
};

}  // namespace firehose
