// Clean twin of condvar_wait_bad.cc: both sanctioned wait shapes — the
// explicit predicate loop and the two-argument predicate overload
// (which re-checks internally).

#include <condition_variable>
#include <mutex>

namespace firehose {

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  void AwaitLoop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!ready) {
      cv.wait(lock);  // fine: inside the predicate loop
    }
  }

  void AwaitPredicate() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return ready; });  // fine: two-argument form
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    cv.notify_all();
  }
};

}  // namespace firehose
