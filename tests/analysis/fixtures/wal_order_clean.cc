// Clean twin of wal_order_bad.cc: append-before-decide, the order
// recovery depends on — a crash after the append replays the post; a
// crash before it never decided.

#include <string>

namespace firehose {

struct Post;
class Engine;
class WalWriter;

std::string EncodePostRecord(const Post& post);

class Session {
 public:
  bool Process(const Post& post) {
    if (!wal_->Append(EncodePostRecord(post))) return false;
    return engine_->Offer(post);
  }

 private:
  Engine* engine_ = nullptr;
  WalWriter* wal_ = nullptr;
};

}  // namespace firehose
