// Clean counterpart to view_invalidation_bad.cc: the spans are
// re-acquired after the mutating call, so every read sees live storage
// and the pass must stay silent.

#include "src/stream/post_bin.h"

namespace firehose {

int SumFreshSegments(PostBin& bin, const Post& post) {
  PostBin::LaneSpan segments[2];
  size_t lanes = bin.Segments(segments);
  int before = 0;
  for (size_t i = 0; i < lanes; ++i) {
    before += static_cast<int>(segments[i].size);
  }
  bin.Push(post);
  lanes = bin.Segments(segments);  // re-acquire: views are valid again
  int after = 0;
  for (size_t i = 0; i < lanes; ++i) {
    after += static_cast<int>(segments[i].size);
  }
  return after - before;
}

}  // namespace firehose
