// Clean counterpart to lock_discipline_bad.cc: every guarded access
// happens under a lock_guard (or inside a REQUIRES'd method, where the
// caller supplies the capability), so the pass must stay silent.

#include <mutex>

#include "src/util/thread_annotations.h"

namespace firehose {

class EventLog {
 public:
  void Add(int value) {
    const std::lock_guard<std::mutex> lock(mu_);
    total_ += value;
    AppendLocked(value);
  }

  int Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    const int out = total_;
    total_ = 0;
    lock.unlock();
    return out;
  }

 private:
  void AppendLocked(int value) FIREHOSE_REQUIRES(mu_) { total_ += value; }

  std::mutex mu_;
  int total_ FIREHOSE_GUARDED_BY(mu_) = 0;
};

}  // namespace firehose
