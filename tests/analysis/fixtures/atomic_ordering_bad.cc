// Deliberately broken fixture for the atomic-ordering pass. Presented
// with a src/ path that is NOT on the relaxed allowlist, so all three
// patterns must fire: a seq_cst-default member op, a raw
// memory_order_relaxed, and an operator-form read-modify-write.

#include <atomic>
#include <cstdint>

namespace firehose {

class HitCounter {
 public:
  void Record() {
    hits_.fetch_add(1);  // BAD: seq_cst-default member op
    ++hits_;             // BAD: seq_cst-default RMW operator
  }

  uint64_t Peek() const {
    return hits_.load(std::memory_order_relaxed);  // BAD: relaxed off-seam
  }

 private:
  std::atomic<uint64_t> hits_{0};
};

}  // namespace firehose
