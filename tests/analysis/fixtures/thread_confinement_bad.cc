// Deliberately broken fixture for the thread-confinement pass.
// Presented with an src/net/ path. `Dispatch` and `Loop` are the two
// role roots; the violations are:
//   - worker-owned `timeline_` touched from two dispatcher-reachable
//     functions (NearTouch directly, Far via Mid) — the analyzer must
//     collapse both to ONE finding carrying the SHORTER chain,
//   - the consumer-only queue popped from the dispatcher walk,
//   - the producer-only queue pushed from the worker walk (the
//     cross-thread Push).

#include <vector>

#include "src/runtime/spsc_queue.h"
#include "src/util/thread_annotations.h"

namespace firehose {

class Worker {
 public:
  void Dispatch() FIREHOSE_RUNS_ON(dispatcher) {
    Enqueue(7);  // fine: dispatcher is the annotated producer
    NearTouch();
    Mid();
    StealPop();
  }

  void Loop() FIREHOSE_RUNS_ON(shard_worker) { Drain(); }

 private:
  void Enqueue(int v) { queue_.Push(v); }

  void Drain() {
    int v = 0;
    if (queue_.TryPop(&v)) timeline_.push_back(v);
    queue_.Push(v);  // BAD: producer-only queue pushed from the worker
  }

  void NearTouch() { timeline_.clear(); }  // BAD via Dispatch -> NearTouch

  void Mid() { Far(); }

  void Far() { timeline_.clear(); }  // BAD, but the longer chain loses

  void StealPop() {
    int v = 0;
    (void)queue_.TryPop(&v);  // BAD: consumer-only queue from dispatcher
  }

  std::vector<int> timeline_ FIREHOSE_THREAD_OWNED(shard_worker);
  SpscQueue<int> queue_ FIREHOSE_PRODUCER_ONLY(dispatcher)
      FIREHOSE_CONSUMER_ONLY(shard_worker);
};

}  // namespace firehose
