// Deliberately broken fixture for the view-invalidation pass.
//
// Models the real coverage-kernel pattern: PostBin::Segments() hands out
// LaneSpan views into the ring's SoA storage, and any mutating call on
// the bin (Push here) may reallocate or rotate that storage, leaving the
// spans dangling. Reading `segments` after the Push must fire.
//
// Presented to the analyzer by analysis_fixture_test with a synthetic
// src/ path; never compiled.

#include "src/stream/post_bin.h"

namespace firehose {

int SumStaleSegments(PostBin& bin, const Post& post) {
  PostBin::LaneSpan segments[2];
  const size_t lanes = bin.Segments(segments);
  bin.Push(post);  // invalidates every outstanding LaneSpan
  int total = 0;
  for (size_t i = 0; i < lanes; ++i) {
    total += static_cast<int>(segments[i].size);  // BAD: stale view read
  }
  return total;
}

}  // namespace firehose
