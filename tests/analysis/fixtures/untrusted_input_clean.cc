// Clean twin of untrusted_input_bad.cc: the same taint source and the
// same sinks, but every tainted value passes a sanctioning bound check
// first — a comparison against a cap marks the whole message checked,
// and the callee guards its own size parameter.

#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace firehose {

constexpr unsigned long kMaxEntries = 1u << 20;

struct WireMessage {
  unsigned long count = 0;
  std::string body;
};

long ReadWire(int fd, WireMessage* out, int timeout_ms) FIREHOSE_TAINT_SOURCE;

void Apply(std::vector<int>* sink, unsigned long n) {
  if (n > kMaxEntries) return;  // the callee sanitizes its own size
  sink->resize(n);
}

void HandleClean(int fd) {
  WireMessage m;
  if (ReadWire(fd, &m, 50) <= 0) return;
  if (m.count > kMaxEntries) return;  // sanctioning bound check
  std::vector<int> direct;
  direct.resize(m.count);
  std::vector<int> via;
  Apply(&via, m.count);
}

}  // namespace firehose
