// Deliberately broken fixture for the ordering-discipline pass, WAL
// rule: the decide path (Offer) runs before the durable append, so a
// crash between the two loses a decision the WAL can never replay.

#include <string>

namespace firehose {

struct Post;
class Engine;
class WalWriter;

std::string EncodePostRecord(const Post& post);

class Session {
 public:
  bool Process(const Post& post) {
    const bool admitted = engine_->Offer(post);  // BAD: decide first
    if (!wal_->Append(EncodePostRecord(post))) return false;
    return admitted;
  }

 private:
  Engine* engine_ = nullptr;
  WalWriter* wal_ = nullptr;
};

}  // namespace firehose
