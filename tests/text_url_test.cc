#include "src/text/url.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(IsUrlTest, RecognizesSchemes) {
  EXPECT_TRUE(IsUrl("http://example.com"));
  EXPECT_TRUE(IsUrl("https://t.co/abc"));
  EXPECT_FALSE(IsUrl("ftp://example.com"));
  EXPECT_FALSE(IsUrl("example.com"));
  EXPECT_FALSE(IsUrl(""));
}

TEST(UrlShortenerTest, ShortenAndExpandRoundTrip) {
  UrlShortener shortener(1);
  const std::string short_url = shortener.Shorten("https://example.com/story");
  EXPECT_EQ(short_url.rfind("https://t.co/", 0), 0u);
  EXPECT_EQ(shortener.Expand(short_url), "https://example.com/story");
}

TEST(UrlShortenerTest, SameLongUrlGetsFreshCodes) {
  // This is the behavior that makes identical retweets hash differently
  // (paper Table 1, distance-3 example).
  UrlShortener shortener(2);
  const std::string a = shortener.Shorten("https://example.com/x");
  const std::string b = shortener.Shorten("https://example.com/x");
  EXPECT_NE(a, b);
  EXPECT_EQ(shortener.Expand(a), shortener.Expand(b));
  EXPECT_EQ(shortener.issued_count(), 2u);
}

TEST(UrlShortenerTest, ExpandUnknownReturnsEmpty) {
  UrlShortener shortener(3);
  EXPECT_EQ(shortener.Expand("https://t.co/neverIssued"), "");
}

TEST(UrlShortenerTest, DeterministicGivenSeed) {
  UrlShortener a(42);
  UrlShortener b(42);
  EXPECT_EQ(a.Shorten("https://x.com/1"), b.Shorten("https://x.com/1"));
}

TEST(UrlShortenerTest, ExpandAllRewritesOnlyIssuedUrls) {
  UrlShortener shortener(5);
  const std::string short_url = shortener.Shorten("https://news.com/article");
  const std::string text = "breaking story " + short_url + " via @cnn";
  EXPECT_EQ(shortener.ExpandAll(text),
            "breaking story https://news.com/article via @cnn");
  EXPECT_EQ(shortener.ExpandAll("no urls here"), "no urls here");
}

TEST(UrlShortenerTest, CodesAreTenCharacters) {
  UrlShortener shortener(7);
  const std::string url = shortener.Shorten("https://a.b/c");
  EXPECT_EQ(url.size(), std::string("https://t.co/").size() + 10);
}

}  // namespace
}  // namespace firehose
