#include "src/core/neighbor_bin.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExamplePosts;
using testing_util::PaperExampleThresholds;

Post MakePost(PostId id, AuthorId author, int64_t time_ms, uint64_t simhash) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.simhash = simhash;
  return post;
}

TEST(NeighborBinTest, PaperFigure6bTrace) {
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  std::vector<bool> admitted;
  for (const Post& post : PaperExamplePosts()) {
    admitted.push_back(diversifier.Offer(post));
  }
  EXPECT_EQ(admitted, (std::vector<bool>{true, true, false, true, false}));
  // §4.2 walk-through: P1 0 comps, P2 1 (P1 in bin a2), P3 2 (P2 then P1
  // in bin a3), P4 0 (bin a4 empty), P5 1 (P4 newest in bin a3).
  EXPECT_EQ(diversifier.stats().comparisons, 4u);
  // P1 -> bins {a1,a2,a3} (3), P2 -> {a2,a1,a3} (3), P4 -> {a4,a3} (2).
  EXPECT_EQ(diversifier.stats().insertions, 8u);
  EXPECT_EQ(diversifier.stats().posts_out, 3u);
}

TEST(NeighborBinTest, ChecksOnlyOwnAuthorsBin) {
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  // Post by author 3; then identical content by author 0 (not neighbors):
  // author 0's bin does not contain author 3's post, so no comparison at
  // all is made and the post is admitted.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 3, 0, 0x1)));
  const uint64_t before = diversifier.stats().comparisons;
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 0, 1, 0x1)));
  EXPECT_EQ(diversifier.stats().comparisons, before);
}

TEST(NeighborBinTest, NeighborPostCovers) {
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  // Author 3 is a neighbor of 2: the earlier post sits in bin(3).
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 3, 1, 0x1)));
}

TEST(NeighborBinTest, OwnPostCovers) {
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  EXPECT_FALSE(diversifier.Offer(MakePost(1, 2, 1, 0x1)));
}

TEST(NeighborBinTest, TimeWindowEvicts) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.lambda_t_ms = 10;
  NeighborBinDiversifier diversifier(t, &graph);
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  EXPECT_TRUE(diversifier.Offer(MakePost(1, 2, 100, 0x1)));
}

TEST(NeighborBinTest, InsertionCountIsDegreePlusOne) {
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  // Author 2 has 3 neighbors: admitting a post costs 4 insertions.
  EXPECT_TRUE(diversifier.Offer(MakePost(0, 2, 0, 0x1)));
  EXPECT_EQ(diversifier.stats().insertions, 4u);
}

TEST(NeighborBinTest, MemoryExceedsUniBinEquivalent) {
  // d+1 copies per post: bytes should exceed a single bin's worth.
  const AuthorGraph graph = PaperExampleGraph();
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  Rng rng(1);
  for (int i = 0; i < 32; ++i) {
    // Random fingerprints are pairwise far, so every post is admitted and
    // copied into the bins of author 2 and its three neighbors.
    diversifier.Offer(MakePost(static_cast<PostId>(i), 2, i, rng.Next()));
  }
  EXPECT_EQ(diversifier.stats().insertions, 32u * 4u);
  EXPECT_GT(diversifier.ApproxBytes(), 32 * sizeof(BinEntry));
  EXPECT_GE(diversifier.stats().peak_bytes, diversifier.ApproxBytes());
}

TEST(NeighborBinTest, MatchesReferenceOnPaperExample) {
  const AuthorGraph graph = PaperExampleGraph();
  const auto expected = testing_util::ReferenceDiversify(
      PaperExamplePosts(), PaperExampleThresholds(), graph);
  NeighborBinDiversifier diversifier(PaperExampleThresholds(), &graph);
  std::vector<PostId> admitted;
  for (const Post& post : PaperExamplePosts()) {
    if (diversifier.Offer(post)) admitted.push_back(post.id);
  }
  EXPECT_EQ(admitted, expected);
}

}  // namespace
}  // namespace firehose
