#include "src/author/similarity_graph.h"

#include <gtest/gtest.h>

namespace firehose {
namespace {

AuthorGraph MakePaperFigure5Graph() {
  // Figure 5a: a1-a2, a1-a3, a2-a3 triangle plus a3-a4 (ids shifted to 0).
  return AuthorGraph::FromEdges({0, 1, 2, 3},
                                {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
}

TEST(AuthorGraphTest, EmptyGraph) {
  AuthorGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasVertex(0));
  EXPECT_TRUE(g.Neighbors(0).empty());
  EXPECT_TRUE(g.ConnectedComponents().empty());
}

TEST(AuthorGraphTest, FromEdgesBasics) {
  const AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Neighbors(0), (std::vector<AuthorId>{1, 2}));
  EXPECT_EQ(g.Neighbors(2), (std::vector<AuthorId>{0, 1, 3}));
}

TEST(AuthorGraphTest, IsNeighborSymmetric) {
  const AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_TRUE(g.IsNeighbor(0, 1));
  EXPECT_TRUE(g.IsNeighbor(1, 0));
  EXPECT_FALSE(g.IsNeighbor(0, 3));
  EXPECT_FALSE(g.IsNeighbor(3, 0));
}

TEST(AuthorGraphTest, SelfIsNotANeighbor) {
  const AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_FALSE(g.IsNeighbor(0, 0));
}

TEST(AuthorGraphTest, SelfLoopsAndForeignEdgesIgnored) {
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1}, {{0, 0}, {0, 1}, {0, 9}, {9, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AuthorGraphTest, DuplicateEdgesCollapse) {
  const AuthorGraph g =
      AuthorGraph::FromEdges({0, 1}, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
}

TEST(AuthorGraphTest, AvgDegree) {
  const AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_DOUBLE_EQ(g.AvgDegree(), 2.0);  // 2*4 edges / 4 vertices
}

TEST(AuthorGraphTest, FromSimilaritiesAppliesLambdaA) {
  std::vector<AuthorPairSimilarity> pairs = {
      {0, 1, 0.5},   // distance 0.5
      {1, 2, 0.25},  // distance 0.75
  };
  // λa = 0.7 keeps only distance <= 0.7, i.e. similarity >= 0.3.
  const AuthorGraph g = AuthorGraph::FromSimilarities({0, 1, 2}, pairs, 0.7);
  EXPECT_TRUE(g.IsNeighbor(0, 1));
  EXPECT_FALSE(g.IsNeighbor(1, 2));
  // λa = 0.8 admits both edges.
  const AuthorGraph g2 = AuthorGraph::FromSimilarities({0, 1, 2}, pairs, 0.8);
  EXPECT_TRUE(g2.IsNeighbor(1, 2));
}

TEST(AuthorGraphTest, InducedSubgraphKeepsOnlyInternalEdges) {
  const AuthorGraph g = MakePaperFigure5Graph();
  const AuthorGraph sub = g.InducedSubgraph({0, 1, 3});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_TRUE(sub.IsNeighbor(0, 1));
  EXPECT_FALSE(sub.IsNeighbor(0, 2));  // 2 not in subgraph
  EXPECT_TRUE(sub.Neighbors(3).empty());  // 3's only neighbor (2) excluded
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(AuthorGraphTest, InducedSubgraphWithUnknownVertices) {
  const AuthorGraph g = MakePaperFigure5Graph();
  // Vertex 9 unknown to g: becomes isolated, not dropped.
  const AuthorGraph sub = g.InducedSubgraph({0, 9});
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_TRUE(sub.HasVertex(9));
  EXPECT_TRUE(sub.Neighbors(9).empty());
}

TEST(AuthorGraphTest, InducedSubgraphDeduplicatesInput) {
  const AuthorGraph g = MakePaperFigure5Graph();
  const AuthorGraph sub = g.InducedSubgraph({1, 1, 0, 0});
  EXPECT_EQ(sub.num_vertices(), 2u);
}

TEST(AuthorGraphTest, ConnectedComponents) {
  // Two components: {0,1,2,3} and {5,6}; 8 isolated.
  const AuthorGraph g = AuthorGraph::FromEdges(
      {0, 1, 2, 3, 5, 6, 8}, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {5, 6}});
  const auto components = g.ConnectedComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<AuthorId>{0, 1, 2, 3}));
  EXPECT_EQ(components[1], (std::vector<AuthorId>{5, 6}));
  EXPECT_EQ(components[2], (std::vector<AuthorId>{8}));
}

TEST(AuthorGraphTest, ComponentsPartitionTheVertexSet) {
  const AuthorGraph g = MakePaperFigure5Graph();
  size_t total = 0;
  for (const auto& c : g.ConnectedComponents()) total += c.size();
  EXPECT_EQ(total, g.num_vertices());
}

TEST(AuthorGraphMutationTest, AddVertexAndEdge) {
  AuthorGraph g = MakePaperFigure5Graph();
  g.AddVertex(7);
  EXPECT_TRUE(g.HasVertex(7));
  EXPECT_EQ(g.num_vertices(), 5u);
  g.AddVertex(7);  // idempotent
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_TRUE(g.AddEdge(7, 0));
  EXPECT_TRUE(g.IsNeighbor(0, 7));
  EXPECT_TRUE(g.IsNeighbor(7, 0));
  EXPECT_EQ(g.num_edges(), 5u);
}

TEST(AuthorGraphMutationTest, AddEdgeRejections) {
  AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_FALSE(g.AddEdge(0, 0));   // self loop
  EXPECT_FALSE(g.AddEdge(0, 1));   // duplicate
  EXPECT_FALSE(g.AddEdge(0, 42));  // unknown endpoint
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(AuthorGraphMutationTest, RemoveEdge) {
  AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.IsNeighbor(0, 1));
  EXPECT_FALSE(g.IsNeighbor(1, 0));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_FALSE(g.RemoveEdge(0, 42));
}

TEST(AuthorGraphMutationTest, RemoveVertexDropsIncidentEdges) {
  AuthorGraph g = MakePaperFigure5Graph();
  EXPECT_TRUE(g.RemoveVertex(2));  // degree-3 bridge vertex
  EXPECT_FALSE(g.HasVertex(2));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);  // only {0,1} survives
  EXPECT_TRUE(g.Neighbors(3).empty());
  EXPECT_FALSE(g.RemoveVertex(2));
}

TEST(AuthorGraphMutationTest, AdjacencyStaysSorted) {
  AuthorGraph g = AuthorGraph::FromEdges({0, 1, 2, 3, 4}, {});
  EXPECT_TRUE(g.AddEdge(2, 4));
  EXPECT_TRUE(g.AddEdge(2, 0));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_EQ(g.Neighbors(2), (std::vector<AuthorId>{0, 3, 4}));
}

TEST(AuthorGraphMutationTest, MutatedGraphMatchesFromEdges) {
  AuthorGraph incremental = AuthorGraph::FromEdges({0, 1, 2, 3}, {});
  incremental.AddEdge(0, 1);
  incremental.AddEdge(0, 2);
  incremental.AddEdge(1, 2);
  incremental.AddEdge(2, 3);
  incremental.RemoveEdge(0, 2);
  const AuthorGraph direct =
      AuthorGraph::FromEdges({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(incremental.num_edges(), direct.num_edges());
  for (AuthorId a : direct.vertices()) {
    EXPECT_EQ(incremental.Neighbors(a), direct.Neighbors(a));
  }
}

TEST(AuthorGraphTest, ApproxBytesGrowsWithGraph) {
  const AuthorGraph small = AuthorGraph::FromEdges({0, 1}, {{0, 1}});
  const AuthorGraph large = MakePaperFigure5Graph();
  EXPECT_GT(large.ApproxBytes(), small.ApproxBytes());
}

}  // namespace
}  // namespace firehose
