#include "src/core/cosine_unibin.h"

#include <gtest/gtest.h>

#include "src/core/unibin.h"
#include "src/gen/text_gen.h"
#include "src/simhash/simhash.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

using testing_util::PaperExampleGraph;
using testing_util::PaperExampleThresholds;

Post TextPost(PostId id, AuthorId author, int64_t time_ms,
              const std::string& text) {
  Post post;
  post.id = id;
  post.author = author;
  post.time_ms = time_ms;
  post.text = text;
  return post;
}

TEST(CosineUniBinTest, NearDuplicateTextIsCovered) {
  const AuthorGraph graph = PaperExampleGraph();
  CosineUniBinDiversifier diversifier(PaperExampleThresholds(), 0.7, &graph);
  EXPECT_TRUE(diversifier.Offer(TextPost(
      0, 0, 0, "markets rally sharply after the fed decision today")));
  // Author 1 is similar to author 0; nearly identical text.
  EXPECT_FALSE(diversifier.Offer(TextPost(
      1, 1, 1, "markets rally sharply after the fed decision")));
}

TEST(CosineUniBinTest, DistinctTextIsAdmitted) {
  const AuthorGraph graph = PaperExampleGraph();
  CosineUniBinDiversifier diversifier(PaperExampleThresholds(), 0.7, &graph);
  EXPECT_TRUE(diversifier.Offer(TextPost(0, 0, 0, "a story about markets")));
  EXPECT_TRUE(diversifier.Offer(
      TextPost(1, 1, 1, "completely different words on local sports")));
}

TEST(CosineUniBinTest, AuthorDimensionStillApplies) {
  const AuthorGraph graph = PaperExampleGraph();
  CosineUniBinDiversifier diversifier(PaperExampleThresholds(), 0.7, &graph);
  const std::string text = "identical wire copy about the election result";
  EXPECT_TRUE(diversifier.Offer(TextPost(0, 0, 0, text)));
  // Author 3 is not similar to author 0: admitted despite identical text.
  EXPECT_TRUE(diversifier.Offer(TextPost(1, 3, 1, text)));
  // Author 2 is similar to author 0: covered.
  EXPECT_FALSE(diversifier.Offer(TextPost(2, 2, 2, text)));
}

TEST(CosineUniBinTest, TimeWindowEvicts) {
  const AuthorGraph graph = PaperExampleGraph();
  DiversityThresholds t = PaperExampleThresholds();
  t.lambda_t_ms = 10;
  CosineUniBinDiversifier diversifier(t, 0.7, &graph);
  const std::string text = "same story text repeated later in the day";
  EXPECT_TRUE(diversifier.Offer(TextPost(0, 0, 0, text)));
  EXPECT_TRUE(diversifier.Offer(TextPost(1, 0, 100, text)));
}

TEST(CosineUniBinTest, NormalizationAppliedBeforeVectorizing) {
  const AuthorGraph graph = PaperExampleGraph();
  CosineUniBinDiversifier diversifier(PaperExampleThresholds(), 0.99, &graph);
  EXPECT_TRUE(diversifier.Offer(TextPost(0, 0, 0, "Hello World News Today")));
  EXPECT_FALSE(
      diversifier.Offer(TextPost(1, 0, 1, "hello world news today!!!")));
}

TEST(CosineUniBinTest, AgreesWithSimHashUniBinOnClearCases) {
  // On text pairs that are either identical or entirely disjoint, the
  // exact-cosine baseline and the SimHash algorithms must agree.
  const AuthorGraph graph = PaperExampleGraph();
  const SimHasher hasher;
  const DiversityThresholds t = PaperExampleThresholds();

  CosineUniBinDiversifier cosine(t, 0.7, &graph);
  DiversityThresholds simhash_t = t;
  simhash_t.lambda_c = 18;
  UniBinDiversifier simhash(simhash_t, &graph);

  const char* texts[] = {
      "first unique story about spaceflight and rockets",
      "first unique story about spaceflight and rockets",  // dup of 0
      "unrelated chatter concerning cooking pasta dinners",
      "unrelated chatter concerning cooking pasta dinners",  // dup of 2
  };
  for (int i = 0; i < 4; ++i) {
    Post post = TextPost(static_cast<PostId>(i), 0, i, texts[i]);
    post.simhash = hasher.Fingerprint(post.text);
    EXPECT_EQ(cosine.Offer(post), simhash.Offer(post)) << i;
  }
  EXPECT_EQ(cosine.stats().posts_out, 2u);
}

TEST(CosineUniBinTest, MemoryFootprintExceedsSimHashUniBin) {
  // The §3 cost argument: stored TF vectors dwarf 8-byte fingerprints.
  const AuthorGraph graph = PaperExampleGraph();
  const SimHasher hasher;
  CosineUniBinDiversifier cosine(PaperExampleThresholds(), 0.7, &graph);
  UniBinDiversifier simhash(PaperExampleThresholds(), &graph);
  Rng rng(5);
  TextGenerator text_gen(6);
  for (int i = 0; i < 64; ++i) {
    Post post = TextPost(static_cast<PostId>(i), 0, i, text_gen.MakePost());
    post.simhash = hasher.Fingerprint(post.text);
    cosine.Offer(post);
    simhash.Offer(post);
  }
  EXPECT_GT(cosine.ApproxBytes(), simhash.ApproxBytes() * 2);
}

TEST(CosineUniBinTest, NullGraphSameAuthorOnly) {
  CosineUniBinDiversifier diversifier(PaperExampleThresholds(), 0.7, nullptr);
  const std::string text = "some identical content in both posts here";
  EXPECT_TRUE(diversifier.Offer(TextPost(0, 0, 0, text)));
  EXPECT_TRUE(diversifier.Offer(TextPost(1, 1, 1, text)));
  EXPECT_FALSE(diversifier.Offer(TextPost(2, 0, 2, text)));
}

}  // namespace
}  // namespace firehose
