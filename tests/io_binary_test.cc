#include "src/io/binary.h"
#include "src/util/binary.h"

#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace firehose {
namespace {

TEST(BinaryCodecTest, VarintRoundTrip) {
  BinaryWriter writer;
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             (1ULL << 32) - 1,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) writer.PutVarint(v);
  BinaryReader reader(writer.buffer());
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(reader.GetVarint(&v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryCodecTest, VarintUsesMinimalBytes) {
  BinaryWriter writer;
  writer.PutVarint(5);
  EXPECT_EQ(writer.size(), 1u);
  writer.PutVarint(128);
  EXPECT_EQ(writer.size(), 3u);  // +2 bytes
}

TEST(BinaryCodecTest, SignedVarintRoundTrip) {
  BinaryWriter writer;
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) writer.PutSignedVarint(v);
  BinaryReader reader(writer.buffer());
  for (int64_t expected : values) {
    int64_t v = 0;
    ASSERT_TRUE(reader.GetSignedVarint(&v));
    EXPECT_EQ(v, expected);
  }
}

TEST(BinaryCodecTest, ZigzagKeepsSmallNegativesSmall) {
  BinaryWriter writer;
  writer.PutSignedVarint(-1);
  EXPECT_EQ(writer.size(), 1u);
}

TEST(BinaryCodecTest, StringRoundTrip) {
  BinaryWriter writer;
  writer.PutString("");
  writer.PutString("hello world");
  writer.PutString(std::string("\0binary\xFF", 8));
  BinaryReader reader(writer.buffer());
  std::string s;
  ASSERT_TRUE(reader.GetString(&s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(reader.GetString(&s));
  EXPECT_EQ(s, "hello world");
  ASSERT_TRUE(reader.GetString(&s));
  EXPECT_EQ(s, std::string("\0binary\xFF", 8));
}

TEST(BinaryCodecTest, Fixed64RoundTrip) {
  BinaryWriter writer;
  writer.PutFixed64(0xDEADBEEFCAFEF00DULL);
  writer.PutFixed64(0);
  BinaryReader reader(writer.buffer());
  uint64_t v = 0;
  ASSERT_TRUE(reader.GetFixed64(&v));
  EXPECT_EQ(v, 0xDEADBEEFCAFEF00DULL);
  ASSERT_TRUE(reader.GetFixed64(&v));
  EXPECT_EQ(v, 0u);
}

TEST(BinaryCodecTest, TruncatedVarintFails) {
  BinaryReader reader(std::string_view("\x80", 1));  // continuation, no end
  uint64_t v;
  EXPECT_FALSE(reader.GetVarint(&v));
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryCodecTest, TruncatedStringFails) {
  BinaryWriter writer;
  writer.PutVarint(100);  // claims 100 bytes, provides none
  BinaryReader reader(writer.buffer());
  std::string s;
  EXPECT_FALSE(reader.GetString(&s));
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryCodecTest, TruncatedFixed64Fails) {
  BinaryReader reader("abc");
  uint64_t v;
  EXPECT_FALSE(reader.GetFixed64(&v));
}

TEST(BinaryCodecTest, FailureLatches) {
  BinaryWriter writer;
  writer.PutVarint(7);
  BinaryReader reader(writer.buffer());
  uint64_t v;
  ASSERT_TRUE(reader.GetVarint(&v));
  ASSERT_FALSE(reader.GetVarint(&v));  // exhausted
  // Subsequent reads keep failing even though nothing remains to parse.
  EXPECT_FALSE(reader.GetVarint(&v));
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryCodecTest, MixedRandomRoundTrip) {
  Rng rng(5);
  BinaryWriter writer;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.UniformInt(64));
    expected.push_back(v);
    writer.PutVarint(v);
  }
  BinaryReader reader(writer.buffer());
  for (uint64_t e : expected) {
    uint64_t v;
    ASSERT_TRUE(reader.GetVarint(&v));
    EXPECT_EQ(v, e);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(FileIoTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/firehose_binary_test.bin";
  const std::string payload("some\0binary\npayload", 19);
  ASSERT_TRUE(WriteFileAtomic(path, payload));
  std::string read_back;
  ASSERT_TRUE(ReadFileToString(path, &read_back));
  EXPECT_EQ(read_back, payload);
  std::remove(path.c_str());
}

TEST(FileIoTest, EmptyFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/firehose_empty_test.bin";
  ASSERT_TRUE(WriteFileAtomic(path, ""));
  std::string read_back = "junk";
  ASSERT_TRUE(ReadFileToString(path, &read_back));
  EXPECT_TRUE(read_back.empty());
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileFails) {
  std::string data;
  EXPECT_FALSE(ReadFileToString("/nonexistent/path/file.bin", &data));
}

TEST(FileIoTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir/file.bin", "x"));
}

}  // namespace
}  // namespace firehose
