#include "src/text/tf_vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace firehose {
namespace {

TEST(TfVectorTest, IdenticalTextsHaveSimilarityOne) {
  const TfVector a = TfVector::FromText("the quick brown fox");
  const TfVector b = TfVector::FromText("the quick brown fox");
  EXPECT_NEAR(a.CosineSimilarity(b), 1.0, 1e-12);
  EXPECT_NEAR(a.CosineDistance(b), 0.0, 1e-12);
}

TEST(TfVectorTest, DisjointTextsHaveSimilarityZero) {
  const TfVector a = TfVector::FromText("alpha beta gamma");
  const TfVector b = TfVector::FromText("delta epsilon zeta");
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(b), 0.0);
}

TEST(TfVectorTest, SymmetricSimilarity) {
  const TfVector a = TfVector::FromText("one two three four");
  const TfVector b = TfVector::FromText("three four five six");
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(b), b.CosineSimilarity(a));
}

TEST(TfVectorTest, KnownOverlapValue) {
  // a = {x:1, y:1}, b = {y:1, z:1}: cos = 1 / (sqrt(2)*sqrt(2)) = 0.5.
  const TfVector a = TfVector::FromText("x y");
  const TfVector b = TfVector::FromText("y z");
  EXPECT_NEAR(a.CosineSimilarity(b), 0.5, 1e-12);
}

TEST(TfVectorTest, TermFrequenciesMatter) {
  // a = {w:2}, b = {w:1, v:1}: cos = 2 / (2 * sqrt(2)) = 0.7071.
  const TfVector a = TfVector::FromText("w w");
  const TfVector b = TfVector::FromText("w v");
  EXPECT_NEAR(a.CosineSimilarity(b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(TfVectorTest, EmptyVectorBehaviour) {
  const TfVector empty = TfVector::FromText("");
  const TfVector full = TfVector::FromText("hello world");
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.CosineSimilarity(full), 0.0);
  EXPECT_DOUBLE_EQ(full.CosineSimilarity(empty), 0.0);
  EXPECT_DOUBLE_EQ(empty.CosineSimilarity(empty), 0.0);
}

TEST(TfVectorTest, NormOfCountVector) {
  // "a a b" -> counts (2, 1), norm sqrt(5).
  const TfVector v = TfVector::FromText("a a b");
  EXPECT_NEAR(v.Norm(), std::sqrt(5.0), 1e-12);
  EXPECT_EQ(v.size(), 2u);
}

TEST(TfVectorTest, WordOrderIsIrrelevant) {
  const TfVector a = TfVector::FromText("one two three");
  const TfVector b = TfVector::FromText("three one two");
  EXPECT_NEAR(a.CosineSimilarity(b), 1.0, 1e-12);
}

TEST(TfVectorTest, SimilarityBoundedByOne) {
  const TfVector a = TfVector::FromText("a a a b c");
  const TfVector b = TfVector::FromText("a b b c c d");
  const double sim = a.CosineSimilarity(b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

}  // namespace
}  // namespace firehose
