// Failover tests: a diversifier's runtime state can be snapshotted
// mid-stream and restored into a fresh identically-configured instance,
// which must then make exactly the decisions the original would have.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/cosine_unibin.h"
#include "src/core/engine.h"
#include "src/util/binary.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

class StateSnapshotTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(StateSnapshotTest, ResumedRunMatchesUninterrupted) {
  const Algorithm algorithm = GetParam();
  Rng rng(41);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(16, 0.3, rng);
  const CliqueCover cover = CliqueCover::Greedy(graph);
  const PostStream stream = testing_util::RandomStream(800, 16, 25, rng);

  DiversityThresholds t;
  t.lambda_c = 5;
  t.lambda_t_ms = 600;

  // Uninterrupted reference run.
  std::vector<PostId> expected;
  {
    auto diversifier = MakeDiversifier(algorithm, t, &graph, &cover);
    for (const Post& post : stream) {
      if (diversifier->Offer(post)) expected.push_back(post.id);
    }
  }

  // Run half, snapshot, restore into a fresh instance, run the rest.
  std::vector<PostId> resumed;
  BinaryWriter snapshot;
  const size_t half = stream.size() / 2;
  {
    auto first = MakeDiversifier(algorithm, t, &graph, &cover);
    for (size_t i = 0; i < half; ++i) {
      if (first->Offer(stream[i])) resumed.push_back(stream[i].id);
    }
    first->SaveState(&snapshot);
  }
  {
    auto second = MakeDiversifier(algorithm, t, &graph, &cover);
    BinaryReader reader(snapshot.buffer());
    ASSERT_TRUE(second->LoadState(reader));
    EXPECT_TRUE(reader.AtEnd());
    for (size_t i = half; i < stream.size(); ++i) {
      if (second->Offer(stream[i])) resumed.push_back(stream[i].id);
    }
    // Counters carried across the restore.
    EXPECT_EQ(second->stats().posts_in, stream.size());
    EXPECT_EQ(second->stats().posts_out, expected.size());
  }
  EXPECT_EQ(resumed, expected);
}

TEST_P(StateSnapshotTest, EmptyStateRoundTrips) {
  const Algorithm algorithm = GetParam();
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto a = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryWriter snapshot;
  a->SaveState(&snapshot);
  auto b = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryReader reader(snapshot.buffer());
  EXPECT_TRUE(b->LoadState(reader));
  EXPECT_EQ(b->stats().posts_in, 0u);
}

TEST_P(StateSnapshotTest, TruncatedSnapshotRejected) {
  const Algorithm algorithm = GetParam();
  Rng rng(43);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(8, 0.4, rng);
  auto a = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  const PostStream stream = testing_util::RandomStream(100, 8, 10, rng);
  for (const Post& post : stream) a->Offer(post);
  BinaryWriter snapshot;
  a->SaveState(&snapshot);
  const std::string truncated =
      snapshot.buffer().substr(0, snapshot.size() / 2);

  auto b = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryReader reader(truncated);
  EXPECT_FALSE(b->LoadState(reader));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, StateSnapshotTest, ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(AlgorithmName(info.param));
    });

TEST(StateSnapshotTest, BaseClassDefaultsToUnsupported) {
  // A diversifier that overrides nothing must get the safe no-op
  // defaults: SaveState writes nothing, LoadState refuses.
  class NoSnapshotDiversifier final : public Diversifier {
   public:
    bool Offer(const Post&) override { return true; }
    const IngestStats& stats() const override { return stats_; }
    size_t ApproxBytes() const override { return 0; }
    std::string_view name() const override { return "NoSnapshot"; }

   private:
    IngestStats stats_;
  };
  NoSnapshotDiversifier diversifier;
  BinaryWriter out;
  diversifier.SaveState(&out);
  EXPECT_EQ(out.size(), 0u);
  BinaryReader in(out.buffer());
  EXPECT_FALSE(diversifier.LoadState(in));
}

TEST(StateSnapshotTest, CosineUniBinResumedRunMatchesUninterrupted) {
  // CosineUniBin is not part of kAllAlgorithms (it is the §3 baseline,
  // not an engine), so its snapshot support is exercised directly.
  Rng rng(47);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(12, 0.3, rng);
  const PostStream stream = testing_util::RandomStream(400, 12, 20, rng);
  DiversityThresholds t;
  t.lambda_t_ms = 600;

  std::vector<PostId> expected;
  {
    CosineUniBinDiversifier reference(t, 0.7, &graph);
    for (const Post& post : stream) {
      if (reference.Offer(post)) expected.push_back(post.id);
    }
  }

  std::vector<PostId> resumed;
  BinaryWriter snapshot;
  const size_t half = stream.size() / 2;
  {
    CosineUniBinDiversifier first(t, 0.7, &graph);
    for (size_t i = 0; i < half; ++i) {
      if (first.Offer(stream[i])) resumed.push_back(stream[i].id);
    }
    first.SaveState(&snapshot);
  }
  CosineUniBinDiversifier second(t, 0.7, &graph);
  BinaryReader reader(snapshot.buffer());
  ASSERT_TRUE(second.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());
  for (size_t i = half; i < stream.size(); ++i) {
    if (second.Offer(stream[i])) resumed.push_back(stream[i].id);
  }
  EXPECT_EQ(resumed, expected);
  EXPECT_EQ(second.stats().posts_in, stream.size());
}

}  // namespace
}  // namespace firehose
