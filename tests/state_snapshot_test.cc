// Failover tests: a diversifier's runtime state can be snapshotted
// mid-stream and restored into a fresh identically-configured instance,
// which must then make exactly the decisions the original would have.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/cosine_unibin.h"
#include "src/core/engine.h"
#include "src/io/binary.h"
#include "tests/test_util.h"

namespace firehose {
namespace {

class StateSnapshotTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(StateSnapshotTest, ResumedRunMatchesUninterrupted) {
  const Algorithm algorithm = GetParam();
  Rng rng(41);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(16, 0.3, rng);
  const CliqueCover cover = CliqueCover::Greedy(graph);
  const PostStream stream = testing_util::RandomStream(800, 16, 25, rng);

  DiversityThresholds t;
  t.lambda_c = 5;
  t.lambda_t_ms = 600;

  // Uninterrupted reference run.
  std::vector<PostId> expected;
  {
    auto diversifier = MakeDiversifier(algorithm, t, &graph, &cover);
    for (const Post& post : stream) {
      if (diversifier->Offer(post)) expected.push_back(post.id);
    }
  }

  // Run half, snapshot, restore into a fresh instance, run the rest.
  std::vector<PostId> resumed;
  BinaryWriter snapshot;
  const size_t half = stream.size() / 2;
  {
    auto first = MakeDiversifier(algorithm, t, &graph, &cover);
    for (size_t i = 0; i < half; ++i) {
      if (first->Offer(stream[i])) resumed.push_back(stream[i].id);
    }
    first->SaveState(&snapshot);
  }
  {
    auto second = MakeDiversifier(algorithm, t, &graph, &cover);
    BinaryReader reader(snapshot.buffer());
    ASSERT_TRUE(second->LoadState(reader));
    EXPECT_TRUE(reader.AtEnd());
    for (size_t i = half; i < stream.size(); ++i) {
      if (second->Offer(stream[i])) resumed.push_back(stream[i].id);
    }
    // Counters carried across the restore.
    EXPECT_EQ(second->stats().posts_in, stream.size());
    EXPECT_EQ(second->stats().posts_out, expected.size());
  }
  EXPECT_EQ(resumed, expected);
}

TEST_P(StateSnapshotTest, EmptyStateRoundTrips) {
  const Algorithm algorithm = GetParam();
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  auto a = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryWriter snapshot;
  a->SaveState(&snapshot);
  auto b = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryReader reader(snapshot.buffer());
  EXPECT_TRUE(b->LoadState(reader));
  EXPECT_EQ(b->stats().posts_in, 0u);
}

TEST_P(StateSnapshotTest, TruncatedSnapshotRejected) {
  const Algorithm algorithm = GetParam();
  Rng rng(43);
  const AuthorGraph graph = testing_util::RandomAuthorGraph(8, 0.4, rng);
  auto a = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  const PostStream stream = testing_util::RandomStream(100, 8, 10, rng);
  for (const Post& post : stream) a->Offer(post);
  BinaryWriter snapshot;
  a->SaveState(&snapshot);
  const std::string truncated =
      snapshot.buffer().substr(0, snapshot.size() / 2);

  auto b = MakeDiversifier(algorithm, testing_util::PaperExampleThresholds(),
                           &graph);
  BinaryReader reader(truncated);
  EXPECT_FALSE(b->LoadState(reader));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, StateSnapshotTest, ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(AlgorithmName(info.param));
    });

TEST(StateSnapshotTest, BaseClassDefaultsToUnsupported) {
  // CosineUniBin does not (yet) implement snapshots; the default must be
  // a safe no-op.
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  CosineUniBinDiversifier diversifier(testing_util::PaperExampleThresholds(),
                                      0.7, &graph);
  BinaryWriter out;
  diversifier.SaveState(&out);
  EXPECT_EQ(out.size(), 0u);
  BinaryReader in(out.buffer());
  EXPECT_FALSE(diversifier.LoadState(in));
}

}  // namespace
}  // namespace firehose
