// Race-hunting stress tests for the concurrent runtime. Every test here is
// written to maximize the interleavings the scheduler can produce —
// randomized backoff on both sides of each queue, repeated
// construct/run/join/destroy rounds, tiny queue capacities that force
// constant full/empty boundary crossings, and explicit shutdown/drain
// orderings — because those are exactly the schedules where a wrong
// std::memory_order silently corrupts results. Run them under the `tsan`
// preset to turn any protocol violation into a hard failure:
//
//   cmake --preset tsan && cmake --build --preset tsan -j
//   ctest --preset tsan -R RaceStress
//
// They also run (slower, unsanitized) in the default suite, where the
// assertions still verify FIFO order, exactly-once delivery and
// sequential equivalence.

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/multi_user.h"
#include "src/eval/experiment.h"
#include "src/runtime/live_ingest.h"
#include "src/runtime/pipeline.h"
#include "src/runtime/sharded.h"
#include "src/runtime/spsc_queue.h"
#include "tests/test_util.h"
#include "tests/tsan_annotations.h"

namespace firehose {
namespace {

using testing_util::RandomBackoff;
using testing_util::ScaledIterations;

// --- SpscQueue ---------------------------------------------------------------

/// One producer + one consumer hammer the queue with randomized pacing;
/// FIFO order and exactly-once transfer must survive every interleaving.
TEST(RaceStressSpscQueue, FifoUnderRandomizedBackoff) {
  const int kItems = ScaledIterations(120000);
  for (const size_t capacity : {size_t{1}, size_t{4}, size_t{64}}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SpscQueue<int> queue(capacity);
      std::vector<int> received;
      received.reserve(static_cast<size_t>(kItems));

      std::thread producer([&queue, kItems, seed] {
        RandomBackoff backoff(seed * 7919);
        for (int i = 0; i < kItems; ++i) {
          while (!queue.TryPush(i)) backoff.Pause();
          backoff.Pause();
        }
      });
      std::thread consumer([&queue, &received, kItems, seed] {
        RandomBackoff backoff(seed * 104729);
        while (static_cast<int>(received.size()) < kItems) {
          int value;
          if (queue.TryPop(&value)) {
            received.push_back(value);
          } else {
            backoff.Pause();
          }
          const size_t size = queue.ApproxSize();
          ASSERT_LE(size, queue.capacity());
        }
      });
      producer.join();
      consumer.join();

      ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
      for (int i = 0; i < kItems; ++i) {
        ASSERT_EQ(received[static_cast<size_t>(i)], i)
            << "capacity=" << capacity << " seed=" << seed;
      }
    }
  }
}

/// The live-ingest shutdown protocol: producer publishes a done flag after
/// its last push; consumer drains everything it can see after observing
/// the flag. Nothing may be lost, and destroying the queue right after the
/// join must be safe. Many short rounds stress the start/stop edges.
TEST(RaceStressSpscQueue, ShutdownDrainLosesNothing) {
  const int kRounds = ScaledIterations(600);
  const int kItems = 200;
  for (int round = 0; round < kRounds; ++round) {
    SpscQueue<int> queue(8);
    std::atomic<bool> done{false};
    int64_t consumed_sum = 0;
    int consumed = 0;

    std::thread producer([&queue, &done, round] {
      RandomBackoff backoff(static_cast<uint64_t>(round) * 31 + 1);
      for (int i = 0; i < kItems; ++i) {
        while (!queue.TryPush(i)) backoff.Pause();
      }
      done.store(true, std::memory_order_release);
    });

    RandomBackoff backoff(static_cast<uint64_t>(round) * 37 + 2);
    for (;;) {
      int value;
      if (queue.TryPop(&value)) {
        consumed_sum += value;
        ++consumed;
      } else if (done.load(std::memory_order_acquire)) {
        // One more pop attempt: items pushed between the failed pop and
        // the flag read are still in the queue.
        if (!queue.TryPop(&value)) break;
        consumed_sum += value;
        ++consumed;
      } else {
        backoff.Pause();
      }
    }
    producer.join();

    ASSERT_EQ(consumed, kItems) << "round " << round;
    ASSERT_EQ(consumed_sum, int64_t{kItems} * (kItems - 1) / 2);
  }
}

/// Non-trivial payloads: slot reuse copies/destroys std::shared_ptr control
/// blocks across the two threads, so any hole in the release/acquire
/// protocol shows up as a TSan report or a refcount corruption (ASan).
TEST(RaceStressSpscQueue, SharedPtrPayloadSurvivesSlotReuse) {
  const int kItems = ScaledIterations(60000);
  SpscQueue<std::shared_ptr<uint64_t>> queue(4);
  std::atomic<uint64_t> consumed_sum{0};

  std::thread consumer([&queue, &consumed_sum, kItems] {
    RandomBackoff backoff(11);
    int remaining = kItems;
    std::shared_ptr<uint64_t> item;
    while (remaining > 0) {
      if (queue.TryPop(&item)) {
        consumed_sum.fetch_add(*item, std::memory_order_relaxed);
        item.reset();
        --remaining;
      } else {
        backoff.Pause();
      }
    }
  });

  RandomBackoff backoff(13);
  uint64_t expected_sum = 0;
  for (int i = 0; i < kItems; ++i) {
    auto value = std::make_shared<uint64_t>(static_cast<uint64_t>(i) * 3 + 1);
    expected_sum += *value;
    while (!queue.TryPush(value)) backoff.Pause();
  }
  consumer.join();
  EXPECT_EQ(consumed_sum.load(), expected_sum);
}

/// Index wraparound: start both indices just below SIZE_MAX so the
/// monotonically increasing positions wrap modulo 2^64 mid-test. The
/// full/empty arithmetic (`head - tail`) must be oblivious to the wrap.
TEST(RaceStressSpscQueue, TwoThreadsAcrossIndexWraparound) {
  const int kItems = ScaledIterations(60000);
  SpscQueue<int> queue(8);
  queue.TESTONLY_SetStartIndex(SIZE_MAX - static_cast<size_t>(kItems) / 2);
  std::vector<int> received;
  received.reserve(static_cast<size_t>(kItems));

  std::thread producer([&queue, kItems] {
    RandomBackoff backoff(17);
    for (int i = 0; i < kItems; ++i) {
      while (!queue.TryPush(i)) backoff.Pause();
    }
  });
  RandomBackoff backoff(19);
  while (static_cast<int>(received.size()) < kItems) {
    int value;
    if (queue.TryPop(&value)) {
      received.push_back(value);
    } else {
      backoff.Pause();
    }
  }
  producer.join();
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
}

// --- LiveIngest --------------------------------------------------------------

PostStream TimedStream(int num_posts, int64_t spacing_ms, uint64_t seed) {
  Rng rng(seed);
  PostStream stream;
  for (int i = 0; i < num_posts; ++i) {
    Post post;
    post.id = static_cast<PostId>(i);
    post.author = static_cast<AuthorId>(i % 4);
    post.time_ms = static_cast<int64_t>(i) * spacing_ms;
    post.simhash = rng.Next();
    stream.push_back(post);
  }
  return stream;
}

/// The two-thread live replay must make decision-for-decision the same
/// choices as a sequential pass, for every algorithm, even with a
/// one-slot queue that blocks the producer on almost every post.
TEST(RaceStressLiveIngest, TinyQueueMatchesOfflineForAllAlgorithms) {
  const int kPosts = ScaledIterations(24000);
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  const DiversityThresholds t = testing_util::PaperExampleThresholds();
  const PostStream stream = TimedStream(kPosts, 10, 29);

  for (Algorithm algorithm : kAllAlgorithms) {
    auto offline = MakeDiversifier(algorithm, t, &graph);
    for (const Post& post : stream) offline->Offer(post);

    for (const size_t queue_capacity : {size_t{1}, size_t{64}}) {
      auto live = MakeDiversifier(algorithm, t, &graph);
      LiveIngestOptions options;
      options.speedup = 1e9;  // all posts due immediately: max queue churn
      options.queue_capacity = queue_capacity;
      const LiveIngestReport report = RunLiveIngest(*live, stream, options);

      EXPECT_EQ(report.posts_in, static_cast<uint64_t>(kPosts))
          << AlgorithmName(algorithm) << " capacity=" << queue_capacity;
      EXPECT_EQ(report.posts_out, offline->stats().posts_out);
      EXPECT_EQ(live->stats().comparisons, offline->stats().comparisons);
      // high_water samples ApproxSize racily after a pop, so it can read
      // one past a momentarily-full queue.
      EXPECT_LE(report.queue_high_water,
                SpscQueue<int>(queue_capacity).capacity() + 1);
    }
  }
}

/// Back-to-back short replays stress thread startup/join/teardown — the
/// window where a leaked reference to a dead stack frame or queue would
/// turn into a use-after-free under ASan.
TEST(RaceStressLiveIngest, RepeatedShortReplays) {
  const int kRounds = ScaledIterations(120);
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  const DiversityThresholds t = testing_util::PaperExampleThresholds();
  for (int round = 0; round < kRounds; ++round) {
    const PostStream stream =
        TimedStream(50, 5, static_cast<uint64_t>(round) + 1);
    auto diversifier = MakeDiversifier(Algorithm::kUniBin, t, &graph);
    LiveIngestOptions options;
    options.speedup = 1e9;
    options.queue_capacity = 2;
    const LiveIngestReport report =
        RunLiveIngest(*diversifier, stream, options);
    ASSERT_EQ(report.posts_in, 50u) << "round " << round;
  }
}

// --- Pipeline ----------------------------------------------------------------

/// PostSource adapter over an SpscQueue: bridges a producer thread into
/// the (single-threaded, pull-based) Pipeline so the pipeline's consumer
/// loop runs concurrently with a live feeder.
class QueueSource final : public PostSource {
 public:
  QueueSource(SpscQueue<Post>* queue, const std::atomic<bool>* done,
              uint64_t backoff_seed)
      : queue_(queue), done_(done), backoff_(backoff_seed) {}

  bool Next(Post* post) override {
    for (;;) {
      if (queue_->TryPop(post)) return true;
      if (done_->load(std::memory_order_acquire)) {
        // Drain the race between the last failed pop and the flag.
        return queue_->TryPop(post);
      }
      backoff_.Pause();
    }
  }

 private:
  SpscQueue<Post>* queue_;
  const std::atomic<bool>* done_;
  RandomBackoff backoff_;
};

/// Feeder thread -> SpscQueue -> Pipeline::Run in this thread. The
/// admitted sub-stream must equal the sequential reference answer.
TEST(RaceStressPipeline, QueueFedPipelineMatchesReference) {
  const int kPosts = ScaledIterations(24000);
  const AuthorGraph graph = testing_util::PaperExampleGraph();
  const DiversityThresholds t = testing_util::PaperExampleThresholds();

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const PostStream stream = testing_util::RandomStream(kPosts, 4, 3, rng);
    const std::vector<PostId> expected =
        testing_util::ReferenceDiversify(stream, t, graph);

    SpscQueue<Post> queue(4);
    std::atomic<bool> done{false};
    std::thread feeder([&queue, &stream, &done, seed] {
      RandomBackoff backoff(seed * 53);
      for (const Post& post : stream) {
        while (!queue.TryPush(post)) backoff.Pause();
        backoff.Pause();
      }
      done.store(true, std::memory_order_release);
    });

    auto diversifier = MakeDiversifier(Algorithm::kNeighborBin, t, &graph);
    PostStream admitted;
    CollectSink sink(&admitted);
    Pipeline pipeline(diversifier.get(), &sink);
    QueueSource source(&queue, &done, seed * 59);
    const PipelineReport report = pipeline.Run(source);
    feeder.join();

    EXPECT_EQ(report.posts_in, static_cast<uint64_t>(kPosts));
    std::vector<PostId> admitted_ids;
    admitted_ids.reserve(admitted.size());
    for (const Post& post : admitted) admitted_ids.push_back(post.id);
    EXPECT_EQ(admitted_ids, expected) << "seed=" << seed;
  }
}

// --- ShardedEngine -----------------------------------------------------------

struct Workbench {
  AuthorGraph graph;
  std::vector<User> users;
  PostStream stream;
};

Workbench MakeWorkbench(uint64_t seed, int num_authors, int num_users,
                        int num_posts) {
  Rng rng(seed);
  Workbench w;
  w.graph = testing_util::RandomAuthorGraph(num_authors, 0.25, rng);
  for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
    std::vector<AuthorId> subs;
    for (AuthorId a = 0; a < static_cast<AuthorId>(num_authors); ++a) {
      if (rng.Bernoulli(0.4)) subs.push_back(a);
    }
    if (subs.empty()) subs.push_back(0);
    w.users.push_back(User{u, subs});
  }
  w.stream = testing_util::RandomStream(num_posts, num_authors, 25, rng);
  return w;
}

/// Many shard counts x seeds: the multi-threaded sharded run must merge to
/// exactly the sequential S_* engine's delivery multiset. Shards share the
/// read-only stream, so TSan verifies no shard writes anything shared.
TEST(RaceStressSharded, ManyShardsMatchSequentialAcrossSeeds) {
  const int kPosts = ScaledIterations(3000);
  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 400;

  for (uint64_t seed = 201; seed <= 203; ++seed) {
    const Workbench w = MakeWorkbench(seed, 16, 8, kPosts);
    auto engine = MakeSUserEngine(Algorithm::kCliqueBin, t, w.graph, w.users);
    std::vector<std::pair<PostId, UserId>> expected;
    RunMultiUser(*engine, w.stream, &expected);
    std::sort(expected.begin(), expected.end());

    for (int num_shards : {2, 3, 8}) {
      std::vector<std::pair<PostId, UserId>> sharded;
      RunShardedSUser(Algorithm::kCliqueBin, t, w.graph, w.users, w.stream,
                      num_shards, &sharded);
      ASSERT_EQ(sharded, expected)
          << "seed=" << seed << " shards=" << num_shards;
    }
  }
}

/// Two sharded runs execute concurrently (each spawning its own worker
/// threads) against the same read-only inputs: nothing may be shared
/// mutable between independent engine instances.
TEST(RaceStressSharded, ConcurrentIndependentRunsDoNotInterfere) {
  const int kPosts = ScaledIterations(3000);
  DiversityThresholds t;
  t.lambda_c = 4;
  t.lambda_t_ms = 400;
  const Workbench w = MakeWorkbench(301, 14, 6, kPosts);

  auto engine = MakeSUserEngine(Algorithm::kUniBin, t, w.graph, w.users);
  std::vector<std::pair<PostId, UserId>> expected;
  RunMultiUser(*engine, w.stream, &expected);
  std::sort(expected.begin(), expected.end());

  std::vector<std::vector<std::pair<PostId, UserId>>> results(4);
  std::vector<std::thread> runners;
  runners.reserve(results.size());
  for (size_t r = 0; r < results.size(); ++r) {
    runners.emplace_back([&w, &t, &results, r] {
      RunShardedSUser(Algorithm::kUniBin, t, w.graph, w.users, w.stream,
                      2 + static_cast<int>(r), &results[r]);
    });
  }
  for (std::thread& runner : runners) runner.join();
  for (size_t r = 0; r < results.size(); ++r) {
    EXPECT_EQ(results[r], expected) << "runner " << r;
  }
}

}  // namespace
}  // namespace firehose
