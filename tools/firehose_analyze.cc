// firehose_analyze: the repo's static-analysis driver.
//
// Token-aware successor to the old regex firehose_lint. Lexes every
// source file (comment/string/raw-string aware), builds the include
// graph, and runs the registered passes: layering enforcement against
// tools/layers.txt, include-cycle detection, IWYU-lite unused includes,
// unchecked-error analysis of [[nodiscard]] APIs, the ported hygiene
// checks (banned-nondeterminism, unordered-iteration, include-guard,
// raw-new-delete, obs-seam, dur-seam), and the semantic passes built on
// the sema layer (view-invalidation, lock-discipline, atomic-ordering,
// blocking-in-hot-path).
//
// Usage:
//   firehose_analyze [options] <file-or-dir>...
//     --root=DIR        repo root; paths are reported relative to it (default .)
//     --layers=FILE     layer DAG (default <root>/tools/layers.txt)
//     --baseline=FILE   suppression baseline (default <root>/tools/analysis_baseline.txt)
//     --sarif=FILE      also write findings as SARIF 2.1.0
//     --check=a,b       run only the named checks
//     --write-baseline  rewrite the baseline from current findings and exit
//     --prune-baseline  drop baseline entries no finding matches and exit
//     --fail-on-stale-baseline  exit 1 when the baseline has prunable entries
//     --list-checks     print registered checks and exit
//     --cache=FILE      content-hash result cache: unchanged files skip their
//                       file-scoped passes; a fully unchanged run replays the
//                       previous findings without analyzing at all
//     --stats           print per-pass timing and cache hit rate to stderr
//
// Directories named `fixtures` are skipped: they hold deliberately
// broken inputs for the analyzer's own tests.
//
// Exit status: 0 when every finding is baselined or suppressed, 1
// otherwise, 2 on usage/configuration errors. Suppress a single line
// with `// firehose-lint: allow(<check>)` on that line or the line
// above.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <chrono>

#include "src/analysis/analyzer.h"
#include "src/analysis/cache.h"
#include "src/analysis/sarif.h"

namespace fs = std::filesystem;
using firehose::analysis::AnalysisOptions;
using firehose::analysis::Finding;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

void CollectFiles(const fs::path& path, std::vector<fs::path>* out) {
  if (fs::is_directory(path)) {
    for (fs::recursive_directory_iterator it(path), end; it != end; ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name == "build" || name == "fixtures" ||
           (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        out->push_back(it->path());
      }
    }
  } else {
    out->push_back(path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;
  std::string baseline_path;
  std::string sarif_path;
  bool write_baseline = false;
  bool prune_baseline = false;
  bool fail_on_stale = false;
  std::string cache_path;
  bool stats = false;
  AnalysisOptions options;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = value("--layers=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value("--sarif=");
    } else if (arg.rfind("--check=", 0) == 0) {
      std::istringstream list(value("--check="));
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) options.checks.insert(name);
      }
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = value("--cache=");
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--prune-baseline") {
      prune_baseline = true;
    } else if (arg == "--fail-on-stale-baseline") {
      fail_on_stale = true;
    } else if (arg == "--list-checks") {
      for (const auto& check : firehose::analysis::AllChecks()) {
        std::cout << check.name << "\t" << check.description << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "firehose_analyze: unknown option " << arg << "\n";
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: firehose_analyze [--root=DIR] [--layers=FILE] "
                 "[--baseline=FILE] [--sarif=FILE] [--check=a,b] "
                 "[--write-baseline] <file-or-dir>...\n";
    return 2;
  }

  const fs::path root_dir(root);
  if (layers_path.empty()) {
    layers_path = (root_dir / "tools" / "layers.txt").string();
    // The default is best-effort: analyzing a tree without a layers file
    // just skips the layering pass.
    if (!fs::exists(layers_path)) layers_path.clear();
  }
  if (baseline_path.empty()) {
    baseline_path = (root_dir / "tools" / "analysis_baseline.txt").string();
  }

  if (!layers_path.empty() &&
      !ReadFile(layers_path, &options.layers_text)) {
    std::cerr << "firehose_analyze: cannot read layers file " << layers_path
              << "\n";
    return 2;
  }

  std::vector<fs::path> paths;
  for (const std::string& input : inputs) {
    fs::path p(input);
    if (p.is_relative() && !fs::exists(p) && fs::exists(root_dir / p)) {
      p = root_dir / p;  // operands may be given relative to --root
    }
    if (!fs::exists(p)) {
      std::cerr << "firehose_analyze: no such file or directory: " << input
                << "\n";
      return 2;
    }
    CollectFiles(p, &paths);
  }

  std::vector<firehose::analysis::SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    firehose::analysis::SourceFile file;
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_dir, ec);
    file.path = (ec || rel.empty() ? path : rel).generic_string();
    if (!ReadFile(path, &file.text)) {
      std::cerr << "firehose_analyze: cannot read " << path << "\n";
      return 2;
    }
    files.push_back(std::move(file));
  }

  // The cache key: rule tables + enabled checks + layer config. Any
  // mismatch makes the whole cache cold (never partially wrong).
  uint64_t config_hash = firehose::analysis::RuleTableHash();
  for (const std::string& check : options.checks) {
    config_hash = firehose::analysis::HashBytes(check, config_hash);
  }
  config_hash = firehose::analysis::HashBytes(options.layers_text, config_hash);

  firehose::analysis::AnalysisCache cache;
  bool cache_loaded = false;
  if (!cache_path.empty()) {
    std::string cache_text;
    if (ReadFile(cache_path, &cache_text) &&
        firehose::analysis::ParseCache(cache_text, &cache) &&
        cache.config_hash == config_hash) {
      cache_loaded = true;
    } else {
      cache = firehose::analysis::AnalysisCache{};
    }
    cache.config_hash = config_hash;
    options.cache = &cache;
  }

  // Full hit: same config, same file set, every byte identical — replay
  // the previous run's findings without lexing anything.
  bool full_hit = cache_loaded && cache.file_count == files.size();
  if (full_hit) {
    for (const auto& file : files) {
      const auto it = cache.files.find(file.path);
      if (it == cache.files.end() ||
          it->second.content_hash != firehose::analysis::HashBytes(file.text)) {
        full_hit = false;
        break;
      }
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  firehose::analysis::AnalysisResult result;
  if (full_hit) {
    result.ok = true;
    result.findings = cache.all_findings;
    result.file_count = files.size();
    result.cache_hits = files.size();
  } else {
    result = firehose::analysis::Analyze(files, options);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  if (!result.ok) {
    std::cerr << "firehose_analyze: " << result.error << "\n";
    return 2;
  }

  if (!cache_path.empty() && !full_hit) {
    std::ofstream out(cache_path, std::ios::binary);
    out << firehose::analysis::FormatCache(cache);
    if (!out) {
      std::cerr << "firehose_analyze: warning: cannot write cache "
                << cache_path << "\n";  // a lost cache is only a slow rerun
    }
  }

  if (stats) {
    std::cerr << "firehose_analyze stats:\n"
              << "  files:        " << result.file_count << "\n"
              << "  cache:        " << result.cache_hits << " hits, "
              << result.cache_misses << " misses";
    if (result.file_count > 0) {
      std::cerr << " ("
                << (100.0 * static_cast<double>(result.cache_hits) /
                    static_cast<double>(result.file_count))
                << "% hit rate" << (full_hit ? ", full replay" : "") << ")";
    }
    std::cerr << "\n  wall:         " << wall_ms << " ms\n";
    for (const auto& [pass, ms] : result.pass_ms) {
      std::cerr << "  pass " << pass << ": " << ms << " ms\n";
    }
  }

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::binary);
    out << firehose::analysis::FormatBaseline(result.findings);
    if (!out) {
      std::cerr << "firehose_analyze: cannot write " << baseline_path << "\n";
      return 2;
    }
    std::cout << "firehose_analyze: wrote " << result.findings.size()
              << " baseline entr" << (result.findings.size() == 1 ? "y" : "ies")
              << " to " << baseline_path << "\n";
    return 0;
  }

  std::set<std::string> baseline;
  std::string baseline_text;
  if (ReadFile(baseline_path, &baseline_text)) {
    baseline = firehose::analysis::ParseBaseline(baseline_text);
  }

  // Stale-entry accounting is only meaningful on a full run: a --check
  // filter would make every other check's entries look unmatched.
  const bool full_run = options.checks.empty();
  std::set<std::string> stale;
  if (full_run) {
    stale = firehose::analysis::StaleBaselineKeys(baseline, result.findings);
  }

  if (prune_baseline) {
    if (!full_run) {
      std::cerr << "firehose_analyze: --prune-baseline needs a full run "
                   "(drop --check=)\n";
      return 2;
    }
    std::set<std::string> kept = baseline;
    for (const std::string& key : stale) kept.erase(key);
    std::ofstream out(baseline_path, std::ios::binary);
    out << firehose::analysis::FormatBaselineKeys(kept);
    if (!out) {
      std::cerr << "firehose_analyze: cannot write " << baseline_path << "\n";
      return 2;
    }
    std::cout << "firehose_analyze: pruned " << stale.size()
              << " stale baseline entr" << (stale.size() == 1 ? "y" : "ies")
              << ", kept " << kept.size() << " in " << baseline_path << "\n";
    return 0;
  }

  std::vector<Finding> findings = result.findings;
  std::vector<Finding> baselined;
  firehose::analysis::ApplyBaseline(baseline, &findings, &baselined);

  for (const Finding& finding : findings) {
    std::cout << firehose::analysis::FormatFinding(finding) << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    out << firehose::analysis::ToSarif(findings);
    if (!out) {
      std::cerr << "firehose_analyze: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  std::cout << "firehose_analyze: " << result.file_count << " files, "
            << findings.size() << " violations";
  if (!baselined.empty()) {
    std::cout << " (" << baselined.size() << " baselined)";
  }
  if (!stale.empty()) {
    std::cout << ", " << stale.size() << " stale baseline entr"
              << (stale.size() == 1 ? "y" : "ies");
  }
  std::cout << "\n";
  if (fail_on_stale && !stale.empty()) {
    for (const std::string& key : stale) {
      std::cerr << "stale baseline entry (no finding matches): " << key
                << "\n";
    }
    std::cerr << "firehose_analyze: run --prune-baseline and commit the "
                 "result\n";
    return 1;
  }
  return findings.empty() ? 0 : 1;
}
