// firehose_lint: determinism and hygiene lint for the firehose sources.
//
// The engine's promise is that a run is reproducible from its seed: the
// same stream, graph and thresholds must produce byte-identical output on
// every run. This lint enforces the coding rules that protect that
// promise, plus a few hygiene rules. Checks:
//
//   banned-nondeterminism   rand()/srand()/time()/gettimeofday()/
//                           std::random_device/system_clock anywhere
//                           except src/util/random (all randomness must
//                           flow through the seeded firehose::Rng).
//   unordered-iteration     range-for over a std::unordered_map/set
//                           whose body feeds an output or serialization
//                           path (Put*/Save/Write/push_back/printf/<<):
//                           hash iteration order is nondeterministic, so
//                           such loops must iterate sorted keys instead.
//   include-guard           every header must open with a classic
//                           #ifndef/#define guard (and not #pragma once,
//                           which is nonstandard) and close with #endif.
//   raw-new-delete          raw `new`/`delete`; ownership must use
//                           containers or smart pointers.
//   obs-seam                direct timing (std::chrono) or file/console
//                           IO inside src/obs/ outside obs/clock.*: the
//                           observability layer must read time only
//                           through the injectable obs::Clock seam and
//                           return strings instead of writing files, so
//                           tests can drive it with a ManualClock and
//                           exports stay byte-stable. (String formatting
//                           via snprintf/sscanf is fine.)
//   dur-seam                file mutation (fopen/fwrite/fsync/fdatasync/
//                           ftruncate/rename, ofstream) outside src/io
//                           and src/dur: every byte the library persists
//                           must flow through those two directories so
//                           the fault-injecting FileOps (src/dur/fault.h)
//                           can intercept it and crash-recovery tests
//                           cover every write path.
//
// A violation on line N can be suppressed with a comment containing
// `firehose-lint: allow(<check>)` on line N or N-1. Usage:
//
//   firehose_lint <file-or-dir>...
//
// Prints one `path:line: [check] message` per violation and exits
// nonzero if any were found. Registered as a ctest over src/.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;
};

/// Replaces comments, string literals and char literals with spaces,
/// preserving every newline so offsets still map to line numbers.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

/// Lines carrying a `firehose-lint: allow(<check>)` comment. A directive
/// suppresses its check on that line and the following one.
std::map<int, std::set<std::string>> CollectSuppressions(
    const std::string& raw) {
  std::map<int, std::set<std::string>> allowed;
  static const std::regex kAllow(
      "firehose-lint:\\s*allow\\(([a-z-]+)\\)");
  std::istringstream in(raw);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    auto begin = std::sregex_iterator(line.begin(), line.end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      allowed[number].insert((*it)[1].str());
      allowed[number + 1].insert((*it)[1].str());
    }
  }
  return allowed;
}

bool IsSuppressed(const std::map<int, std::set<std::string>>& allowed,
                  int line, const std::string& check) {
  auto it = allowed.find(line);
  return it != allowed.end() && it->second.count(check) > 0;
}

// --- banned-nondeterminism ---------------------------------------------------

void CheckBannedNondeterminism(const std::string& path,
                               const std::string& code,
                               const std::map<int, std::set<std::string>>& ok,
                               std::vector<Violation>* out) {
  // src/util/random wraps the one sanctioned entropy-free generator.
  if (path.find("util/random") != std::string::npos) return;
  static const std::regex kBanned(
      "\\b(s?rand|d?rand48|lrand48|time|gettimeofday)\\s*\\(|"
      "std\\s*::\\s*random_device|"
      "std\\s*::\\s*chrono\\s*::\\s*system_clock");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kBanned);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "banned-nondeterminism")) continue;
    std::string token = it->str();
    token.erase(token.find_last_not_of(" \t(") + 1, std::string::npos);
    out->push_back({path, line, "banned-nondeterminism",
                    "'" + token +
                        "' is nondeterministic; thread all randomness and "
                        "wall-clock reads through firehose::Rng / WallTimer "
                        "(src/util) so runs replay from a seed"});
  }
}

// --- unordered-iteration -----------------------------------------------------

/// Extent [begin, end) of the statement following a range-for header whose
/// closing paren is at `after_paren`.
size_t LoopBodyEnd(const std::string& code, size_t after_paren) {
  size_t i = after_paren;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  if (i >= code.size()) return i;
  if (code[i] != '{') {
    while (i < code.size() && code[i] != ';') ++i;
    return i;
  }
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i;
  }
  return code.size();
}

void CheckUnorderedIteration(const std::string& path, const std::string& code,
                             const std::set<std::string>& unordered_names,
                             const std::map<int, std::set<std::string>>& ok,
                             std::vector<Violation>* out) {
  static const std::regex kRangeFor(
      "for\\s*\\(([^;{}()]|\\([^()]*\\))*?:\\s*([A-Za-z_][A-Za-z0-9_]*)\\s*"
      "\\)");
  // `<<` counts only with a stream-shaped left operand so bit shifts like
  // `x << 32` do not trip the check.
  static const std::regex kOutputToken(
      "\\bPut[A-Za-z0-9_]*\\s*\\(|\\.\\s*Save\\s*\\(|\\bWrite[A-Za-z0-9_]*"
      "\\s*\\(|\\bpush_back\\s*\\(|\\bemplace_back\\s*\\(|\\bf?printf\\s*\\(|"
      "\\b(?:cout|cerr|out|os|stream)\\s*<<|[A-Za-z0-9_]*(?:_out|_os|_stream)"
      "\\s*<<");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kRangeFor);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string range = (*it)[2].str();
    if (unordered_names.count(range) == 0) continue;
    const size_t header_end =
        static_cast<size_t>(it->position() + it->length());
    const std::string body =
        code.substr(header_end, LoopBodyEnd(code, header_end) - header_end);
    if (!std::regex_search(body, kOutputToken)) continue;
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "unordered-iteration")) continue;
    out->push_back(
        {path, line, "unordered-iteration",
         "range-for over unordered container '" + range +
             "' feeds an output/serialization path; hash iteration order "
             "is nondeterministic — iterate sorted keys instead (or "
             "annotate `firehose-lint: allow(unordered-iteration)` if the "
             "result is re-sorted before it escapes)"});
  }
}

/// Names of variables/members declared as std::unordered_map/set anywhere
/// in the scanned tree. Collected globally because members are declared in
/// headers but iterated in the matching .cc file.
void CollectUnorderedNames(const std::string& code,
                           std::set<std::string>* names) {
  static const std::regex kDecl(
      "\\bunordered_(?:map|set)\\b[^;()]*?>\\s*([A-Za-z_][A-Za-z0-9_]*)\\s*"
      "[;={]");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    names->insert((*it)[1].str());
  }
}

// --- include-guard -----------------------------------------------------------

void CheckIncludeGuard(const std::string& path, const std::string& code,
                       const std::map<int, std::set<std::string>>& ok,
                       std::vector<Violation>* out) {
  if (!(path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0)) {
    return;
  }
  if (IsSuppressed(ok, 1, "include-guard")) return;
  if (code.find("#pragma once") != std::string::npos) {
    out->push_back({path, 1, "include-guard",
                    "#pragma once is nonstandard; use an #ifndef/#define "
                    "include guard"});
    return;
  }
  static const std::regex kGuard(
      "^\\s*#\\s*ifndef\\s+([A-Za-z_][A-Za-z0-9_]*)\\s*\\n\\s*#\\s*define\\s+"
      "([A-Za-z_][A-Za-z0-9_]*)\\b");
  std::smatch match;
  if (!std::regex_search(code, match, kGuard) ||
      match[1].str() != match[2].str()) {
    out->push_back({path, 1, "include-guard",
                    "header must open with a matching #ifndef/#define "
                    "include guard"});
    return;
  }
  const size_t endif = code.rfind("#endif");
  if (endif == std::string::npos ||
      code.find_first_not_of(" \t\n", code.find('\n', endif)) !=
          std::string::npos) {
    out->push_back({path, 1, "include-guard",
                    "header must close with #endif as its last directive"});
  }
}

// --- raw-new-delete ----------------------------------------------------------

void CheckRawNewDelete(const std::string& path, const std::string& code,
                       const std::map<int, std::set<std::string>>& ok,
                       std::vector<Violation>* out) {
  static const std::regex kNew("\\bnew\\b");
  static const std::regex kDelete("(=\\s*)?\\bdelete\\b");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kNew);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "raw-new-delete")) continue;
    out->push_back({path, line, "raw-new-delete",
                    "raw `new`; use std::make_unique/containers so ownership "
                    "is explicit"});
  }
  begin = std::sregex_iterator(code.begin(), code.end(), kDelete);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    if ((*it)[1].matched) continue;  // `= delete` declarations are fine
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "raw-new-delete")) continue;
    out->push_back({path, line, "raw-new-delete",
                    "raw `delete`; use std::unique_ptr/containers so "
                    "ownership is explicit"});
  }
}

// --- obs-seam ----------------------------------------------------------------

void CheckObsSeam(const std::string& path, const std::string& code,
                  const std::map<int, std::set<std::string>>& ok,
                  std::vector<Violation>* out) {
  const bool in_obs =
      path.find("/obs/") != std::string::npos || path.rfind("obs/", 0) == 0;
  if (!in_obs) return;
  // obs/clock.* is the one sanctioned wrapper around the real clock.
  if (path.find("obs/clock.") != std::string::npos) return;
  // Word boundaries keep snprintf/sprintf/sscanf (string formatting, used
  // by the trace and metrics exporters) out of the IO patterns.
  static const std::regex kBanned(
      "std\\s*::\\s*chrono|"
      "\\b(?:fopen|fread|fwrite|fclose|fscanf|fgets|fputs|getline)\\s*\\(|"
      "\\b[oi]?fstream\\b|"
      "std\\s*::\\s*(?:cout|cerr|clog)\\b|"
      "\\b[fv]?printf\\s*\\(");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kBanned);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "obs-seam")) continue;
    std::string token = it->str();
    token.erase(token.find_last_not_of(" \t(") + 1, std::string::npos);
    out->push_back({path, line, "obs-seam",
                    "'" + token +
                        "' in src/obs: read time only through the "
                        "injectable obs::Clock (obs/clock.*) and return "
                        "strings instead of doing IO; callers own files "
                        "and clocks"});
  }
}

// --- dur-seam ----------------------------------------------------------------

void CheckDurSeam(const std::string& path, const std::string& code,
                  const std::map<int, std::set<std::string>>& ok,
                  std::vector<Violation>* out) {
  // src/io (artifact persistence) and src/dur (WAL/checkpoints) are the
  // two sanctioned file-writing directories.
  const bool exempt =
      path.find("/io/") != std::string::npos || path.rfind("io/", 0) == 0 ||
      path.find("/dur/") != std::string::npos || path.rfind("dur/", 0) == 0;
  if (exempt) return;
  // Deliberately narrow: mutation primitives only. `std::remove` the
  // algorithm and Truncate/Rename methods on FileOps are fine anywhere;
  // what must stay behind the seam is opening and writing real files.
  static const std::regex kBanned(
      "\\b(?:fopen|fwrite|fsync|fdatasync|ftruncate|rename)\\s*\\(|"
      "\\bo?fstream\\b");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kBanned);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const int line = LineOfOffset(code, static_cast<size_t>(it->position()));
    if (IsSuppressed(ok, line, "dur-seam")) continue;
    std::string token = it->str();
    token.erase(token.find_last_not_of(" \t(") + 1, std::string::npos);
    out->push_back({path, line, "dur-seam",
                    "'" + token +
                        "' outside src/io and src/dur: all file writes must "
                        "flow through those directories (dur::FileOps for "
                        "durable state) so fault injection and crash-recovery "
                        "tests cover every persisted byte"});
  }
}

// --- driver ------------------------------------------------------------------

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::vector<std::string> CollectFiles(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root.generic_string());
    } else {
      std::cerr << "firehose_lint: no such file or directory: " << argv[i]
                << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: firehose_lint <file-or-dir>...\n";
    return 2;
  }
  const std::vector<std::string> files = CollectFiles(argc, argv);

  struct FileText {
    std::string path;
    std::string raw;
    std::string code;
  };
  std::vector<FileText> texts;
  texts.reserve(files.size());
  std::set<std::string> unordered_names;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    FileText text{path, buffer.str(), ""};
    text.code = StripCommentsAndStrings(text.raw);
    CollectUnorderedNames(text.code, &unordered_names);
    texts.push_back(std::move(text));
  }

  std::vector<Violation> violations;
  for (const FileText& text : texts) {
    const auto allowed = CollectSuppressions(text.raw);
    CheckBannedNondeterminism(text.path, text.code, allowed, &violations);
    CheckUnorderedIteration(text.path, text.code, unordered_names, allowed,
                            &violations);
    CheckIncludeGuard(text.path, text.code, allowed, &violations);
    CheckRawNewDelete(text.path, text.code, allowed, &violations);
    CheckObsSeam(text.path, text.code, allowed, &violations);
    CheckDurSeam(text.path, text.code, allowed, &violations);
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  for (const Violation& v : violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.check << "] "
              << v.message << "\n";
  }
  std::cout << "firehose_lint: " << files.size() << " files, "
            << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return violations.empty() ? 0 : 1;
}
