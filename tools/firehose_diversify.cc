// firehose_diversify: the online phase. Loads the precomputed author
// graph (and clique cover), streams a recorded post file through the
// chosen algorithm and writes the diversified sub-stream. With --live it
// replays the stream in (scaled) real time on the two-thread runtime and
// reports queueing latency.
//
// Usage:
//   firehose_diversify --graph=author_graph.bin --stream=stream.bin
//       [--out=diversified.tsv]
//       [--cover=/tmp/w/cover.bin] [--algorithm=cliquebin|unibin|neighborbin]
//       [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=100000]

#include <cstdio>
#include <cstring>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

namespace {

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  if (name == "unibin") {
    *algorithm = Algorithm::kUniBin;
  } else if (name == "neighborbin") {
    *algorithm = Algorithm::kNeighborBin;
  } else if (name == "cliquebin") {
    *algorithm = Algorithm::kCliqueBin;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"graph", "stream", "out", "cover", "algorithm", "lambda_c",
       "lambda_t_min", "live", "speedup", "help"});
  if (!unknown.empty() || flags.Has("help") || !flags.Has("graph") ||
      !flags.Has("stream")) {
    std::fprintf(
        stderr,
        "usage: firehose_diversify --graph=PATH --stream=PATH [--out=PATH]\n"
        "    [--cover=PATH] [--algorithm=unibin|neighborbin|cliquebin]\n"
        "    [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=F]\n");
    return flags.Has("help") ? 0 : 2;
  }

  AuthorGraph graph;
  if (!LoadAuthorGraph(flags.GetString("graph", ""), &graph)) {
    std::fprintf(stderr, "error: cannot load author graph\n");
    return 1;
  }
  Algorithm algorithm = Algorithm::kCliqueBin;
  if (!ParseAlgorithm(flags.GetString("algorithm", "cliquebin"), &algorithm)) {
    std::fprintf(stderr, "error: unknown algorithm\n");
    return 2;
  }
  CliqueCover cover;
  bool have_cover = false;
  if (flags.Has("cover")) {
    if (!LoadCliqueCover(flags.GetString("cover", ""), &cover)) {
      std::fprintf(stderr, "error: cannot load clique cover\n");
      return 1;
    }
    if (!cover.IsValidFor(graph)) {
      std::fprintf(stderr, "error: cover does not match graph\n");
      return 1;
    }
    have_cover = true;
  }

  const std::string stream_path = flags.GetString("stream", "");
  PostStream stream;
  bool loaded = false;
  if (stream_path.size() > 4 &&
      stream_path.compare(stream_path.size() - 4, 4, ".tsv") == 0) {
    loaded = LoadPostStreamTsv(stream_path, &stream);
  } else {
    loaded = LoadPostStream(stream_path, &stream);
  }
  if (!loaded) {
    std::fprintf(stderr, "error: cannot load stream\n");
    return 1;
  }

  DiversityThresholds thresholds;
  thresholds.lambda_c = static_cast<int>(flags.GetInt("lambda_c", 18));
  thresholds.lambda_t_ms = flags.GetInt("lambda_t_min", 30) * 60 * 1000;
  auto diversifier = MakeDiversifier(algorithm, thresholds, &graph,
                                     have_cover ? &cover : nullptr);

  PostStream kept;
  if (flags.GetBool("live", false)) {
    LiveIngestOptions live_options;
    live_options.speedup = flags.GetDouble("speedup", 100000.0);
    const LiveIngestReport report =
        RunLiveIngest(*diversifier, stream, live_options);
    std::printf(
        "live replay (%s, speedup %.0fx): %llu in / %llu out in %.1fms "
        "(%.0f posts/s)\n",
        std::string(diversifier->name()).c_str(), live_options.speedup,
        static_cast<unsigned long long>(report.posts_in),
        static_cast<unsigned long long>(report.posts_out), report.wall_ms,
        report.achieved_posts_per_sec);
    std::printf(
        "queueing latency us: p50=%.1f p95=%.1f p99=%.1f max=%.1f; "
        "backlog high-water %zu\n",
        report.queueing_latency.p50_us, report.queueing_latency.p95_us,
        report.queueing_latency.p99_us, report.queueing_latency.max_us,
        report.queue_high_water);
    // Re-run sequentially to materialize the kept stream for --out.
    auto rerun = MakeDiversifier(algorithm, thresholds, &graph,
                                 have_cover ? &cover : nullptr);
    for (const Post& post : stream) {
      if (rerun->Offer(post)) kept.push_back(post);
    }
  } else {
    WallTimer timer;
    for (const Post& post : stream) {
      if (diversifier->Offer(post)) kept.push_back(post);
    }
    const IngestStats& stats = diversifier->stats();
    std::printf(
        "%s: %llu in / %zu out (%.1f%% pruned) in %.1fms; "
        "%llu comparisons, %llu insertions, %.2f MiB bins\n",
        std::string(diversifier->name()).c_str(),
        static_cast<unsigned long long>(stats.posts_in), kept.size(),
        100.0 * (1.0 - static_cast<double>(stats.posts_out) /
                           static_cast<double>(stats.posts_in)),
        timer.ElapsedMillis(),
        static_cast<unsigned long long>(stats.comparisons),
        static_cast<unsigned long long>(stats.insertions),
        static_cast<double>(diversifier->ApproxBytes()) / (1 << 20));
  }

  if (flags.Has("out")) {
    const std::string out = flags.GetString("out", "");
    const bool tsv =
        out.size() > 4 && out.compare(out.size() - 4, 4, ".tsv") == 0;
    const bool ok = tsv ? SavePostStreamTsv(kept, out) : SavePostStream(kept, out);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu diversified posts to %s\n", kept.size(),
                out.c_str());
  }
  return 0;
}
