// firehose_diversify: the online phase. Loads the precomputed author
// graph (and clique cover), streams a recorded post file through the
// chosen algorithm and writes the diversified sub-stream. With --live it
// replays the stream in (scaled) real time on the two-thread runtime and
// reports queueing latency.
//
// Observability: --metrics_out writes a machine-readable snapshot of the
// run's metrics registry — Prometheus text format when the path ends in
// .prom, otherwise the stable firehose.metrics.v1 JSON (timing-dependent
// metrics dropped, so repeated runs of the same inputs are
// byte-identical). --trace_out writes a Chrome trace_event JSON file
// loadable in Perfetto / chrome://tracing.
//
// Durability: --wal_dir enables the crash-safe runtime (DESIGN.md §4d).
// Every post is appended to a write-ahead log before the engine decides,
// the engine state is checkpointed every --checkpoint_every posts, and on
// startup the tool recovers from the newest checkpoint + WAL tail, so a
// SIGKILL at any instant loses no durable work: re-running the identical
// command line resumes and produces the byte-identical --out stream and
// metrics snapshot of an uninterrupted run. FIREHOSE_CRASH_AFTER=N in the
// environment makes the process SIGKILL itself after N posts (the
// crash-recovery harness's deterministic kill switch).
//
// Usage:
//   firehose_diversify --graph=author_graph.bin --stream=stream.bin
//       [--out=diversified.tsv]
//       [--cover=/tmp/w/cover.bin] [--algorithm=cliquebin|unibin|neighborbin]
//       [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=100000]
//       [--metrics_out=metrics.json] [--trace_out=trace.json]
//       [--wal_dir=DIR --checkpoint_every=1000 --wal_sync=none|always|every=N]
//   firehose_diversify --version

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

namespace {

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  if (name == "unibin") {
    *algorithm = Algorithm::kUniBin;
  } else if (name == "neighborbin") {
    *algorithm = Algorithm::kNeighborBin;
  } else if (name == "cliquebin") {
    *algorithm = Algorithm::kCliqueBin;
  } else {
    return false;
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == content.size() && closed;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Sink of the durable pipeline: appends each admitted post as one TSV
/// line to the already-open output file, tracking the byte offset the
/// next checkpoint will claim. Byte-identical to SavePostStreamTsv of
/// the same kept stream.
class TsvFileSink final : public PostSink {
 public:
  TsvFileSink(dur::WritableFile* file, uint64_t* bytes)
      : file_(file), bytes_(bytes) {}

  void Deliver(const Post& post) override {
    ++count_;
    if (file_ == nullptr) return;
    std::string line;
    AppendPostTsvLine(post, &line);
    if (!file_->Append(line)) ok_ = false;
    *bytes_ += line.size();
  }

  uint64_t count() const { return count_; }
  bool ok() const { return ok_; }

 private:
  dur::WritableFile* file_;
  uint64_t* bytes_;
  uint64_t count_ = 0;
  bool ok_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"graph", "stream", "out", "cover", "algorithm", "lambda_c",
       "lambda_t_min", "live", "speedup", "metrics_out", "trace_out",
       "wal_dir", "checkpoint_every", "wal_sync", "debug_port",
       "crash_trace_out", "version", "help"});
  if (flags.Has("version")) {
    std::printf("%s\n", BuildInfoString().c_str());
    return 0;
  }
  if (!unknown.empty() || flags.Has("help") || !flags.Has("graph") ||
      !flags.Has("stream")) {
    std::fprintf(
        stderr,
        "usage: firehose_diversify --graph=PATH --stream=PATH [--out=PATH]\n"
        "    [--cover=PATH] [--algorithm=unibin|neighborbin|cliquebin]\n"
        "    [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=F]\n"
        "    [--metrics_out=PATH(.json|.prom)] [--trace_out=PATH]\n"
        "    [--wal_dir=DIR] [--checkpoint_every=N]\n"
        "    [--wal_sync=none|always|every=N]\n"
        "    [--debug_port=N (0 = ephemeral)] [--crash_trace_out=PATH]\n"
        "    [--version]\n");
    return flags.Has("help") ? 0 : 2;
  }

  AuthorGraph graph;
  if (!LoadAuthorGraph(flags.GetString("graph", ""), &graph)) {
    std::fprintf(stderr, "error: cannot load author graph\n");
    return 1;
  }
  Algorithm algorithm = Algorithm::kCliqueBin;
  if (!ParseAlgorithm(flags.GetString("algorithm", "cliquebin"), &algorithm)) {
    std::fprintf(stderr, "error: unknown algorithm\n");
    return 2;
  }
  CliqueCover cover;
  bool have_cover = false;
  if (flags.Has("cover")) {
    if (!LoadCliqueCover(flags.GetString("cover", ""), &cover)) {
      std::fprintf(stderr, "error: cannot load clique cover\n");
      return 1;
    }
    if (!cover.IsValidFor(graph)) {
      std::fprintf(stderr, "error: cover does not match graph\n");
      return 1;
    }
    have_cover = true;
  }

  const std::string stream_path = flags.GetString("stream", "");
  PostStream stream;
  bool loaded = false;
  if (EndsWith(stream_path, ".tsv")) {
    loaded = LoadPostStreamTsv(stream_path, &stream);
  } else {
    loaded = LoadPostStream(stream_path, &stream);
  }
  if (!loaded) {
    std::fprintf(stderr, "error: cannot load stream\n");
    return 1;
  }

  // Observability: both hooks stay null (near-zero overhead) unless
  // requested. The trace recorder is also installed as the process
  // global so engine-internal instants (evictions, cover rebuilds)
  // land in the same file.
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  const bool want_metrics = flags.Has("metrics_out");
  const bool want_trace = flags.Has("trace_out");
  if (want_trace) obs::SetGlobalTrace(&trace);
  PipelineObs pipeline_obs;
  if (want_metrics) pipeline_obs.metrics = &metrics;
  if (want_trace) pipeline_obs.trace = &trace;

  // Live introspection (DESIGN.md §4h): --debug_port serves /metricsz,
  // /varz, /statusz and /tracez on 127.0.0.1 while the run is in flight;
  // --crash_trace_out arms the fatal-signal flight dump (and receives the
  // flight trace on a watchdog trip). Both install the process-global
  // flight recorder, so engine-adjacent events land in the same rings.
  obs::FlightRecorder flight;
  obs::Watchdog watchdog(/*stall_nanos=*/2ull * 1000 * 1000 * 1000);
  std::unique_ptr<obs::DebugServer> debug_server;
  const bool want_debug = flags.Has("debug_port");
  const std::string crash_trace_path = flags.GetString("crash_trace_out", "");
  if (want_debug || !crash_trace_path.empty()) {
    obs::SetGlobalFlightRecorder(&flight);
    pipeline_obs.flight = &flight;
  }
  if (!crash_trace_path.empty()) {
    obs::InstallCrashDumpHandler(crash_trace_path.c_str());
    watchdog.SetTripCallback([&](int, const char* name, uint64_t progress,
                                 int64_t depth) {
      FIREHOSE_LOG(kError, "watchdog stall detected, dumping flight trace")
          .Kv("task", name)
          .Kv("progress", progress)
          .Kv("depth", depth)
          .Kv("trace", crash_trace_path);
      (void)WriteStringToFile(crash_trace_path,
                              flight.DumpJson(30ull * 1000 * 1000 * 1000));
    });
  } else {
    watchdog.SetTripCallback([](int, const char* name, uint64_t progress,
                                int64_t depth) {
      FIREHOSE_LOG(kError, "watchdog stall detected")
          .Kv("task", name)
          .Kv("progress", progress)
          .Kv("depth", depth);
    });
  }
  if (want_debug) {
    obs::DebugServer::Options server_options;
    server_options.flight = &flight;
    server_options.watchdog = &watchdog;
    debug_server = std::make_unique<obs::DebugServer>(server_options);
    if (!debug_server->Start(static_cast<int>(flags.GetInt("debug_port", 0)))) {
      std::fprintf(stderr, "error: cannot bind debug port\n");
      return 1;
    }
    std::printf("debug server listening on http://127.0.0.1:%d\n",
                debug_server->port());
    std::fflush(stdout);
    pipeline_obs.debug = debug_server->state();
    pipeline_obs.watchdog = &watchdog;
    watchdog.StartPolling(/*poll_interval_nanos=*/500ull * 1000 * 1000);
  }

  DiversityThresholds thresholds;
  thresholds.lambda_c = static_cast<int>(flags.GetInt("lambda_c", 18));
  thresholds.lambda_t_ms = flags.GetInt("lambda_t_min", 30) * 60 * 1000;
  auto diversifier = MakeDiversifier(algorithm, thresholds, &graph,
                                     have_cover ? &cover : nullptr);

  PostStream kept;
  const bool durable = flags.Has("wal_dir");
  if (durable) {
    if (flags.GetBool("live", false)) {
      std::fprintf(stderr,
                   "error: --wal_dir does not combine with --live (the "
                   "durable path is exercised by the sequential pipeline; "
                   "LiveIngestOptions::dur covers the two-thread runtime)\n");
      return 2;
    }
    const std::string out_path = flags.GetString("out", "");
    if (!out_path.empty() && !EndsWith(out_path, ".tsv")) {
      std::fprintf(stderr,
                   "error: durable runs write --out incrementally and only "
                   "support the .tsv format\n");
      return 2;
    }

    dur::DurableOptions dur_options;
    dur_options.dir = flags.GetString("wal_dir", "");
    dur_options.checkpoint_every =
        static_cast<uint64_t>(flags.GetInt("checkpoint_every", 1000));
    dur_options.sync_spec = flags.GetString("wal_sync", "none");
    if (want_metrics) dur_options.metrics = &metrics;
    dur::DurableSession session(dur_options, diversifier.get());

    // Replay-accepted posts become output lines, but the output file can
    // only be positioned once recovery reports the checkpoint's durable
    // offset — so buffer the lines and append them right after truncation.
    std::string replayed_lines;
    dur::RecoveryReport recovery;
    std::string error;
    if (!session.Recover(
            &recovery,
            [&](const Post& post) { AppendPostTsvLine(post, &replayed_lines); },
            &error)) {
      std::fprintf(stderr, "error: recovery failed: %s\n", error.c_str());
      return 1;
    }
    if (recovery.next_seq > stream.size()) {
      std::fprintf(stderr,
                   "error: durable state in %s is ahead of --stream "
                   "(%llu posts logged, %zu in the file); wrong stream?\n",
                   dur_options.dir.c_str(),
                   static_cast<unsigned long long>(recovery.next_seq),
                   stream.size());
      return 1;
    }
    if (recovery.found_checkpoint || recovery.replayed_posts > 0) {
      std::printf(
          "recovered from %s: checkpoint=%s, replayed %llu WAL posts, "
          "resuming at post %llu%s\n",
          dur_options.dir.c_str(), recovery.found_checkpoint ? "yes" : "no",
          static_cast<unsigned long long>(recovery.replayed_posts),
          static_cast<unsigned long long>(recovery.next_seq),
          recovery.corruption_detected ? " (torn tail truncated)" : "");
    }

    // Position the durable output: a recovered run truncates to the last
    // checkpoint's fsynced offset and extends; a fresh run starts over.
    dur::FileOps* ops = dur::RealFileOps();
    std::unique_ptr<dur::WritableFile> out_file;
    uint64_t out_bytes = 0;
    if (!out_path.empty()) {
      if (recovery.found_checkpoint) {
        if (!ops->Truncate(out_path, recovery.output_bytes)) {
          std::fprintf(stderr, "error: cannot truncate %s to %llu bytes\n",
                       out_path.c_str(),
                       static_cast<unsigned long long>(recovery.output_bytes));
          return 1;
        }
        out_file = ops->OpenAppend(out_path);
        out_bytes = recovery.output_bytes;
      } else {
        out_file = ops->Create(out_path);
        if (out_file != nullptr) {
          const std::string header = PostStreamTsvHeader();
          if (!out_file->Append(header)) out_file = nullptr;
          out_bytes = header.size();
        }
      }
      if (out_file == nullptr) {
        std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
        return 1;
      }
      if (!replayed_lines.empty() && !out_file->Append(replayed_lines)) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
      }
      out_bytes += replayed_lines.size();
    }

    uint64_t crash_after = 0;
    if (const char* env = std::getenv("FIREHOSE_CRASH_AFTER")) {
      crash_after = std::strtoull(env, nullptr, 10);
    }
    uint64_t processed_here = 0;

    TsvFileSink sink(out_file.get(), &out_bytes);
    VectorSource source(&stream, recovery.next_seq);
    Pipeline pipeline(diversifier.get(), &sink);
    PipelineDur pipeline_dur;
    pipeline_dur.session = &session;
    pipeline_dur.after_post = [&] {
      // The kill-loop harness dies at exact per-incarnation post counts;
      // SIGKILL so no destructor or flush can soften the crash.
      if (crash_after > 0 && ++processed_here >= crash_after) {
        std::raise(SIGKILL);
      }
    };
    pipeline_dur.checkpoint = [&] {
      // Output must be durable to `out_bytes` before a checkpoint may
      // claim that offset.
      if (out_file != nullptr && !out_file->Sync()) return false;
      return session.Checkpoint(out_bytes);
    };
    // pipeline.* totals are per-process (a recovered run sees fewer posts
    // than an uninterrupted one), so the durable path keeps them out of
    // the registry; engine.* counters live in the checkpointed state and
    // stay exact across crashes.
    PipelineObs durable_obs = pipeline_obs;
    durable_obs.metrics = nullptr;
    const PipelineReport report =
        pipeline.Run(source, durable_obs, pipeline_dur);
    if (report.io_error || !sink.ok()) {
      std::fprintf(stderr, "error: durable run failed (WAL/checkpoint/output "
                           "write error)\n");
      return 1;
    }
    if (out_file != nullptr && !out_file->Sync()) {
      std::fprintf(stderr, "error: cannot sync %s\n", out_path.c_str());
      return 1;
    }
    if (!session.Close(out_bytes)) {
      std::fprintf(stderr, "error: final checkpoint failed\n");
      return 1;
    }
    // Sync() above already confirmed durability and nothing was appended
    // since, so a Close failure cannot lose acknowledged bytes.
    if (out_file != nullptr) (void)out_file->Close();

    const IngestStats& stats = diversifier->stats();
    std::printf(
        "%s (durable): %llu in / %llu out (%.1f%% pruned) in %.1fms; "
        "%llu comparisons, %.2f MiB bins\n",
        std::string(diversifier->name()).c_str(),
        static_cast<unsigned long long>(stats.posts_in),
        static_cast<unsigned long long>(stats.posts_out),
        stats.posts_in > 0
            ? 100.0 * (1.0 - static_cast<double>(stats.posts_out) /
                                 static_cast<double>(stats.posts_in))
            : 0.0,
        report.wall_ms, static_cast<unsigned long long>(stats.comparisons),
        static_cast<double>(diversifier->ApproxBytes()) / (1 << 20));
    if (!out_path.empty()) {
      std::printf("wrote %llu diversified posts to %s (durable)\n",
                  static_cast<unsigned long long>(stats.posts_out),
                  out_path.c_str());
    }
  } else if (flags.GetBool("live", false)) {
    LiveIngestOptions live_options;
    live_options.speedup = flags.GetDouble("speedup", 100000.0);
    live_options.metrics = pipeline_obs.metrics;
    live_options.trace = pipeline_obs.trace;
    live_options.debug = pipeline_obs.debug;
    live_options.flight = pipeline_obs.flight;
    live_options.watchdog = pipeline_obs.watchdog;
    const LiveIngestReport report =
        RunLiveIngest(*diversifier, stream, live_options);
    std::printf(
        "live replay (%s, speedup %.0fx): %llu in / %llu out in %.1fms "
        "(%.0f posts/s)\n",
        std::string(diversifier->name()).c_str(), live_options.speedup,
        static_cast<unsigned long long>(report.posts_in),
        static_cast<unsigned long long>(report.posts_out), report.wall_ms,
        report.achieved_posts_per_sec);
    std::printf(
        "queueing latency us: p50=%.1f p95=%.1f p99=%.1f max=%.1f; "
        "backlog high-water %zu\n",
        report.queueing_latency.p50_us, report.queueing_latency.p95_us,
        report.queueing_latency.p99_us, report.queueing_latency.max_us,
        report.queue_high_water);
    // Re-run sequentially to materialize the kept stream for --out.
    auto rerun = MakeDiversifier(algorithm, thresholds, &graph,
                                 have_cover ? &cover : nullptr);
    for (const Post& post : stream) {
      if (rerun->Offer(post)) kept.push_back(post);
    }
  } else {
    CollectSink sink(&kept);
    VectorSource source(&stream);
    Pipeline pipeline(diversifier.get(), &sink);
    const PipelineReport report = pipeline.Run(source, pipeline_obs);
    const IngestStats& stats = diversifier->stats();
    std::printf(
        "%s: %llu in / %zu out (%.1f%% pruned) in %.1fms; "
        "%llu comparisons, %llu insertions, %.2f MiB bins\n",
        std::string(diversifier->name()).c_str(),
        static_cast<unsigned long long>(stats.posts_in), kept.size(),
        100.0 * (1.0 - static_cast<double>(stats.posts_out) /
                           static_cast<double>(stats.posts_in)),
        report.wall_ms,
        static_cast<unsigned long long>(stats.comparisons),
        static_cast<unsigned long long>(stats.insertions),
        static_cast<double>(diversifier->ApproxBytes()) / (1 << 20));
  }

  if (want_trace) obs::SetGlobalTrace(nullptr);

  // Graceful debug shutdown on drain: one last publish so a scrape after
  // the run sees final totals, then stop accepting before the registry
  // and flight recorder leave scope.
  if (debug_server != nullptr) {
    watchdog.StopPolling();
    debug_server->Stop();
  }
  obs::SetGlobalFlightRecorder(nullptr);

  if (want_metrics) {
    ExportDiversifierMetrics(*diversifier, &metrics);
    const std::string path = flags.GetString("metrics_out", "");
    // Prometheus keeps timing series (it is for scraping/humans); the
    // JSON snapshot drops them so identical inputs export identical
    // bytes.
    const std::string body =
        EndsWith(path, ".prom")
            ? obs::ExportPrometheus(metrics, {/*include_timing=*/true})
            : obs::ExportJson(metrics, {/*include_timing=*/false});
    if (!WriteStringToFile(path, body)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu metrics to %s\n", metrics.size(), path.c_str());
  }
  if (want_trace) {
    const std::string path = flags.GetString("trace_out", "");
    if (!WriteStringToFile(path, trace.ToJson())) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", trace.size(), path.c_str());
  }

  if (flags.Has("out") && !durable) {
    const std::string out = flags.GetString("out", "");
    const bool ok = EndsWith(out, ".tsv") ? SavePostStreamTsv(kept, out)
                                          : SavePostStream(kept, out);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu diversified posts to %s\n", kept.size(),
                out.c_str());
  }
  return 0;
}
