// firehose_diversify: the online phase. Loads the precomputed author
// graph (and clique cover), streams a recorded post file through the
// chosen algorithm and writes the diversified sub-stream. With --live it
// replays the stream in (scaled) real time on the two-thread runtime and
// reports queueing latency.
//
// Observability: --metrics_out writes a machine-readable snapshot of the
// run's metrics registry — Prometheus text format when the path ends in
// .prom, otherwise the stable firehose.metrics.v1 JSON (timing-dependent
// metrics dropped, so repeated runs of the same inputs are
// byte-identical). --trace_out writes a Chrome trace_event JSON file
// loadable in Perfetto / chrome://tracing.
//
// Usage:
//   firehose_diversify --graph=author_graph.bin --stream=stream.bin
//       [--out=diversified.tsv]
//       [--cover=/tmp/w/cover.bin] [--algorithm=cliquebin|unibin|neighborbin]
//       [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=100000]
//       [--metrics_out=metrics.json] [--trace_out=trace.json]

#include <cstdio>
#include <cstring>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

namespace {

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  if (name == "unibin") {
    *algorithm = Algorithm::kUniBin;
  } else if (name == "neighborbin") {
    *algorithm = Algorithm::kNeighborBin;
  } else if (name == "cliquebin") {
    *algorithm = Algorithm::kCliqueBin;
  } else {
    return false;
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == content.size() && closed;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"graph", "stream", "out", "cover", "algorithm", "lambda_c",
       "lambda_t_min", "live", "speedup", "metrics_out", "trace_out", "help"});
  if (!unknown.empty() || flags.Has("help") || !flags.Has("graph") ||
      !flags.Has("stream")) {
    std::fprintf(
        stderr,
        "usage: firehose_diversify --graph=PATH --stream=PATH [--out=PATH]\n"
        "    [--cover=PATH] [--algorithm=unibin|neighborbin|cliquebin]\n"
        "    [--lambda_c=18] [--lambda_t_min=30] [--live] [--speedup=F]\n"
        "    [--metrics_out=PATH(.json|.prom)] [--trace_out=PATH]\n");
    return flags.Has("help") ? 0 : 2;
  }

  AuthorGraph graph;
  if (!LoadAuthorGraph(flags.GetString("graph", ""), &graph)) {
    std::fprintf(stderr, "error: cannot load author graph\n");
    return 1;
  }
  Algorithm algorithm = Algorithm::kCliqueBin;
  if (!ParseAlgorithm(flags.GetString("algorithm", "cliquebin"), &algorithm)) {
    std::fprintf(stderr, "error: unknown algorithm\n");
    return 2;
  }
  CliqueCover cover;
  bool have_cover = false;
  if (flags.Has("cover")) {
    if (!LoadCliqueCover(flags.GetString("cover", ""), &cover)) {
      std::fprintf(stderr, "error: cannot load clique cover\n");
      return 1;
    }
    if (!cover.IsValidFor(graph)) {
      std::fprintf(stderr, "error: cover does not match graph\n");
      return 1;
    }
    have_cover = true;
  }

  const std::string stream_path = flags.GetString("stream", "");
  PostStream stream;
  bool loaded = false;
  if (EndsWith(stream_path, ".tsv")) {
    loaded = LoadPostStreamTsv(stream_path, &stream);
  } else {
    loaded = LoadPostStream(stream_path, &stream);
  }
  if (!loaded) {
    std::fprintf(stderr, "error: cannot load stream\n");
    return 1;
  }

  // Observability: both hooks stay null (near-zero overhead) unless
  // requested. The trace recorder is also installed as the process
  // global so engine-internal instants (evictions, cover rebuilds)
  // land in the same file.
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  const bool want_metrics = flags.Has("metrics_out");
  const bool want_trace = flags.Has("trace_out");
  if (want_trace) obs::SetGlobalTrace(&trace);
  PipelineObs pipeline_obs;
  if (want_metrics) pipeline_obs.metrics = &metrics;
  if (want_trace) pipeline_obs.trace = &trace;

  DiversityThresholds thresholds;
  thresholds.lambda_c = static_cast<int>(flags.GetInt("lambda_c", 18));
  thresholds.lambda_t_ms = flags.GetInt("lambda_t_min", 30) * 60 * 1000;
  auto diversifier = MakeDiversifier(algorithm, thresholds, &graph,
                                     have_cover ? &cover : nullptr);

  PostStream kept;
  if (flags.GetBool("live", false)) {
    LiveIngestOptions live_options;
    live_options.speedup = flags.GetDouble("speedup", 100000.0);
    live_options.metrics = pipeline_obs.metrics;
    live_options.trace = pipeline_obs.trace;
    const LiveIngestReport report =
        RunLiveIngest(*diversifier, stream, live_options);
    std::printf(
        "live replay (%s, speedup %.0fx): %llu in / %llu out in %.1fms "
        "(%.0f posts/s)\n",
        std::string(diversifier->name()).c_str(), live_options.speedup,
        static_cast<unsigned long long>(report.posts_in),
        static_cast<unsigned long long>(report.posts_out), report.wall_ms,
        report.achieved_posts_per_sec);
    std::printf(
        "queueing latency us: p50=%.1f p95=%.1f p99=%.1f max=%.1f; "
        "backlog high-water %zu\n",
        report.queueing_latency.p50_us, report.queueing_latency.p95_us,
        report.queueing_latency.p99_us, report.queueing_latency.max_us,
        report.queue_high_water);
    // Re-run sequentially to materialize the kept stream for --out.
    auto rerun = MakeDiversifier(algorithm, thresholds, &graph,
                                 have_cover ? &cover : nullptr);
    for (const Post& post : stream) {
      if (rerun->Offer(post)) kept.push_back(post);
    }
  } else {
    CollectSink sink(&kept);
    VectorSource source(&stream);
    Pipeline pipeline(diversifier.get(), &sink);
    const PipelineReport report = pipeline.Run(source, pipeline_obs);
    const IngestStats& stats = diversifier->stats();
    std::printf(
        "%s: %llu in / %zu out (%.1f%% pruned) in %.1fms; "
        "%llu comparisons, %llu insertions, %.2f MiB bins\n",
        std::string(diversifier->name()).c_str(),
        static_cast<unsigned long long>(stats.posts_in), kept.size(),
        100.0 * (1.0 - static_cast<double>(stats.posts_out) /
                           static_cast<double>(stats.posts_in)),
        report.wall_ms,
        static_cast<unsigned long long>(stats.comparisons),
        static_cast<unsigned long long>(stats.insertions),
        static_cast<double>(diversifier->ApproxBytes()) / (1 << 20));
  }

  if (want_trace) obs::SetGlobalTrace(nullptr);

  if (want_metrics) {
    ExportDiversifierMetrics(*diversifier, &metrics);
    const std::string path = flags.GetString("metrics_out", "");
    // Prometheus keeps timing series (it is for scraping/humans); the
    // JSON snapshot drops them so identical inputs export identical
    // bytes.
    const std::string body =
        EndsWith(path, ".prom")
            ? obs::ExportPrometheus(metrics, {/*include_timing=*/true})
            : obs::ExportJson(metrics, {/*include_timing=*/false});
    if (!WriteStringToFile(path, body)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu metrics to %s\n", metrics.size(), path.c_str());
  }
  if (want_trace) {
    const std::string path = flags.GetString("trace_out", "");
    if (!WriteStringToFile(path, trace.ToJson())) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", trace.size(), path.c_str());
  }

  if (flags.Has("out")) {
    const std::string out = flags.GetString("out", "");
    const bool ok = EndsWith(out, ".tsv") ? SavePostStreamTsv(kept, out)
                                          : SavePostStream(kept, out);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu diversified posts to %s\n", kept.size(),
                out.c_str());
  }
  return 0;
}
