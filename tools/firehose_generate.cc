// firehose_generate: produce a synthetic workload on disk — the social
// (follower/followee) graph plus a one-day post stream — for use with
// firehose_precompute and firehose_diversify.
//
// Usage:
//   firehose_generate --authors=4000 --out_dir=/tmp/workload
//       [--communities=50] [--avg_followees=40] [--posts_per_author=10]
//       [--dup_prob=0.12] [--seed=2016] [--tsv]
//
// Writes <out_dir>/social.bin and <out_dir>/stream.bin (and stream.tsv
// with --tsv). The stream is generated against the λa=0.7 author graph so
// it contains realistic cross-author near-duplicates.

#include <cstdio>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"authors", "out_dir", "communities", "avg_followees",
       "posts_per_author", "dup_prob", "seed", "tsv", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    std::fprintf(stderr,
                 "usage: firehose_generate --authors=N --out_dir=DIR "
                 "[--communities=N] [--avg_followees=F] "
                 "[--posts_per_author=F] [--dup_prob=F] [--seed=N] [--tsv]\n");
    return unknown.empty() ? 0 : 2;
  }
  const std::string out_dir = flags.GetString("out_dir", ".");

  SocialGraphOptions graph_options;
  graph_options.num_authors =
      static_cast<uint32_t>(flags.GetInt("authors", 4000));
  graph_options.num_communities =
      static_cast<uint32_t>(flags.GetInt("communities", 50));
  graph_options.avg_followees = flags.GetDouble("avg_followees", 40.0);
  graph_options.popularity_exponent = 0.8;
  graph_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2016));

  std::printf("generating social graph: %u authors...\n",
              graph_options.num_authors);
  const FollowGraph social = GenerateSocialGraph(graph_options);
  if (!SaveFollowGraph(social, out_dir + "/social.bin")) {
    std::fprintf(stderr, "error: cannot write %s/social.bin\n",
                 out_dir.c_str());
    return 1;
  }

  std::printf("computing author similarities for stream generation...\n");
  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);
  const auto pairs = AllPairsSimilarity(social, authors, 0.3, 1500);
  const AuthorGraph graph = AuthorGraph::FromSimilarities(authors, pairs, 0.7);

  StreamGenOptions stream_options;
  stream_options.posts_per_author = flags.GetDouble("posts_per_author", 10.0);
  stream_options.cross_author_dup_prob = flags.GetDouble("dup_prob", 0.12);
  stream_options.seed = graph_options.seed ^ 0x5151;
  std::printf("generating one-day stream...\n");
  const SimHasher hasher;
  const PostStream stream = GenerateStream(graph, hasher, stream_options);

  if (!SavePostStream(stream, out_dir + "/stream.bin")) {
    std::fprintf(stderr, "error: cannot write %s/stream.bin\n",
                 out_dir.c_str());
    return 1;
  }
  if (flags.GetBool("tsv", false) &&
      !SavePostStreamTsv(stream, out_dir + "/stream.tsv")) {
    std::fprintf(stderr, "error: cannot write %s/stream.tsv\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf(
      "wrote %s/social.bin (%llu follows) and %s/stream.bin (%zu posts)\n",
      out_dir.c_str(), static_cast<unsigned long long>(social.num_edges()),
      out_dir.c_str(), stream.size());
  return 0;
}
