// firehose_loadgen: replay load generator for firehose_serve. Loads a
// recorded social graph + post stream, derives the paper's §6.3 user
// population (every author with followees subscribes to them), drives
// the serving protocol over a real socket — follows, seal, paced post
// replay with periodic flush barriers, timeline polls — and emits a
// BENCH_serve.json metrics artifact.
//
// --verify additionally runs the in-process S_* engine over the same
// inputs and requires every polled timeline to match it exactly; this
// is the end-to-end equivalence gate the serving smoke test builds on
// (including across a server SIGKILL + restart, where the loadgen
// simply reconnects and resends the stream from the start).
//
// Usage:
//   firehose_loadgen --port=N|--port_file=PATH --social=PATH --stream=PATH
//       [--graph=PATH --verify] [--algorithm=...] [--lambda_c=18]
//       [--lambda_t_min=30] [--speedup=0 (0 = full speed)]
//       [--flush_every=5000] [--bench_out=BENCH_serve.json]
//       [--shutdown] [--version]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

namespace {

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  if (name == "unibin") {
    *algorithm = Algorithm::kUniBin;
  } else if (name == "neighborbin") {
    *algorithm = Algorithm::kNeighborBin;
  } else if (name == "cliquebin") {
    *algorithm = Algorithm::kCliqueBin;
  } else {
    return false;
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == content.size() && closed;
}

int ReadPortFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return 0;
  int port = 0;
  if (std::fscanf(file, "%d", &port) != 1) port = 0;
  std::fclose(file);
  return port;
}

/// Order-sensitive digest of all polled timelines, folded to 53 bits so
/// the value survives a JSON double round-trip bit-exactly.
uint64_t FoldTimelineHash(uint64_t hash) {
  return Fmix64(hash) & ((1ull << 53) - 1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"port", "port_file", "social", "stream", "graph", "verify",
       "algorithm", "lambda_c", "lambda_t_min", "speedup", "flush_every",
       "bench_out", "shutdown", "version", "help"});
  if (flags.Has("version")) {
    std::printf("%s\n", BuildInfoString().c_str());
    return 0;
  }
  const bool verify = flags.GetBool("verify", false);
  if (!unknown.empty() || flags.Has("help") || !flags.Has("social") ||
      !flags.Has("stream") || (!flags.Has("port") && !flags.Has("port_file")) ||
      (verify && !flags.Has("graph"))) {
    std::fprintf(
        stderr,
        "usage: firehose_loadgen --port=N|--port_file=PATH --social=PATH\n"
        "    --stream=PATH [--graph=PATH --verify]\n"
        "    [--algorithm=unibin|neighborbin|cliquebin] [--lambda_c=18]\n"
        "    [--lambda_t_min=30] [--speedup=F (0 = full speed)]\n"
        "    [--flush_every=N] [--bench_out=PATH] [--shutdown] [--version]\n");
    return flags.Has("help") ? 0 : 2;
  }

  int port = static_cast<int>(flags.GetInt("port", 0));
  if (port == 0 && flags.Has("port_file")) {
    port = ReadPortFile(flags.GetString("port_file", ""));
  }
  if (port <= 0) {
    std::fprintf(stderr, "error: no server port (--port or --port_file)\n");
    return 2;
  }

  FollowGraph social;
  if (!LoadFollowGraph(flags.GetString("social", ""), &social)) {
    std::fprintf(stderr, "error: cannot load social graph\n");
    return 1;
  }
  PostStream stream;
  if (!LoadPostStream(flags.GetString("stream", ""), &stream)) {
    std::fprintf(stderr, "error: cannot load stream\n");
    return 1;
  }

  // The §6.3 population: every author with a nonempty followee set is a
  // user subscribed to it. Must match what the server was sealed with,
  // so a reconnecting loadgen regenerates the identical follows.
  std::vector<User> users;
  for (AuthorId a = 0; a < social.num_authors(); ++a) {
    if (!social.Followees(a).empty()) {
      users.push_back(
          User{static_cast<UserId>(users.size()), social.Followees(a)});
    }
  }

  net::ServeClient client("firehose-loadgen");
  net::ServeClient::ConnectInfo info;
  if (!client.Connect(port, &info)) {
    std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
    return 1;
  }
  std::printf("connected to 127.0.0.1:%d (%u shards, %s, %llu durable)\n",
              port, info.num_shards, info.sealed ? "sealed" : "fresh",
              static_cast<unsigned long long>(info.posts_ingested));

  if (!info.sealed) {
    for (const User& user : users) {
      for (AuthorId author : user.subscriptions) {
        if (!client.Follow(user.id, author)) {
          std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
          return 1;
        }
      }
    }
    if (!client.Seal(users.size())) {
      std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
      return 1;
    }
  }

  // Paced replay. speedup=S compresses stream time by S; 0 replays as
  // fast as the socket accepts. Flush barriers every --flush_every posts
  // double as ingest latency probes (time until all shards drained).
  const double speedup = flags.GetDouble("speedup", 0.0);
  const uint64_t flush_every =
      static_cast<uint64_t>(flags.GetInt("flush_every", 5000));
  obs::MetricsRegistry metrics;
  obs::LogHistogram* flush_latency =
      metrics.GetHistogram("serve.flush_latency_ms", /*timing=*/true);

  WallTimer timer;
  uint64_t sent = 0;
  uint64_t ingested = 0;
  uint64_t duplicates = 0;
  for (const Post& post : stream) {
    if (speedup > 0) {
      const double target_ms = static_cast<double>(post.time_ms) / speedup;
      const double ahead_ms = target_ms - timer.ElapsedMillis();
      if (ahead_ms > 0.5) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(ahead_ms * 1000)));
      }
    }
    if (!client.SendPost(post)) {
      std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
      return 1;
    }
    ++sent;
    if (flush_every > 0 && sent % flush_every == 0) {
      WallTimer flush_timer;
      if (!client.Flush(&ingested, &duplicates)) {
        std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
        return 1;
      }
      flush_latency->Record(
          static_cast<uint64_t>(flush_timer.ElapsedMillis()));
    }
  }
  if (!client.Flush(&ingested, &duplicates)) {
    std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
    return 1;
  }
  const double replay_ms = timer.ElapsedMillis();

  // Poll every user's full timeline.
  std::vector<std::vector<PostId>> timelines(users.size());
  uint64_t timeline_posts = 0;
  uint64_t timeline_hash = Fnv1a64("serve");
  for (const User& user : users) {
    if (!client.Poll(user.id, /*since=*/0, &timelines[user.id])) {
      std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
      return 1;
    }
    timeline_posts += timelines[user.id].size();
    for (PostId id : timelines[user.id]) {
      timeline_hash = HashCombine(timeline_hash, Fmix64(id + 1));
    }
    timeline_hash = HashCombine(timeline_hash, Fmix64(user.id + 0x9E37ull));
  }

  std::printf(
      "replayed %llu posts in %.1fms (%.0f posts/s): %llu ingested, "
      "%llu duplicates, %llu timeline posts across %zu users\n",
      static_cast<unsigned long long>(sent), replay_ms,
      replay_ms > 0 ? 1000.0 * static_cast<double>(sent) / replay_ms : 0.0,
      static_cast<unsigned long long>(ingested),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(timeline_posts), users.size());

  // End-to-end equivalence gate: the in-process S_* engine over the same
  // inputs must produce the identical per-user timelines.
  bool verify_ok = true;
  if (verify) {
    AuthorGraph graph;
    if (!LoadAuthorGraph(flags.GetString("graph", ""), &graph)) {
      std::fprintf(stderr, "error: cannot load author graph\n");
      return 1;
    }
    Algorithm algorithm = Algorithm::kCliqueBin;
    if (!ParseAlgorithm(flags.GetString("algorithm", "cliquebin"),
                        &algorithm)) {
      std::fprintf(stderr, "error: unknown algorithm\n");
      return 2;
    }
    DiversityThresholds thresholds;
    thresholds.lambda_c = static_cast<int>(flags.GetInt("lambda_c", 18));
    thresholds.lambda_t_ms = flags.GetInt("lambda_t_min", 30) * 60 * 1000;

    auto engine = MakeSUserEngine(algorithm, thresholds, graph, users);
    std::vector<std::pair<PostId, UserId>> deliveries;
    (void)RunMultiUser(*engine, stream, &deliveries);
    std::vector<std::vector<PostId>> expected(users.size());
    for (const auto& [post_id, user_id] : deliveries) {
      if (user_id < expected.size()) expected[user_id].push_back(post_id);
    }
    uint64_t mismatches = 0;
    for (size_t u = 0; u < users.size(); ++u) {
      if (timelines[u] != expected[u]) {
        ++mismatches;
        if (mismatches <= 3) {
          std::fprintf(stderr,
                       "verify: user %zu timeline mismatch (served %zu posts, "
                       "expected %zu)\n",
                       u, timelines[u].size(), expected[u].size());
        }
      }
    }
    verify_ok = mismatches == 0;
    std::printf("verify: %s (%llu/%zu user timelines match the in-process "
                "S_* engine)\n",
                verify_ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(users.size() - mismatches),
                users.size());
  }

  if (flags.Has("bench_out")) {
    // Exact keys are deterministic for fixed inputs (and a crash-free
    // server); wall/latency/per_sec keys carry machine timing and are
    // skip/ratio-classified by tools/bench_compare.py.
    metrics.GetCounter("serve.users")->Add(users.size());
    metrics.GetCounter("serve.posts_sent")->Add(sent);
    metrics.GetCounter("serve.ingested")->Add(ingested);
    metrics.GetCounter("serve.duplicates")->Add(duplicates);
    metrics.GetCounter("serve.timeline_posts")->Add(timeline_posts);
    metrics.GetCounter("serve.timeline_hash")
        ->Add(FoldTimelineHash(timeline_hash));
    if (verify) {
      metrics.GetGauge("serve.verify_ok")->Set(verify_ok ? 1 : 0);
    }
    metrics.GetGauge("serve.wall_ms")
        ->Set(static_cast<int64_t>(replay_ms));
    metrics.GetGauge("serve.posts_per_sec")
        ->Set(replay_ms > 0 ? static_cast<int64_t>(
                                  1000.0 * static_cast<double>(sent) /
                                  replay_ms)
                            : 0);
    const std::string path = flags.GetString("bench_out", "");
    if (!WriteStringToFile(
            path, obs::ExportJson(metrics, {/*include_timing=*/true}))) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  if (flags.GetBool("shutdown", false)) {
    if (!client.Shutdown()) {
      std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
      return 1;
    }
  } else {
    client.Disconnect();
  }
  return verify_ok ? 0 : 1;
}
