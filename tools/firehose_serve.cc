// firehose_serve: the networked serving layer (DESIGN.md §4i). Loads a
// precomputed author graph, then accepts follow/seal/post/poll traffic
// on a loopback socket and runs the S_* shared-component engine across
// --shards worker threads, with components placed by consistent hashing
// so a component never straddles shards.
//
// Durability: --data_dir gives every shard its own WAL directory plus a
// control WAL for follow/seal events; a SIGKILL at any instant is
// recovered on restart by replaying the WALs, and clients that resend
// the stream from the start are deduped by the per-shard watermark —
// the recovered timelines are byte-identical to an uninterrupted run
// (tests/serving_smoke_test.cc kill-loops exactly this).
//
// Introspection: --debug_port serves /metricsz /varz /statusz /tracez
// on 127.0.0.1 with serve.* counters published by the dispatcher.
//
// FIREHOSE_CRASH_AFTER=N in the environment SIGKILLs the process after
// N posts received (the kill-loop harness's deterministic kill switch).
//
// Usage:
//   firehose_serve --graph=author_graph.bin [--port=0] [--port_file=PATH]
//       [--shards=2] [--algorithm=cliquebin|unibin|neighborbin]
//       [--lambda_c=18] [--lambda_t_min=30]
//       [--data_dir=DIR] [--wal_sync=none|always|every=N]
//       [--debug_port=N] [--version]

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

namespace {

std::atomic<bool> g_signal{false};

void HandleSignal(int) { g_signal.store(true, std::memory_order_release); }

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  if (name == "unibin") {
    *algorithm = Algorithm::kUniBin;
  } else if (name == "neighborbin") {
    *algorithm = Algorithm::kNeighborBin;
  } else if (name == "cliquebin") {
    *algorithm = Algorithm::kCliqueBin;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"graph", "port", "port_file", "shards", "algorithm", "lambda_c",
       "lambda_t_min", "data_dir", "wal_sync", "debug_port", "version",
       "help"});
  if (flags.Has("version")) {
    std::printf("%s\n", BuildInfoString().c_str());
    return 0;
  }
  if (!unknown.empty() || flags.Has("help") || !flags.Has("graph")) {
    std::fprintf(
        stderr,
        "usage: firehose_serve --graph=PATH [--port=0] [--port_file=PATH]\n"
        "    [--shards=N] [--algorithm=unibin|neighborbin|cliquebin]\n"
        "    [--lambda_c=18] [--lambda_t_min=30]\n"
        "    [--data_dir=DIR] [--wal_sync=none|always|every=N]\n"
        "    [--debug_port=N (0 = ephemeral)] [--version]\n");
    return flags.Has("help") ? 0 : 2;
  }

  AuthorGraph graph;
  if (!LoadAuthorGraph(flags.GetString("graph", ""), &graph)) {
    std::fprintf(stderr, "error: cannot load author graph\n");
    return 1;
  }

  net::ServeOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.num_shards = static_cast<uint32_t>(flags.GetInt("shards", 1));
  if (!ParseAlgorithm(flags.GetString("algorithm", "cliquebin"),
                      &options.algorithm)) {
    std::fprintf(stderr, "error: unknown algorithm\n");
    return 2;
  }
  options.thresholds.lambda_c = static_cast<int>(flags.GetInt("lambda_c", 18));
  options.thresholds.lambda_t_ms = flags.GetInt("lambda_t_min", 30) * 60 * 1000;
  options.data_dir = flags.GetString("data_dir", "");
  options.wal_sync = flags.GetString("wal_sync", "none");
  if (const char* env = std::getenv("FIREHOSE_CRASH_AFTER")) {
    options.crash_after_posts = std::strtoull(env, nullptr, 10);
  }

  // Live introspection: watchdog over dispatcher + shard workers, flight
  // recorder for offer spans, debug endpoints fed by the dispatcher.
  obs::FlightRecorder flight;
  obs::Watchdog watchdog(/*stall_nanos=*/5ull * 1000 * 1000 * 1000);
  std::unique_ptr<obs::DebugServer> debug_server;
  if (flags.Has("debug_port")) {
    obs::SetGlobalFlightRecorder(&flight);
    obs::DebugServer::Options server_options;
    server_options.flight = &flight;
    server_options.watchdog = &watchdog;
    debug_server = std::make_unique<obs::DebugServer>(server_options);
    if (!debug_server->Start(static_cast<int>(flags.GetInt("debug_port", 0)))) {
      std::fprintf(stderr, "error: cannot bind debug port\n");
      return 1;
    }
    std::printf("debug server listening on http://127.0.0.1:%d\n",
                debug_server->port());
    options.debug = debug_server->state();
    options.watchdog = &watchdog;
    options.flight = &flight;
    // Long timeouts are normal while idle (the dispatcher parks in
    // accept), so the watchdog only reports; it never aborts.
    watchdog.SetTripCallback([](int, const char* name, uint64_t progress,
                                int64_t depth) {
      FIREHOSE_LOG(kWarn, "serve task stalled")
          .Kv("task", name)
          .Kv("progress", progress)
          .Kv("depth", depth);
    });
    watchdog.StartPolling(/*poll_interval_nanos=*/1000ull * 1000 * 1000);
  }

  net::Server server(options, &graph);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (%u shard%s%s)\n", server.port(),
              options.num_shards, options.num_shards == 1 ? "" : "s",
              server.sealed() ? ", recovered sealed state" : "");
  std::fflush(stdout);

  // Tests learn the ephemeral port through --port_file (written after a
  // successful bind, so its existence doubles as a readiness signal).
  if (flags.Has("port_file")) {
    const std::string path = flags.GetString("port_file", "");
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(file, "%d\n", server.port());
    std::fclose(file);
  }

  (void)std::signal(SIGINT, HandleSignal);
  (void)std::signal(SIGTERM, HandleSignal);
  while (!g_signal.load(std::memory_order_acquire) &&
         !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const net::ServeStats stats = server.stats();
  std::printf(
      "served %llu connection(s): %llu posts received, %llu ingested, "
      "%llu duplicates, %llu deliveries, %llu polls\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.posts_received),
      static_cast<unsigned long long>(stats.posts_ingested),
      static_cast<unsigned long long>(stats.duplicates),
      static_cast<unsigned long long>(stats.deliveries),
      static_cast<unsigned long long>(stats.polls));

  if (debug_server != nullptr) {
    watchdog.StopPolling();
    debug_server->Stop();
    obs::SetGlobalFlightRecorder(nullptr);
  }
  return 0;
}
