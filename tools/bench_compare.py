#!/usr/bin/env python3
"""Compare firehose bench artifacts (BENCH_*.json) against committed baselines.

The exporter (src/obs/export.cc, schema firehose.metrics.v1) writes three
sections: counters (flat ints), gauges ({value, high_water}) and histograms
({count, sum, max, mean, p50/p95/p99, buckets}). Deterministic work metrics
(comparisons, insertions, evictions, peak_bytes, ...) are byte-stable across
runs and machines, so any drift is a real behavior change and is compared
EXACTLY. Wall-clock metrics are machine-dependent noise and carry no marker
in the JSON, so this script classifies keys by name:

  exact   - default: counters, histograms, and non-timing gauges. Must match
            the baseline bit for bit; a mismatch means the algorithm did
            different work and the baseline (or the code) is wrong.
  ratio   - names containing "speedup" or "per_sec": same-machine ratios,
            meaningful across machines but noisy. Compared one-sided (only a
            DROP below baseline*(1-tolerance) fails; improvements pass).
  skip    - names containing "wall", "latency", "_ns", "_us", "_ms", or
            "crossover": raw timing (or a timing-derived tipping point).
            Always reported informationally in the human-readable output;
            compared one-sided only when --check-timing is given (for
            same-machine A/B runs).

--json-out PATH writes a machine-readable summary (schema
firehose.bench_compare.v1) with the pass/fail status, every failure
line, and the baseline->fresh value of each timing key, so CI can
archive timing trends without parsing the human report.

Hard floors independent of any baseline are expressed as
  --require KEY>=VALUE   (also <=, ==) evaluated on the FRESH artifact,
e.g. the CI gate --require scan.speedup_pct>=150.

Usage:
  tools/bench_compare.py BASELINE.json FRESH.json [options]
  tools/bench_compare.py bench/baseline/ run_dir/ [options]

Directory mode pairs every BENCH_*.json in the baseline directory with the
same file name in the fresh directory; a missing fresh artifact fails.
Exit status: 0 all good, 1 regression/mismatch, 2 usage error.

Re-baselining (after an intentional perf or accounting change):
  cd bench/baseline && for b in ../../build/bench/<bench>; do \
      FIREHOSE_BENCH_AUTHORS=1000 "$b"; done   # artifacts land in cwd
then commit the refreshed JSON together with the change that explains it.
"""

import argparse
import json
import re
import sys
from pathlib import Path

RATIO_PAT = re.compile(r"speedup|per_sec")
SKIP_PAT = re.compile(r"wall|latency|_ns(_|$)|_us(_|$)|_ms(_|$)|crossover")
REQUIRE_PAT = re.compile(r"^([\w.]+)(>=|<=|==)(-?\d+)$")


def classify(key: str) -> str:
    if SKIP_PAT.search(key):
        return "skip"
    if RATIO_PAT.search(key):
        return "ratio"
    return "exact"


def flatten(doc: dict) -> dict:
    """Flattens an artifact to {key: comparable-value}.

    Gauges compare by current value (high_water tracks the same quantity),
    histograms by their full deterministic shape.
    """
    flat = {}
    for key, value in doc.get("counters", {}).items():
        flat[key] = value
    for key, gauge in doc.get("gauges", {}).items():
        flat[key] = gauge["value"]
    for key, hist in doc.get("histograms", {}).items():
        flat[key] = {"count": hist["count"], "buckets": hist["buckets"]}
    return flat


class Comparison:
    def __init__(self, tolerance: float, check_timing: bool):
        self.tolerance = tolerance
        self.check_timing = check_timing
        self.failures = []
        self.notes = []
        self.timing = []  # [{artifact, key, baseline, fresh}]

    def compare(self, name: str, baseline: dict, fresh: dict) -> None:
        base_flat, fresh_flat = flatten(baseline), flatten(fresh)
        for key in sorted(base_flat.keys() | fresh_flat.keys()):
            label = f"{name}: {key}"
            if key not in fresh_flat:
                self.failures.append(f"{label}: missing from fresh run")
                continue
            if key not in base_flat:
                self.failures.append(
                    f"{label}: not in baseline (new metric? re-baseline)")
                continue
            base, new = base_flat[key], fresh_flat[key]
            kind = classify(key)
            if kind == "exact":
                if base != new:
                    self.failures.append(
                        f"{label}: {base} -> {new} (deterministic metric "
                        f"drifted; behavior change or stale baseline)")
            elif kind == "ratio":
                floor = base * (1.0 - self.tolerance)
                if new < floor:
                    self.failures.append(
                        f"{label}: {base} -> {new} (below {floor:.0f} = "
                        f"baseline - {self.tolerance:.0%})")
                else:
                    self.notes.append(f"{label}: {base} -> {new} (ratio ok)")
            else:  # skip / timing
                self.timing.append({"artifact": name, "key": key,
                                    "baseline": base, "fresh": new})
                if self.check_timing and isinstance(base, (int, float)) \
                        and base > 0 and new > base * (1.0 + self.tolerance):
                    self.failures.append(
                        f"{label}: {base} -> {new} (timing regressed "
                        f">{self.tolerance:.0%}; --check-timing is on)")


def check_requirement(spec: str, artifacts: dict) -> str | None:
    """Returns an error string if `spec` (KEY>=N etc.) fails, else None."""
    match = REQUIRE_PAT.match(spec)
    if not match:
        raise ValueError(f"bad --require spec: {spec!r}")
    key, op, want = match.group(1), match.group(2), int(match.group(3))
    for name, doc in artifacts.items():
        flat = flatten(doc)
        if key in flat:
            have = flat[key]
            ok = {"<=": have <= want, ">=": have >= want,
                  "==": have == want}[op]
            if ok:
                return None
            return f"--require {spec}: {name} has {key} = {have}"
    return f"--require {spec}: key {key!r} not found in any fresh artifact"


def load_pairs(baseline: Path, fresh: Path):
    """Yields (name, baseline_doc, fresh_doc_or_None) pairs."""
    if baseline.is_dir() != fresh.is_dir():
        raise ValueError("baseline and fresh must both be files or both dirs")
    if baseline.is_dir():
        names = sorted(p.name for p in baseline.glob("BENCH_*.json"))
        if not names:
            raise ValueError(f"no BENCH_*.json under {baseline}")
        for name in names:
            fresh_path = fresh / name
            yield (name, json.loads((baseline / name).read_text()),
                   json.loads(fresh_path.read_text())
                   if fresh_path.exists() else None)
    else:
        yield (baseline.name, json.loads(baseline.read_text()),
               json.loads(fresh.read_text()))


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=Path,
                        help="baseline artifact or directory (bench/baseline)")
    parser.add_argument("fresh", type=Path,
                        help="fresh artifact or directory to validate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed one-sided drop for ratio metrics "
                             "(default 0.25)")
    parser.add_argument("--check-timing", action="store_true",
                        help="also flag raw timing keys that regress beyond "
                             "the tolerance (same-machine A/B runs only)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="KEY>=N",
                        help="hard floor on the fresh artifact, e.g. "
                             "scan.speedup_pct>=150 (repeatable)")
    parser.add_argument("--verbose", action="store_true",
                        help="print informational ratio lines too")
    parser.add_argument("--json-out", type=Path, default=None,
                        metavar="PATH",
                        help="write a machine-readable summary "
                             "(firehose.bench_compare.v1) to PATH")
    args = parser.parse_args(argv)

    comparison = Comparison(args.tolerance, args.check_timing)
    fresh_docs = {}
    try:
        for name, base_doc, fresh_doc in load_pairs(args.baseline, args.fresh):
            if fresh_doc is None:
                comparison.failures.append(
                    f"{name}: fresh artifact not found (bench not run?)")
                continue
            fresh_docs[name] = fresh_doc
            comparison.compare(name, base_doc, fresh_doc)
        for spec in args.require:
            error = check_requirement(spec, fresh_docs)
            if error:
                comparison.failures.append(error)
    except (ValueError, OSError, KeyError, json.JSONDecodeError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    if args.verbose:
        for note in comparison.notes:
            print(f"  note: {note}")
    for entry in comparison.timing:
        print(f"  timing: {entry['artifact']}: {entry['key']}: "
              f"{entry['baseline']} -> {entry['fresh']}")
    for failure in comparison.failures:
        print(f"FAIL: {failure}")
    compared = len(fresh_docs)
    status = 1 if comparison.failures else 0
    if args.json_out is not None:
        summary = {
            "schema": "firehose.bench_compare.v1",
            "status": "fail" if comparison.failures else "ok",
            "tolerance": args.tolerance,
            "check_timing": args.check_timing,
            "artifacts": sorted(fresh_docs),
            "failures": comparison.failures,
            "timing": comparison.timing,
        }
        args.json_out.write_text(json.dumps(summary, indent=1) + "\n")
    if comparison.failures:
        print(f"bench_compare: {len(comparison.failures)} failure(s) across "
              f"{compared} artifact(s)")
        return status
    print(f"bench_compare: OK ({compared} artifact(s), "
          f"{len(comparison.timing)} timing keys informational)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
