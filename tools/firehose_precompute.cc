// firehose_precompute: the paper's offline phase. Loads a social graph,
// computes all-pairs author similarity, thresholds it at λa into the
// author similarity graph, builds the greedy clique edge cover, and
// persists everything for the online diversifier.
//
// Usage:
//   firehose_precompute --social=/tmp/w/social.bin --out_dir=/tmp/w
//       [--lambda_a=0.7] [--min_similarity=0.05] [--hub_cap=1500]
//
// Writes <out_dir>/similarities.bin, author_graph.bin, cover.bin.

#include <cstdio>

#include "src/firehose.h"
#include "src/util/flags.h"

using namespace firehose;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto unknown = flags.UnknownFlags(
      {"social", "out_dir", "lambda_a", "min_similarity", "hub_cap", "help"});
  if (!unknown.empty() || flags.Has("help") || !flags.Has("social")) {
    std::fprintf(stderr,
                 "usage: firehose_precompute --social=PATH --out_dir=DIR "
                 "[--lambda_a=0.7] [--min_similarity=0.05] [--hub_cap=N]\n");
    return flags.Has("help") ? 0 : 2;
  }
  const std::string out_dir = flags.GetString("out_dir", ".");
  const double lambda_a = flags.GetDouble("lambda_a", 0.7);

  FollowGraph social;
  if (!LoadFollowGraph(flags.GetString("social", ""), &social)) {
    std::fprintf(stderr, "error: cannot load social graph\n");
    return 1;
  }
  std::printf("loaded social graph: %u authors, %llu follows\n",
              social.num_authors(),
              static_cast<unsigned long long>(social.num_edges()));

  std::vector<AuthorId> authors;
  for (AuthorId a = 0; a < social.num_authors(); ++a) authors.push_back(a);

  WallTimer timer;
  const auto pairs = AllPairsSimilarity(
      social, authors, flags.GetDouble("min_similarity", 0.05),
      static_cast<size_t>(flags.GetInt("hub_cap", 1500)));
  std::printf("all-pairs similarity: %zu pairs in %.1fs\n", pairs.size(),
              timer.ElapsedSeconds());

  const AuthorGraph graph =
      AuthorGraph::FromSimilarities(authors, pairs, lambda_a);
  std::printf("author graph at lambda_a=%.2f: %llu edges, avg degree %.1f\n",
              lambda_a, static_cast<unsigned long long>(graph.num_edges()),
              graph.AvgDegree());

  timer.Restart();
  const CliqueCover cover = CliqueCover::Greedy(graph);
  std::printf(
      "greedy clique cover: %zu cliques, %.1f cliques/author, avg size "
      "%.1f in %.1fs\n",
      cover.num_cliques(), cover.AvgCliquesPerAuthor(), cover.AvgCliqueSize(),
      timer.ElapsedSeconds());

  if (!SaveSimilarities(pairs, out_dir + "/similarities.bin") ||
      !SaveAuthorGraph(graph, out_dir + "/author_graph.bin") ||
      !SaveCliqueCover(cover, graph.num_vertices(), out_dir + "/cover.bin")) {
    std::fprintf(stderr, "error: cannot write outputs to %s\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf("wrote %s/{similarities,author_graph,cover}.bin\n",
              out_dir.c_str());
  return 0;
}
