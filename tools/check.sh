#!/usr/bin/env bash
# Tier-1 correctness gate: determinism lint, then build + full ctest under
# the AddressSanitizer and UndefinedBehaviorSanitizer presets. Run it from
# anywhere inside the repo before sending a PR:
#
#   tools/check.sh            # lint + asan + ubsan (the CI gate)
#   tools/check.sh tsan       # additionally build + test the tsan preset
#   tools/check.sh all        # asan + ubsan + tsan + werror
#
# Every preset writes to its own build-<preset>/ directory, so repeated
# runs are incremental.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 4)"

presets=(asan ubsan)
case "${1:-}" in
  "") ;;
  tsan) presets+=(tsan) ;;
  all) presets+=(tsan werror) ;;
  *)
    echo "usage: tools/check.sh [tsan|all]" >&2
    exit 2
    ;;
esac

# 1. Static analysis: all seventeen passes (layering, unchecked errors,
# determinism/hygiene, and the sema passes up through the
# interprocedural thread-confinement / untrusted-input /
# ordering-discipline checks). Built tiny and standalone so the gate
# fails fast before any full preset build. Stale baseline entries fail
# too — run `firehose_analyze --prune-baseline` to drop them. The
# content-hash cache makes repeated local runs near-instant; --stats
# prints the per-pass timing and the hit rate.
lint_build="$repo/build-lint"
cmake -S "$repo" -B "$lint_build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$lint_build" --target firehose_analyze -j "$jobs" >/dev/null
echo "== firehose_analyze src/ tools/ tests/"
"$lint_build/tools/firehose_analyze" --root="$repo" \
  --fail-on-stale-baseline \
  --cache="$lint_build/analyze_cache.txt" --stats src tools tests

# 1b. clang-tidy over compile_commands.json, when installed. Optional:
# the build exports compile_commands.json either way, and CI treats a
# missing clang-tidy the same as a clean run.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy src/"
  mapfile -t tidy_sources < <(find "$repo/src" -name '*.cc' | sort)
  clang-tidy -p "$lint_build" --quiet "${tidy_sources[@]}"
else
  echo "== clang-tidy not installed; skipping (analyzer gate above still ran)"
fi

# 2. Sanitized builds + tests.
for preset in "${presets[@]}"; do
  echo "== preset $preset: configure + build"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$jobs"
  echo "== preset $preset: ctest"
  ctest --preset "$preset"
done

echo "check.sh: all gates passed (${presets[*]})"
